/root/repo/target/release/deps/glimpse_gpu_spec-d57b2d9134ebee18.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/release/deps/libglimpse_gpu_spec-d57b2d9134ebee18.rlib: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/release/deps/libglimpse_gpu_spec-d57b2d9134ebee18.rmeta: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
