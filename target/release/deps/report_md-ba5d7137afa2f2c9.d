/root/repo/target/release/deps/report_md-ba5d7137afa2f2c9.d: crates/bench/src/bin/report_md.rs

/root/repo/target/release/deps/report_md-ba5d7137afa2f2c9: crates/bench/src/bin/report_md.rs

crates/bench/src/bin/report_md.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
