/root/repo/target/release/deps/ablation-b2315e096ff6790c.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-b2315e096ff6790c: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
