/root/repo/target/release/deps/glimpse_repro-1c95d6e6eee4721b.d: src/lib.rs

/root/repo/target/release/deps/libglimpse_repro-1c95d6e6eee4721b.rlib: src/lib.rs

/root/repo/target/release/deps/libglimpse_repro-1c95d6e6eee4721b.rmeta: src/lib.rs

src/lib.rs:
