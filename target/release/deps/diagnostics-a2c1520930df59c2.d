/root/repo/target/release/deps/diagnostics-a2c1520930df59c2.d: crates/bench/src/bin/diagnostics.rs

/root/repo/target/release/deps/diagnostics-a2c1520930df59c2: crates/bench/src/bin/diagnostics.rs

crates/bench/src/bin/diagnostics.rs:
