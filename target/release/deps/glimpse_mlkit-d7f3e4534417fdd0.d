/root/repo/target/release/deps/glimpse_mlkit-d7f3e4534417fdd0.d: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/release/deps/libglimpse_mlkit-d7f3e4534417fdd0.rlib: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/release/deps/libglimpse_mlkit-d7f3e4534417fdd0.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/gbt.rs:
crates/mlkit/src/gp.rs:
crates/mlkit/src/kmeans.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/mlp.rs:
crates/mlkit/src/parallel.rs:
crates/mlkit/src/pca.rs:
crates/mlkit/src/rank.rs:
crates/mlkit/src/sa.rs:
crates/mlkit/src/stats.rs:
