/root/repo/target/release/deps/fig1-46228cf860567aea.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-46228cf860567aea: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
