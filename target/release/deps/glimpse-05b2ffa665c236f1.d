/root/repo/target/release/deps/glimpse-05b2ffa665c236f1.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/glimpse-05b2ffa665c236f1: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
