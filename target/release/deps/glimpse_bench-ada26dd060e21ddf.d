/root/repo/target/release/deps/glimpse_bench-ada26dd060e21ddf.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libglimpse_bench-ada26dd060e21ddf.rlib: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libglimpse_bench-ada26dd060e21ddf.rmeta: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
