/root/repo/target/release/deps/fig6-64606e0a70a62259.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-64606e0a70a62259: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
