/root/repo/target/release/deps/glimpse_space-6aec87916302b8d6.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/release/deps/libglimpse_space-6aec87916302b8d6.rlib: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/release/deps/libglimpse_space-6aec87916302b8d6.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/factorize.rs:
crates/space/src/kernel.rs:
crates/space/src/knob.rs:
crates/space/src/logfmt.rs:
crates/space/src/templates.rs:
