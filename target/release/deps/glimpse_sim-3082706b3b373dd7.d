/root/repo/target/release/deps/glimpse_sim-3082706b3b373dd7.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/release/deps/libglimpse_sim-3082706b3b373dd7.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/release/deps/libglimpse_sim-3082706b3b373dd7.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/fault.rs:
crates/sim/src/measure.rs:
crates/sim/src/model.rs:
crates/sim/src/pool.rs:
crates/sim/src/retry.rs:
crates/sim/src/trace.rs:
crates/sim/src/validity.rs:
