/root/repo/target/release/deps/glimpse_mlkit-dcc1db24936a52fc.d: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/release/deps/libglimpse_mlkit-dcc1db24936a52fc.rlib: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/release/deps/libglimpse_mlkit-dcc1db24936a52fc.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/gbt.rs:
crates/mlkit/src/gp.rs:
crates/mlkit/src/kmeans.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/mlp.rs:
crates/mlkit/src/pca.rs:
crates/mlkit/src/rank.rs:
crates/mlkit/src/sa.rs:
crates/mlkit/src/stats.rs:
