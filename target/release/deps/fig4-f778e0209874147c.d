/root/repo/target/release/deps/fig4-f778e0209874147c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-f778e0209874147c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
