/root/repo/target/release/deps/fig2-32f2587d08212829.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-32f2587d08212829: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
