/root/repo/target/release/deps/extrapolation-ea4a4b6ae3aea585.d: crates/bench/src/bin/extrapolation.rs

/root/repo/target/release/deps/extrapolation-ea4a4b6ae3aea585: crates/bench/src/bin/extrapolation.rs

crates/bench/src/bin/extrapolation.rs:
