/root/repo/target/release/deps/parking_lot-d48effc264805fa2.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d48effc264805fa2.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d48effc264805fa2.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
