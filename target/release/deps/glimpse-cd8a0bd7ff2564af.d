/root/repo/target/release/deps/glimpse-cd8a0bd7ff2564af.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/glimpse-cd8a0bd7ff2564af: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
