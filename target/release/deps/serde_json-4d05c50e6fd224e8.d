/root/repo/target/release/deps/serde_json-4d05c50e6fd224e8.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-4d05c50e6fd224e8.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-4d05c50e6fd224e8.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
