/root/repo/target/release/deps/table1-5c538f2e019a416e.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-5c538f2e019a416e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
