/root/repo/target/release/deps/fig5-94d56a763aed4558.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-94d56a763aed4558: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
