/root/repo/target/release/deps/serde-f48519ed225e0f85.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f48519ed225e0f85.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f48519ed225e0f85.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
