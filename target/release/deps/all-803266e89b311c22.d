/root/repo/target/release/deps/all-803266e89b311c22.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-803266e89b311c22: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
