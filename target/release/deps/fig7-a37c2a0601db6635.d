/root/repo/target/release/deps/fig7-a37c2a0601db6635.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-a37c2a0601db6635: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
