/root/repo/target/release/deps/glimpse_core-adb0f5ae0eb6f61d.d: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/release/deps/libglimpse_core-adb0f5ae0eb6f61d.rlib: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/release/deps/libglimpse_core-adb0f5ae0eb6f61d.rmeta: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/acquisition.rs:
crates/core/src/artifacts.rs:
crates/core/src/blueprint.rs:
crates/core/src/corpus.rs:
crates/core/src/explain.rs:
crates/core/src/multi.rs:
crates/core/src/prior.rs:
crates/core/src/sampler.rs:
crates/core/src/tuner.rs:
