/root/repo/target/release/deps/glimpse_repro-20332b58604362ab.d: src/lib.rs

/root/repo/target/release/deps/libglimpse_repro-20332b58604362ab.rlib: src/lib.rs

/root/repo/target/release/deps/libglimpse_repro-20332b58604362ab.rmeta: src/lib.rs

src/lib.rs:
