/root/repo/target/release/deps/search_throughput-ad26cba758fad809.d: crates/bench/src/bin/search_throughput.rs

/root/repo/target/release/deps/search_throughput-ad26cba758fad809: crates/bench/src/bin/search_throughput.rs

crates/bench/src/bin/search_throughput.rs:
