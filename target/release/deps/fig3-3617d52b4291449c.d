/root/repo/target/release/deps/fig3-3617d52b4291449c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-3617d52b4291449c: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
