/root/repo/target/release/deps/glimpse_tuners-a9d8255256a13096.d: crates/tuners/src/lib.rs crates/tuners/src/autotvm.rs crates/tuners/src/budget.rs crates/tuners/src/chameleon.rs crates/tuners/src/context.rs crates/tuners/src/cost_model.rs crates/tuners/src/dgp.rs crates/tuners/src/diagnostics.rs crates/tuners/src/genetic.rs crates/tuners/src/grid.rs crates/tuners/src/history.rs crates/tuners/src/portfolio.rs crates/tuners/src/random.rs crates/tuners/src/replay.rs crates/tuners/src/scheduler.rs

/root/repo/target/release/deps/libglimpse_tuners-a9d8255256a13096.rlib: crates/tuners/src/lib.rs crates/tuners/src/autotvm.rs crates/tuners/src/budget.rs crates/tuners/src/chameleon.rs crates/tuners/src/context.rs crates/tuners/src/cost_model.rs crates/tuners/src/dgp.rs crates/tuners/src/diagnostics.rs crates/tuners/src/genetic.rs crates/tuners/src/grid.rs crates/tuners/src/history.rs crates/tuners/src/portfolio.rs crates/tuners/src/random.rs crates/tuners/src/replay.rs crates/tuners/src/scheduler.rs

/root/repo/target/release/deps/libglimpse_tuners-a9d8255256a13096.rmeta: crates/tuners/src/lib.rs crates/tuners/src/autotvm.rs crates/tuners/src/budget.rs crates/tuners/src/chameleon.rs crates/tuners/src/context.rs crates/tuners/src/cost_model.rs crates/tuners/src/dgp.rs crates/tuners/src/diagnostics.rs crates/tuners/src/genetic.rs crates/tuners/src/grid.rs crates/tuners/src/history.rs crates/tuners/src/portfolio.rs crates/tuners/src/random.rs crates/tuners/src/replay.rs crates/tuners/src/scheduler.rs

crates/tuners/src/lib.rs:
crates/tuners/src/autotvm.rs:
crates/tuners/src/budget.rs:
crates/tuners/src/chameleon.rs:
crates/tuners/src/context.rs:
crates/tuners/src/cost_model.rs:
crates/tuners/src/dgp.rs:
crates/tuners/src/diagnostics.rs:
crates/tuners/src/genetic.rs:
crates/tuners/src/grid.rs:
crates/tuners/src/history.rs:
crates/tuners/src/portfolio.rs:
crates/tuners/src/random.rs:
crates/tuners/src/replay.rs:
crates/tuners/src/scheduler.rs:
