/root/repo/target/release/deps/fig8-ab0c01552bd16f94.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-ab0c01552bd16f94: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
