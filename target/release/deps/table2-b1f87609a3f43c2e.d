/root/repo/target/release/deps/table2-b1f87609a3f43c2e.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-b1f87609a3f43c2e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
