/root/repo/target/release/deps/fig9-b196ee5c3d838792.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-b196ee5c3d838792: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
