/root/repo/target/release/deps/glimpse_tensor_prog-793e5e1c2cf6ebe3.d: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/release/deps/libglimpse_tensor_prog-793e5e1c2cf6ebe3.rlib: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/release/deps/libglimpse_tensor_prog-793e5e1c2cf6ebe3.rmeta: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

crates/tensor-prog/src/lib.rs:
crates/tensor-prog/src/conv.rs:
crates/tensor-prog/src/dense.rs:
crates/tensor-prog/src/models.rs:
crates/tensor-prog/src/op.rs:
crates/tensor-prog/src/shape.rs:
crates/tensor-prog/src/task.rs:
