/root/repo/target/release/deps/serde_derive-08973f65c725ea55.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-08973f65c725ea55.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
