/root/repo/target/debug/deps/glimpse_gpu_spec-2a1cea869b208196.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/glimpse_gpu_spec-2a1cea869b208196: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
