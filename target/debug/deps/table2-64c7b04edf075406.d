/root/repo/target/debug/deps/table2-64c7b04edf075406.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-64c7b04edf075406.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
