/root/repo/target/debug/deps/kernel_properties-e91876558219eb15.d: crates/space/tests/kernel_properties.rs

/root/repo/target/debug/deps/kernel_properties-e91876558219eb15: crates/space/tests/kernel_properties.rs

crates/space/tests/kernel_properties.rs:
