/root/repo/target/debug/deps/ablation-ded991fa58db6107.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-ded991fa58db6107: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
