/root/repo/target/debug/deps/fig6-40c2c7b1c5895e93.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-40c2c7b1c5895e93: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
