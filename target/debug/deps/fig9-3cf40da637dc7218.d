/root/repo/target/debug/deps/fig9-3cf40da637dc7218.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-3cf40da637dc7218: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
