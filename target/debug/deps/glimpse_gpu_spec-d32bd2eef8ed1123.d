/root/repo/target/debug/deps/glimpse_gpu_spec-d32bd2eef8ed1123.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/libglimpse_gpu_spec-d32bd2eef8ed1123.rlib: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/libglimpse_gpu_spec-d32bd2eef8ed1123.rmeta: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
