/root/repo/target/debug/deps/glimpse_repro-3f0887989f222b0f.d: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-3f0887989f222b0f.rlib: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-3f0887989f222b0f.rmeta: src/lib.rs

src/lib.rs:
