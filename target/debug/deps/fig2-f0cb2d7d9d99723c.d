/root/repo/target/debug/deps/fig2-f0cb2d7d9d99723c.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-f0cb2d7d9d99723c: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
