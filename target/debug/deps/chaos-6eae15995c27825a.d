/root/repo/target/debug/deps/chaos-6eae15995c27825a.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-6eae15995c27825a: tests/chaos.rs

tests/chaos.rs:
