/root/repo/target/debug/deps/fig3-6255a086a8ae8f11.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-6255a086a8ae8f11: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
