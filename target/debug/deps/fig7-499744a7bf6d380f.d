/root/repo/target/debug/deps/fig7-499744a7bf6d380f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-499744a7bf6d380f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
