/root/repo/target/debug/deps/report_md-6b7572433a86b10c.d: crates/bench/src/bin/report_md.rs Cargo.toml

/root/repo/target/debug/deps/libreport_md-6b7572433a86b10c.rmeta: crates/bench/src/bin/report_md.rs Cargo.toml

crates/bench/src/bin/report_md.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
