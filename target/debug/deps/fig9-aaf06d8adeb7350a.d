/root/repo/target/debug/deps/fig9-aaf06d8adeb7350a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-aaf06d8adeb7350a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
