/root/repo/target/debug/deps/table2-61e8f7a093b513f1.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-61e8f7a093b513f1: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
