/root/repo/target/debug/deps/kernel_properties-55cb8476a3ffe617.d: crates/space/tests/kernel_properties.rs

/root/repo/target/debug/deps/kernel_properties-55cb8476a3ffe617: crates/space/tests/kernel_properties.rs

crates/space/tests/kernel_properties.rs:
