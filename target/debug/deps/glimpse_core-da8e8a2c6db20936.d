/root/repo/target/debug/deps/glimpse_core-da8e8a2c6db20936.d: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/glimpse_core-da8e8a2c6db20936: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/acquisition.rs:
crates/core/src/artifacts.rs:
crates/core/src/blueprint.rs:
crates/core/src/corpus.rs:
crates/core/src/explain.rs:
crates/core/src/multi.rs:
crates/core/src/prior.rs:
crates/core/src/sampler.rs:
crates/core/src/tuner.rs:
