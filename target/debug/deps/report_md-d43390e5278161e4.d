/root/repo/target/debug/deps/report_md-d43390e5278161e4.d: crates/bench/src/bin/report_md.rs

/root/repo/target/debug/deps/report_md-d43390e5278161e4: crates/bench/src/bin/report_md.rs

crates/bench/src/bin/report_md.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
