/root/repo/target/debug/deps/glimpse_bench-ebb3abe8ee5c91b9.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/glimpse_bench-ebb3abe8ee5c91b9: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
