/root/repo/target/debug/deps/cli-08032daa5de06da3.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-08032daa5de06da3: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_glimpse=/root/repo/target/debug/glimpse
