/root/repo/target/debug/deps/all-9880abcc198bcb7e.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-9880abcc198bcb7e.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
