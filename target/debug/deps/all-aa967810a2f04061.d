/root/repo/target/debug/deps/all-aa967810a2f04061.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-aa967810a2f04061.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
