/root/repo/target/debug/deps/glimpse_repro-d54e23fba9cf2412.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_repro-d54e23fba9cf2412.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
