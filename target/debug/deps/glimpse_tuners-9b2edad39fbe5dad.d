/root/repo/target/debug/deps/glimpse_tuners-9b2edad39fbe5dad.d: crates/tuners/src/lib.rs crates/tuners/src/autotvm.rs crates/tuners/src/budget.rs crates/tuners/src/chameleon.rs crates/tuners/src/context.rs crates/tuners/src/cost_model.rs crates/tuners/src/dgp.rs crates/tuners/src/diagnostics.rs crates/tuners/src/genetic.rs crates/tuners/src/grid.rs crates/tuners/src/history.rs crates/tuners/src/portfolio.rs crates/tuners/src/random.rs crates/tuners/src/replay.rs crates/tuners/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_tuners-9b2edad39fbe5dad.rmeta: crates/tuners/src/lib.rs crates/tuners/src/autotvm.rs crates/tuners/src/budget.rs crates/tuners/src/chameleon.rs crates/tuners/src/context.rs crates/tuners/src/cost_model.rs crates/tuners/src/dgp.rs crates/tuners/src/diagnostics.rs crates/tuners/src/genetic.rs crates/tuners/src/grid.rs crates/tuners/src/history.rs crates/tuners/src/portfolio.rs crates/tuners/src/random.rs crates/tuners/src/replay.rs crates/tuners/src/scheduler.rs Cargo.toml

crates/tuners/src/lib.rs:
crates/tuners/src/autotvm.rs:
crates/tuners/src/budget.rs:
crates/tuners/src/chameleon.rs:
crates/tuners/src/context.rs:
crates/tuners/src/cost_model.rs:
crates/tuners/src/dgp.rs:
crates/tuners/src/diagnostics.rs:
crates/tuners/src/genetic.rs:
crates/tuners/src/grid.rs:
crates/tuners/src/history.rs:
crates/tuners/src/portfolio.rs:
crates/tuners/src/random.rs:
crates/tuners/src/replay.rs:
crates/tuners/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
