/root/repo/target/debug/deps/glimpse_repro-9f1e8cc01966d61a.d: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-9f1e8cc01966d61a.rlib: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-9f1e8cc01966d61a.rmeta: src/lib.rs

src/lib.rs:
