/root/repo/target/debug/deps/chaos-bf7ad8b2a8a9448e.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-bf7ad8b2a8a9448e: tests/chaos.rs

tests/chaos.rs:
