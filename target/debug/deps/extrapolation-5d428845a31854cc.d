/root/repo/target/debug/deps/extrapolation-5d428845a31854cc.d: crates/bench/src/bin/extrapolation.rs

/root/repo/target/debug/deps/extrapolation-5d428845a31854cc: crates/bench/src/bin/extrapolation.rs

crates/bench/src/bin/extrapolation.rs:
