/root/repo/target/debug/deps/diagnostics-19b8e62ae633177b.d: crates/bench/src/bin/diagnostics.rs

/root/repo/target/debug/deps/diagnostics-19b8e62ae633177b: crates/bench/src/bin/diagnostics.rs

crates/bench/src/bin/diagnostics.rs:
