/root/repo/target/debug/deps/glimpse_tensor_prog-b97fdf40956b2ed4.d: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/debug/deps/libglimpse_tensor_prog-b97fdf40956b2ed4.rlib: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/debug/deps/libglimpse_tensor_prog-b97fdf40956b2ed4.rmeta: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

crates/tensor-prog/src/lib.rs:
crates/tensor-prog/src/conv.rs:
crates/tensor-prog/src/dense.rs:
crates/tensor-prog/src/models.rs:
crates/tensor-prog/src/op.rs:
crates/tensor-prog/src/shape.rs:
crates/tensor-prog/src/task.rs:
