/root/repo/target/debug/deps/fig7-77ee0e1da4f8cf7a.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-77ee0e1da4f8cf7a: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
