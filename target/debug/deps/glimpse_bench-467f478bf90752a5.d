/root/repo/target/debug/deps/glimpse_bench-467f478bf90752a5.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/glimpse_bench-467f478bf90752a5: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
