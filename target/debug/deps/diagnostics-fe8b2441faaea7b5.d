/root/repo/target/debug/deps/diagnostics-fe8b2441faaea7b5.d: crates/bench/src/bin/diagnostics.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnostics-fe8b2441faaea7b5.rmeta: crates/bench/src/bin/diagnostics.rs Cargo.toml

crates/bench/src/bin/diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
