/root/repo/target/debug/deps/properties-679c7adca1a53bcd.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-679c7adca1a53bcd.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
