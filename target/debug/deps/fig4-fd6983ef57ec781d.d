/root/repo/target/debug/deps/fig4-fd6983ef57ec781d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-fd6983ef57ec781d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
