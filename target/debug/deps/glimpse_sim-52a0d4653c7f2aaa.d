/root/repo/target/debug/deps/glimpse_sim-52a0d4653c7f2aaa.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/debug/deps/libglimpse_sim-52a0d4653c7f2aaa.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/debug/deps/libglimpse_sim-52a0d4653c7f2aaa.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/fault.rs:
crates/sim/src/measure.rs:
crates/sim/src/model.rs:
crates/sim/src/pool.rs:
crates/sim/src/retry.rs:
crates/sim/src/trace.rs:
crates/sim/src/validity.rs:
