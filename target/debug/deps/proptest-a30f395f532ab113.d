/root/repo/target/debug/deps/proptest-a30f395f532ab113.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-a30f395f532ab113: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
