/root/repo/target/debug/deps/glimpse_gpu_spec-5b71eb6b51b11f5d.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/libglimpse_gpu_spec-5b71eb6b51b11f5d.rlib: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/libglimpse_gpu_spec-5b71eb6b51b11f5d.rmeta: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
