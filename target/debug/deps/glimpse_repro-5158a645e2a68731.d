/root/repo/target/debug/deps/glimpse_repro-5158a645e2a68731.d: src/lib.rs

/root/repo/target/debug/deps/glimpse_repro-5158a645e2a68731: src/lib.rs

src/lib.rs:
