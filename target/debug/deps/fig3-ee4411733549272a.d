/root/repo/target/debug/deps/fig3-ee4411733549272a.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-ee4411733549272a: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
