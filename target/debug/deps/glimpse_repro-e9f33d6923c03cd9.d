/root/repo/target/debug/deps/glimpse_repro-e9f33d6923c03cd9.d: src/lib.rs

/root/repo/target/debug/deps/glimpse_repro-e9f33d6923c03cd9: src/lib.rs

src/lib.rs:
