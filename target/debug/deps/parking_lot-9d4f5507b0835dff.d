/root/repo/target/debug/deps/parking_lot-9d4f5507b0835dff.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-9d4f5507b0835dff.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
