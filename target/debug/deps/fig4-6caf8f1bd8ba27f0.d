/root/repo/target/debug/deps/fig4-6caf8f1bd8ba27f0.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-6caf8f1bd8ba27f0: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
