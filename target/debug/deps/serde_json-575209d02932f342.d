/root/repo/target/debug/deps/serde_json-575209d02932f342.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-575209d02932f342.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-575209d02932f342.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
