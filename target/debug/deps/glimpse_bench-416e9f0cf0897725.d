/root/repo/target/debug/deps/glimpse_bench-416e9f0cf0897725.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libglimpse_bench-416e9f0cf0897725.rlib: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libglimpse_bench-416e9f0cf0897725.rmeta: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
