/root/repo/target/debug/deps/table1-37f7c12c1d035e66.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-37f7c12c1d035e66: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
