/root/repo/target/debug/deps/glimpse_repro-cc7ab42a4131af6a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_repro-cc7ab42a4131af6a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
