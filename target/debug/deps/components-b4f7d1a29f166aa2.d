/root/repo/target/debug/deps/components-b4f7d1a29f166aa2.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-b4f7d1a29f166aa2.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
