/root/repo/target/debug/deps/robustness-3e4b0cab6670d68a.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-3e4b0cab6670d68a: tests/robustness.rs

tests/robustness.rs:
