/root/repo/target/debug/deps/table2-8e3a5033076b1a47.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-8e3a5033076b1a47: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
