/root/repo/target/debug/deps/glimpse_space-120ac334b979656e.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_space-120ac334b979656e.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs Cargo.toml

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/factorize.rs:
crates/space/src/kernel.rs:
crates/space/src/knob.rs:
crates/space/src/logfmt.rs:
crates/space/src/templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
