/root/repo/target/debug/deps/glimpse_gpu_spec-382502ab8ed28417.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_gpu_spec-382502ab8ed28417.rmeta: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs Cargo.toml

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
