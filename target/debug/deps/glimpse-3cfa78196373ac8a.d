/root/repo/target/debug/deps/glimpse-3cfa78196373ac8a.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/glimpse-3cfa78196373ac8a: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
