/root/repo/target/debug/deps/glimpse-50a4317cdf4ab769.d: crates/cli/src/main.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse-50a4317cdf4ab769.rmeta: crates/cli/src/main.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
