/root/repo/target/debug/deps/serde-d664a2f1cf956e83.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d664a2f1cf956e83.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d664a2f1cf956e83.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
