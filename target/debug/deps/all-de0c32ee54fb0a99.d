/root/repo/target/debug/deps/all-de0c32ee54fb0a99.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-de0c32ee54fb0a99: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
