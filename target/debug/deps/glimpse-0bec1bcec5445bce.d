/root/repo/target/debug/deps/glimpse-0bec1bcec5445bce.d: crates/cli/src/main.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse-0bec1bcec5445bce.rmeta: crates/cli/src/main.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
