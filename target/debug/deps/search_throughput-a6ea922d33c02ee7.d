/root/repo/target/debug/deps/search_throughput-a6ea922d33c02ee7.d: crates/bench/src/bin/search_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_throughput-a6ea922d33c02ee7.rmeta: crates/bench/src/bin/search_throughput.rs Cargo.toml

crates/bench/src/bin/search_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
