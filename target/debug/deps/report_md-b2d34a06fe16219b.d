/root/repo/target/debug/deps/report_md-b2d34a06fe16219b.d: crates/bench/src/bin/report_md.rs

/root/repo/target/debug/deps/report_md-b2d34a06fe16219b: crates/bench/src/bin/report_md.rs

crates/bench/src/bin/report_md.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
