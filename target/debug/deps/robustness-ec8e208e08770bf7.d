/root/repo/target/debug/deps/robustness-ec8e208e08770bf7.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-ec8e208e08770bf7: tests/robustness.rs

tests/robustness.rs:
