/root/repo/target/debug/deps/diagnostics-9ca546589529c1ef.d: crates/bench/src/bin/diagnostics.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnostics-9ca546589529c1ef.rmeta: crates/bench/src/bin/diagnostics.rs Cargo.toml

crates/bench/src/bin/diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
