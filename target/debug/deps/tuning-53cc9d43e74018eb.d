/root/repo/target/debug/deps/tuning-53cc9d43e74018eb.d: crates/bench/benches/tuning.rs

/root/repo/target/debug/deps/tuning-53cc9d43e74018eb: crates/bench/benches/tuning.rs

crates/bench/benches/tuning.rs:
