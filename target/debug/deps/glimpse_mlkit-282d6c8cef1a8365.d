/root/repo/target/debug/deps/glimpse_mlkit-282d6c8cef1a8365.d: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/debug/deps/glimpse_mlkit-282d6c8cef1a8365: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/gbt.rs:
crates/mlkit/src/gp.rs:
crates/mlkit/src/kmeans.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/mlp.rs:
crates/mlkit/src/parallel.rs:
crates/mlkit/src/pca.rs:
crates/mlkit/src/rank.rs:
crates/mlkit/src/sa.rs:
crates/mlkit/src/stats.rs:
