/root/repo/target/debug/deps/glimpse-05b008d58968c8d4.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/glimpse-05b008d58968c8d4: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
