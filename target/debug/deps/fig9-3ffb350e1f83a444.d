/root/repo/target/debug/deps/fig9-3ffb350e1f83a444.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-3ffb350e1f83a444: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
