/root/repo/target/debug/deps/fig5-eccbebc93b78c0cc.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-eccbebc93b78c0cc: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
