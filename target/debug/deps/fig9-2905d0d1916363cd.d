/root/repo/target/debug/deps/fig9-2905d0d1916363cd.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-2905d0d1916363cd: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
