/root/repo/target/debug/deps/glimpse_sim-aefeae70ceeefbef.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/debug/deps/libglimpse_sim-aefeae70ceeefbef.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/debug/deps/libglimpse_sim-aefeae70ceeefbef.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/fault.rs:
crates/sim/src/measure.rs:
crates/sim/src/model.rs:
crates/sim/src/pool.rs:
crates/sim/src/retry.rs:
crates/sim/src/trace.rs:
crates/sim/src/validity.rs:
