/root/repo/target/debug/deps/report_md-fee608005d2448bd.d: crates/bench/src/bin/report_md.rs

/root/repo/target/debug/deps/report_md-fee608005d2448bd: crates/bench/src/bin/report_md.rs

crates/bench/src/bin/report_md.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
