/root/repo/target/debug/deps/ablation-ceec017e4d881ecc.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-ceec017e4d881ecc.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
