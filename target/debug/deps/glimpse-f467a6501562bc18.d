/root/repo/target/debug/deps/glimpse-f467a6501562bc18.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/glimpse-f467a6501562bc18: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
