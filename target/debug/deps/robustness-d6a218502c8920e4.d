/root/repo/target/debug/deps/robustness-d6a218502c8920e4.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-d6a218502c8920e4: tests/robustness.rs

tests/robustness.rs:
