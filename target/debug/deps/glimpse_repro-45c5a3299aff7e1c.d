/root/repo/target/debug/deps/glimpse_repro-45c5a3299aff7e1c.d: src/lib.rs

/root/repo/target/debug/deps/glimpse_repro-45c5a3299aff7e1c: src/lib.rs

src/lib.rs:
