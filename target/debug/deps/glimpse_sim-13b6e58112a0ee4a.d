/root/repo/target/debug/deps/glimpse_sim-13b6e58112a0ee4a.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_sim-13b6e58112a0ee4a.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/fault.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/retry.rs crates/sim/src/trace.rs crates/sim/src/validity.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/fault.rs:
crates/sim/src/measure.rs:
crates/sim/src/model.rs:
crates/sim/src/pool.rs:
crates/sim/src/retry.rs:
crates/sim/src/trace.rs:
crates/sim/src/validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
