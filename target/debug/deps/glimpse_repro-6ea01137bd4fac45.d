/root/repo/target/debug/deps/glimpse_repro-6ea01137bd4fac45.d: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-6ea01137bd4fac45.rlib: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-6ea01137bd4fac45.rmeta: src/lib.rs

src/lib.rs:
