/root/repo/target/debug/deps/fig1-9dd37343f74c806a.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-9dd37343f74c806a: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
