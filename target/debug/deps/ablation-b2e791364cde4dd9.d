/root/repo/target/debug/deps/ablation-b2e791364cde4dd9.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-b2e791364cde4dd9: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
