/root/repo/target/debug/deps/glimpse_core-3213ba373d5e9bd2.d: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_core-3213ba373d5e9bd2.rmeta: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/acquisition.rs:
crates/core/src/artifacts.rs:
crates/core/src/blueprint.rs:
crates/core/src/corpus.rs:
crates/core/src/explain.rs:
crates/core/src/multi.rs:
crates/core/src/prior.rs:
crates/core/src/sampler.rs:
crates/core/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
