/root/repo/target/debug/deps/parking_lot-74217d3662c5451f.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-74217d3662c5451f: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
