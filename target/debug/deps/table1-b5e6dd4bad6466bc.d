/root/repo/target/debug/deps/table1-b5e6dd4bad6466bc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b5e6dd4bad6466bc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
