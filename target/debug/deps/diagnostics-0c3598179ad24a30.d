/root/repo/target/debug/deps/diagnostics-0c3598179ad24a30.d: crates/bench/src/bin/diagnostics.rs

/root/repo/target/debug/deps/diagnostics-0c3598179ad24a30: crates/bench/src/bin/diagnostics.rs

crates/bench/src/bin/diagnostics.rs:
