/root/repo/target/debug/deps/serde-fd915f106f6db2ce.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fd915f106f6db2ce.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fd915f106f6db2ce.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
