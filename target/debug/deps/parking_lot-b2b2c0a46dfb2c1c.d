/root/repo/target/debug/deps/parking_lot-b2b2c0a46dfb2c1c.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-b2b2c0a46dfb2c1c.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-b2b2c0a46dfb2c1c.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
