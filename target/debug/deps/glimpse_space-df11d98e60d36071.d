/root/repo/target/debug/deps/glimpse_space-df11d98e60d36071.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/debug/deps/libglimpse_space-df11d98e60d36071.rlib: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/debug/deps/libglimpse_space-df11d98e60d36071.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/factorize.rs:
crates/space/src/kernel.rs:
crates/space/src/knob.rs:
crates/space/src/logfmt.rs:
crates/space/src/templates.rs:
