/root/repo/target/debug/deps/serde-e0852b068742db2b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-e0852b068742db2b: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
