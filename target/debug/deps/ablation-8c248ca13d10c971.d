/root/repo/target/debug/deps/ablation-8c248ca13d10c971.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-8c248ca13d10c971.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
