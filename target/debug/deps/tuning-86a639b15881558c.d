/root/repo/target/debug/deps/tuning-86a639b15881558c.d: crates/bench/benches/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libtuning-86a639b15881558c.rmeta: crates/bench/benches/tuning.rs Cargo.toml

crates/bench/benches/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
