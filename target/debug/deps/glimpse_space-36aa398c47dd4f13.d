/root/repo/target/debug/deps/glimpse_space-36aa398c47dd4f13.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/debug/deps/glimpse_space-36aa398c47dd4f13: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/factorize.rs:
crates/space/src/kernel.rs:
crates/space/src/knob.rs:
crates/space/src/logfmt.rs:
crates/space/src/templates.rs:
