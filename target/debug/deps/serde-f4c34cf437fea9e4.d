/root/repo/target/debug/deps/serde-f4c34cf437fea9e4.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-f4c34cf437fea9e4: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
