/root/repo/target/debug/deps/table2-0def5343023f09c7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0def5343023f09c7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
