/root/repo/target/debug/deps/extrapolation-49fcd10bd88f0592.d: crates/bench/src/bin/extrapolation.rs

/root/repo/target/debug/deps/extrapolation-49fcd10bd88f0592: crates/bench/src/bin/extrapolation.rs

crates/bench/src/bin/extrapolation.rs:
