/root/repo/target/debug/deps/properties-536b7737d6155580.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-536b7737d6155580: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
