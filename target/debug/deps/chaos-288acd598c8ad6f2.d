/root/repo/target/debug/deps/chaos-288acd598c8ad6f2.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-288acd598c8ad6f2: tests/chaos.rs

tests/chaos.rs:
