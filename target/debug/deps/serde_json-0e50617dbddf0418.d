/root/repo/target/debug/deps/serde_json-0e50617dbddf0418.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-0e50617dbddf0418: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
