/root/repo/target/debug/deps/serde-6df9d08a82d2d4ed.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-6df9d08a82d2d4ed.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
