/root/repo/target/debug/deps/cli-5a0346dddf637a5e.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-5a0346dddf637a5e.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_glimpse=placeholder:glimpse
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
