/root/repo/target/debug/deps/serde_derive-52881718aab7491b.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-52881718aab7491b: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
