/root/repo/target/debug/deps/cli-b874eb9334ae6f97.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-b874eb9334ae6f97: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_glimpse=/root/repo/target/debug/glimpse
