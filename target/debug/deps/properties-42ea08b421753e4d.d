/root/repo/target/debug/deps/properties-42ea08b421753e4d.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-42ea08b421753e4d: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
