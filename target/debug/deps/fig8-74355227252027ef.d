/root/repo/target/debug/deps/fig8-74355227252027ef.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-74355227252027ef: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
