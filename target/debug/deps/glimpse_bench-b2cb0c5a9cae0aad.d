/root/repo/target/debug/deps/glimpse_bench-b2cb0c5a9cae0aad.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libglimpse_bench-b2cb0c5a9cae0aad.rlib: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libglimpse_bench-b2cb0c5a9cae0aad.rmeta: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
