/root/repo/target/debug/deps/glimpse_bench-c9cb47af479b3867.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/glimpse_bench-c9cb47af479b3867: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
