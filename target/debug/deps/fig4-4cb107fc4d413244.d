/root/repo/target/debug/deps/fig4-4cb107fc4d413244.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4cb107fc4d413244: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
