/root/repo/target/debug/deps/serde_json-56c2d2d5d5974e5e.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-56c2d2d5d5974e5e: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
