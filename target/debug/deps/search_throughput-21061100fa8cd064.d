/root/repo/target/debug/deps/search_throughput-21061100fa8cd064.d: crates/bench/src/bin/search_throughput.rs

/root/repo/target/debug/deps/search_throughput-21061100fa8cd064: crates/bench/src/bin/search_throughput.rs

crates/bench/src/bin/search_throughput.rs:
