/root/repo/target/debug/deps/fig4-b8b2b443f1519f9c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-b8b2b443f1519f9c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
