/root/repo/target/debug/deps/fig1-6a211afe71b34e5b.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-6a211afe71b34e5b: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
