/root/repo/target/debug/deps/glimpse_mlkit-588ee89afa8900dd.d: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_mlkit-588ee89afa8900dd.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs Cargo.toml

crates/mlkit/src/lib.rs:
crates/mlkit/src/gbt.rs:
crates/mlkit/src/gp.rs:
crates/mlkit/src/kmeans.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/mlp.rs:
crates/mlkit/src/parallel.rs:
crates/mlkit/src/pca.rs:
crates/mlkit/src/rank.rs:
crates/mlkit/src/sa.rs:
crates/mlkit/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
