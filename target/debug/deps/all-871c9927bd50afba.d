/root/repo/target/debug/deps/all-871c9927bd50afba.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-871c9927bd50afba: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
