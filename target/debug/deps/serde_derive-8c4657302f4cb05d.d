/root/repo/target/debug/deps/serde_derive-8c4657302f4cb05d.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-8c4657302f4cb05d.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
