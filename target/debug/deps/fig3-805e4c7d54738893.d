/root/repo/target/debug/deps/fig3-805e4c7d54738893.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-805e4c7d54738893: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
