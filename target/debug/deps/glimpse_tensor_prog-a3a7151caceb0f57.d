/root/repo/target/debug/deps/glimpse_tensor_prog-a3a7151caceb0f57.d: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_tensor_prog-a3a7151caceb0f57.rmeta: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs Cargo.toml

crates/tensor-prog/src/lib.rs:
crates/tensor-prog/src/conv.rs:
crates/tensor-prog/src/dense.rs:
crates/tensor-prog/src/models.rs:
crates/tensor-prog/src/op.rs:
crates/tensor-prog/src/shape.rs:
crates/tensor-prog/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
