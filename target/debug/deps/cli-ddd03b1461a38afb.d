/root/repo/target/debug/deps/cli-ddd03b1461a38afb.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-ddd03b1461a38afb: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_glimpse=/root/repo/target/debug/glimpse
