/root/repo/target/debug/deps/fig2-40dd734e51270ff1.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-40dd734e51270ff1: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
