/root/repo/target/debug/deps/glimpse_tensor_prog-451c97b3b5a8acb0.d: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/debug/deps/glimpse_tensor_prog-451c97b3b5a8acb0: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

crates/tensor-prog/src/lib.rs:
crates/tensor-prog/src/conv.rs:
crates/tensor-prog/src/dense.rs:
crates/tensor-prog/src/models.rs:
crates/tensor-prog/src/op.rs:
crates/tensor-prog/src/shape.rs:
crates/tensor-prog/src/task.rs:
