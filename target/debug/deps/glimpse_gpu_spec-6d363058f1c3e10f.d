/root/repo/target/debug/deps/glimpse_gpu_spec-6d363058f1c3e10f.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/libglimpse_gpu_spec-6d363058f1c3e10f.rlib: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/libglimpse_gpu_spec-6d363058f1c3e10f.rmeta: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
