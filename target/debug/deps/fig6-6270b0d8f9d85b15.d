/root/repo/target/debug/deps/fig6-6270b0d8f9d85b15.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-6270b0d8f9d85b15: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
