/root/repo/target/debug/deps/glimpse_core-c80f1f35b11885d2.d: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libglimpse_core-c80f1f35b11885d2.rlib: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libglimpse_core-c80f1f35b11885d2.rmeta: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/acquisition.rs:
crates/core/src/artifacts.rs:
crates/core/src/blueprint.rs:
crates/core/src/corpus.rs:
crates/core/src/explain.rs:
crates/core/src/multi.rs:
crates/core/src/prior.rs:
crates/core/src/sampler.rs:
crates/core/src/tuner.rs:
