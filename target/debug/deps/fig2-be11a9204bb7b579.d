/root/repo/target/debug/deps/fig2-be11a9204bb7b579.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-be11a9204bb7b579: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
