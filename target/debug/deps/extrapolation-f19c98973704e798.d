/root/repo/target/debug/deps/extrapolation-f19c98973704e798.d: crates/bench/src/bin/extrapolation.rs

/root/repo/target/debug/deps/extrapolation-f19c98973704e798: crates/bench/src/bin/extrapolation.rs

crates/bench/src/bin/extrapolation.rs:
