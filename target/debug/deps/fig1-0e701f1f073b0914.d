/root/repo/target/debug/deps/fig1-0e701f1f073b0914.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-0e701f1f073b0914: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
