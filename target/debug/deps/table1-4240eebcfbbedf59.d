/root/repo/target/debug/deps/table1-4240eebcfbbedf59.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4240eebcfbbedf59: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
