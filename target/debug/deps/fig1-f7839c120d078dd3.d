/root/repo/target/debug/deps/fig1-f7839c120d078dd3.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-f7839c120d078dd3: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
