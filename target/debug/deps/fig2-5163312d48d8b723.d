/root/repo/target/debug/deps/fig2-5163312d48d8b723.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-5163312d48d8b723: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
