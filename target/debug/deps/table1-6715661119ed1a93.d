/root/repo/target/debug/deps/table1-6715661119ed1a93.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6715661119ed1a93: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
