/root/repo/target/debug/deps/serde_json-492b868b3d13fa56.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-492b868b3d13fa56.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-492b868b3d13fa56.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
