/root/repo/target/debug/deps/parking_lot-66db62ed8b9b5ff3.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-66db62ed8b9b5ff3: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
