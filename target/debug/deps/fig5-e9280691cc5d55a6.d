/root/repo/target/debug/deps/fig5-e9280691cc5d55a6.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-e9280691cc5d55a6: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
