/root/repo/target/debug/deps/glimpse_mlkit-788e5ead76fb37d3.d: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/debug/deps/libglimpse_mlkit-788e5ead76fb37d3.rlib: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

/root/repo/target/debug/deps/libglimpse_mlkit-788e5ead76fb37d3.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/gbt.rs crates/mlkit/src/gp.rs crates/mlkit/src/kmeans.rs crates/mlkit/src/linalg.rs crates/mlkit/src/mlp.rs crates/mlkit/src/parallel.rs crates/mlkit/src/pca.rs crates/mlkit/src/rank.rs crates/mlkit/src/sa.rs crates/mlkit/src/stats.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/gbt.rs:
crates/mlkit/src/gp.rs:
crates/mlkit/src/kmeans.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/mlp.rs:
crates/mlkit/src/parallel.rs:
crates/mlkit/src/pca.rs:
crates/mlkit/src/rank.rs:
crates/mlkit/src/sa.rs:
crates/mlkit/src/stats.rs:
