/root/repo/target/debug/deps/glimpse_core-2b1483b536bc777d.d: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libglimpse_core-2b1483b536bc777d.rlib: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/libglimpse_core-2b1483b536bc777d.rmeta: crates/core/src/lib.rs crates/core/src/acquisition.rs crates/core/src/artifacts.rs crates/core/src/blueprint.rs crates/core/src/corpus.rs crates/core/src/explain.rs crates/core/src/multi.rs crates/core/src/prior.rs crates/core/src/sampler.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/acquisition.rs:
crates/core/src/artifacts.rs:
crates/core/src/blueprint.rs:
crates/core/src/corpus.rs:
crates/core/src/explain.rs:
crates/core/src/multi.rs:
crates/core/src/prior.rs:
crates/core/src/sampler.rs:
crates/core/src/tuner.rs:
