/root/repo/target/debug/deps/glimpse-194523da64083fc3.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/glimpse-194523da64083fc3: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
