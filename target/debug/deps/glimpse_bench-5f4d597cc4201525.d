/root/repo/target/debug/deps/glimpse_bench-5f4d597cc4201525.d: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse_bench-5f4d597cc4201525.rmeta: crates/bench/src/lib.rs crates/bench/src/e2e.rs crates/bench/src/experiment.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/e2e.rs:
crates/bench/src/experiment.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
