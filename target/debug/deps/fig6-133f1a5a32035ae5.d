/root/repo/target/debug/deps/fig6-133f1a5a32035ae5.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-133f1a5a32035ae5: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
