/root/repo/target/debug/deps/report_md-d4450c857663a832.d: crates/bench/src/bin/report_md.rs Cargo.toml

/root/repo/target/debug/deps/libreport_md-d4450c857663a832.rmeta: crates/bench/src/bin/report_md.rs Cargo.toml

crates/bench/src/bin/report_md.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
