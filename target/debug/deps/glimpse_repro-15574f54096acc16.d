/root/repo/target/debug/deps/glimpse_repro-15574f54096acc16.d: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-15574f54096acc16.rlib: src/lib.rs

/root/repo/target/debug/deps/libglimpse_repro-15574f54096acc16.rmeta: src/lib.rs

src/lib.rs:
