/root/repo/target/debug/deps/diagnostics-d024f4f3c48dd9e7.d: crates/bench/src/bin/diagnostics.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnostics-d024f4f3c48dd9e7.rmeta: crates/bench/src/bin/diagnostics.rs Cargo.toml

crates/bench/src/bin/diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
