/root/repo/target/debug/deps/fig8-779de71b4e557701.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-779de71b4e557701: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
