/root/repo/target/debug/deps/fig3-19ac982e54fc765d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-19ac982e54fc765d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
