/root/repo/target/debug/deps/proptest-abd425ec4ceb1ef2.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-abd425ec4ceb1ef2.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-abd425ec4ceb1ef2.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
