/root/repo/target/debug/deps/glimpse_sim-9bbbfc404858f5ff.d: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/debug/deps/libglimpse_sim-9bbbfc404858f5ff.rlib: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

/root/repo/target/debug/deps/libglimpse_sim-9bbbfc404858f5ff.rmeta: crates/sim/src/lib.rs crates/sim/src/calibrate.rs crates/sim/src/measure.rs crates/sim/src/model.rs crates/sim/src/pool.rs crates/sim/src/trace.rs crates/sim/src/validity.rs

crates/sim/src/lib.rs:
crates/sim/src/calibrate.rs:
crates/sim/src/measure.rs:
crates/sim/src/model.rs:
crates/sim/src/pool.rs:
crates/sim/src/trace.rs:
crates/sim/src/validity.rs:
