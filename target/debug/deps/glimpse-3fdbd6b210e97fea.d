/root/repo/target/debug/deps/glimpse-3fdbd6b210e97fea.d: crates/cli/src/main.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libglimpse-3fdbd6b210e97fea.rmeta: crates/cli/src/main.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
