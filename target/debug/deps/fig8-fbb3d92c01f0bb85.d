/root/repo/target/debug/deps/fig8-fbb3d92c01f0bb85.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-fbb3d92c01f0bb85.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
