/root/repo/target/debug/deps/fig5-5c437eed640fc2a3.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-5c437eed640fc2a3.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
