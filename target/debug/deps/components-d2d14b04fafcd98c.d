/root/repo/target/debug/deps/components-d2d14b04fafcd98c.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-d2d14b04fafcd98c.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
