/root/repo/target/debug/deps/fig7-5591c3bd2e193c10.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-5591c3bd2e193c10: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
