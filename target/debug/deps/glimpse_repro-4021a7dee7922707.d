/root/repo/target/debug/deps/glimpse_repro-4021a7dee7922707.d: src/lib.rs

/root/repo/target/debug/deps/glimpse_repro-4021a7dee7922707: src/lib.rs

src/lib.rs:
