/root/repo/target/debug/deps/extrapolation-d0474f5107f738b7.d: crates/bench/src/bin/extrapolation.rs

/root/repo/target/debug/deps/extrapolation-d0474f5107f738b7: crates/bench/src/bin/extrapolation.rs

crates/bench/src/bin/extrapolation.rs:
