/root/repo/target/debug/deps/ablation-8ad9e7c2589236dc.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-8ad9e7c2589236dc: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
