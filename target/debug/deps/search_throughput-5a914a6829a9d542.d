/root/repo/target/debug/deps/search_throughput-5a914a6829a9d542.d: crates/bench/src/bin/search_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_throughput-5a914a6829a9d542.rmeta: crates/bench/src/bin/search_throughput.rs Cargo.toml

crates/bench/src/bin/search_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
