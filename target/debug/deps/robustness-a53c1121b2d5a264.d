/root/repo/target/debug/deps/robustness-a53c1121b2d5a264.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-a53c1121b2d5a264.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
