/root/repo/target/debug/deps/extrapolation-629e25c59b8ed03a.d: crates/bench/src/bin/extrapolation.rs Cargo.toml

/root/repo/target/debug/deps/libextrapolation-629e25c59b8ed03a.rmeta: crates/bench/src/bin/extrapolation.rs Cargo.toml

crates/bench/src/bin/extrapolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
