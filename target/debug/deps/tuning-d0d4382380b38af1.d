/root/repo/target/debug/deps/tuning-d0d4382380b38af1.d: crates/bench/benches/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libtuning-d0d4382380b38af1.rmeta: crates/bench/benches/tuning.rs Cargo.toml

crates/bench/benches/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
