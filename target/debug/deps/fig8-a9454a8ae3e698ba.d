/root/repo/target/debug/deps/fig8-a9454a8ae3e698ba.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-a9454a8ae3e698ba: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
