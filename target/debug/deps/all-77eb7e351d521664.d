/root/repo/target/debug/deps/all-77eb7e351d521664.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-77eb7e351d521664: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
