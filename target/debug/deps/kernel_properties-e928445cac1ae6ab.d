/root/repo/target/debug/deps/kernel_properties-e928445cac1ae6ab.d: crates/space/tests/kernel_properties.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_properties-e928445cac1ae6ab.rmeta: crates/space/tests/kernel_properties.rs Cargo.toml

crates/space/tests/kernel_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
