/root/repo/target/debug/deps/report_md-4f09e9f0ec8e619b.d: crates/bench/src/bin/report_md.rs

/root/repo/target/debug/deps/report_md-4f09e9f0ec8e619b: crates/bench/src/bin/report_md.rs

crates/bench/src/bin/report_md.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
