/root/repo/target/debug/deps/serde-5dd14d7ad8d962de.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5dd14d7ad8d962de.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5dd14d7ad8d962de.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
