/root/repo/target/debug/deps/glimpse_space-badbcfa56a8383ea.d: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/debug/deps/libglimpse_space-badbcfa56a8383ea.rlib: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

/root/repo/target/debug/deps/libglimpse_space-badbcfa56a8383ea.rmeta: crates/space/src/lib.rs crates/space/src/config.rs crates/space/src/factorize.rs crates/space/src/kernel.rs crates/space/src/knob.rs crates/space/src/logfmt.rs crates/space/src/templates.rs

crates/space/src/lib.rs:
crates/space/src/config.rs:
crates/space/src/factorize.rs:
crates/space/src/kernel.rs:
crates/space/src/knob.rs:
crates/space/src/logfmt.rs:
crates/space/src/templates.rs:
