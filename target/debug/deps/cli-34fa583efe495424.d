/root/repo/target/debug/deps/cli-34fa583efe495424.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-34fa583efe495424.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_glimpse=placeholder:glimpse
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
