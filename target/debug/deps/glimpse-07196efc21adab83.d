/root/repo/target/debug/deps/glimpse-07196efc21adab83.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/glimpse-07196efc21adab83: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
