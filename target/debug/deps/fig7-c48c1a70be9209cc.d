/root/repo/target/debug/deps/fig7-c48c1a70be9209cc.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c48c1a70be9209cc: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
