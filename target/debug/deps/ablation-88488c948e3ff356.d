/root/repo/target/debug/deps/ablation-88488c948e3ff356.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-88488c948e3ff356: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
