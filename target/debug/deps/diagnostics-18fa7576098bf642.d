/root/repo/target/debug/deps/diagnostics-18fa7576098bf642.d: crates/bench/src/bin/diagnostics.rs

/root/repo/target/debug/deps/diagnostics-18fa7576098bf642: crates/bench/src/bin/diagnostics.rs

crates/bench/src/bin/diagnostics.rs:
