/root/repo/target/debug/deps/table2-2933e7ad2d413b99.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2933e7ad2d413b99: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
