/root/repo/target/debug/deps/fig5-a58971b472cd1c67.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-a58971b472cd1c67: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
