/root/repo/target/debug/deps/extrapolation-3d76855ac0eae7e1.d: crates/bench/src/bin/extrapolation.rs Cargo.toml

/root/repo/target/debug/deps/libextrapolation-3d76855ac0eae7e1.rmeta: crates/bench/src/bin/extrapolation.rs Cargo.toml

crates/bench/src/bin/extrapolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
