/root/repo/target/debug/deps/glimpse_gpu_spec-b8d997eeb8fa46bb.d: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

/root/repo/target/debug/deps/glimpse_gpu_spec-b8d997eeb8fa46bb: crates/gpu-spec/src/lib.rs crates/gpu-spec/src/database.rs crates/gpu-spec/src/datasheet.rs crates/gpu-spec/src/features.rs crates/gpu-spec/src/generation.rs crates/gpu-spec/src/spec.rs

crates/gpu-spec/src/lib.rs:
crates/gpu-spec/src/database.rs:
crates/gpu-spec/src/datasheet.rs:
crates/gpu-spec/src/features.rs:
crates/gpu-spec/src/generation.rs:
crates/gpu-spec/src/spec.rs:
