/root/repo/target/debug/deps/diagnostics-095da31c44df70e1.d: crates/bench/src/bin/diagnostics.rs

/root/repo/target/debug/deps/diagnostics-095da31c44df70e1: crates/bench/src/bin/diagnostics.rs

crates/bench/src/bin/diagnostics.rs:
