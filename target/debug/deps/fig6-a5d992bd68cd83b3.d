/root/repo/target/debug/deps/fig6-a5d992bd68cd83b3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a5d992bd68cd83b3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
