/root/repo/target/debug/deps/fig8-eb7c0ba924d670cf.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-eb7c0ba924d670cf: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
