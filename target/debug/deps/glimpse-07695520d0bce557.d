/root/repo/target/debug/deps/glimpse-07695520d0bce557.d: crates/cli/src/main.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/glimpse-07695520d0bce557: crates/cli/src/main.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
