/root/repo/target/debug/deps/glimpse_tensor_prog-b092736a9e7ca9e4.d: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/debug/deps/libglimpse_tensor_prog-b092736a9e7ca9e4.rlib: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

/root/repo/target/debug/deps/libglimpse_tensor_prog-b092736a9e7ca9e4.rmeta: crates/tensor-prog/src/lib.rs crates/tensor-prog/src/conv.rs crates/tensor-prog/src/dense.rs crates/tensor-prog/src/models.rs crates/tensor-prog/src/op.rs crates/tensor-prog/src/shape.rs crates/tensor-prog/src/task.rs

crates/tensor-prog/src/lib.rs:
crates/tensor-prog/src/conv.rs:
crates/tensor-prog/src/dense.rs:
crates/tensor-prog/src/models.rs:
crates/tensor-prog/src/op.rs:
crates/tensor-prog/src/shape.rs:
crates/tensor-prog/src/task.rs:
