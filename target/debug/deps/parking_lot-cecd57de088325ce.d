/root/repo/target/debug/deps/parking_lot-cecd57de088325ce.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-cecd57de088325ce.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-cecd57de088325ce.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
