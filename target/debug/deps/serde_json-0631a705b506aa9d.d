/root/repo/target/debug/deps/serde_json-0631a705b506aa9d.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0631a705b506aa9d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0631a705b506aa9d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
