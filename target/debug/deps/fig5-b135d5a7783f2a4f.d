/root/repo/target/debug/deps/fig5-b135d5a7783f2a4f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b135d5a7783f2a4f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
