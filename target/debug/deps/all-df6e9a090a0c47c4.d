/root/repo/target/debug/deps/all-df6e9a090a0c47c4.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-df6e9a090a0c47c4: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
