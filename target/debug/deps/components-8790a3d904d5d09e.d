/root/repo/target/debug/deps/components-8790a3d904d5d09e.d: crates/bench/benches/components.rs

/root/repo/target/debug/deps/components-8790a3d904d5d09e: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
