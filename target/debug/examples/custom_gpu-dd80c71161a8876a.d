/root/repo/target/debug/examples/custom_gpu-dd80c71161a8876a.d: examples/custom_gpu.rs

/root/repo/target/debug/examples/custom_gpu-dd80c71161a8876a: examples/custom_gpu.rs

examples/custom_gpu.rs:
