/root/repo/target/debug/examples/quickstart-6fdadc6c30374169.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6fdadc6c30374169: examples/quickstart.rs

examples/quickstart.rs:
