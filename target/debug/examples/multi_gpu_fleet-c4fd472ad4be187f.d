/root/repo/target/debug/examples/multi_gpu_fleet-c4fd472ad4be187f.d: examples/multi_gpu_fleet.rs

/root/repo/target/debug/examples/multi_gpu_fleet-c4fd472ad4be187f: examples/multi_gpu_fleet.rs

examples/multi_gpu_fleet.rs:
