/root/repo/target/debug/examples/deploy_model-c8351843ed187284.d: examples/deploy_model.rs Cargo.toml

/root/repo/target/debug/examples/libdeploy_model-c8351843ed187284.rmeta: examples/deploy_model.rs Cargo.toml

examples/deploy_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
