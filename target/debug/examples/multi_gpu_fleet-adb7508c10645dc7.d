/root/repo/target/debug/examples/multi_gpu_fleet-adb7508c10645dc7.d: examples/multi_gpu_fleet.rs

/root/repo/target/debug/examples/multi_gpu_fleet-adb7508c10645dc7: examples/multi_gpu_fleet.rs

examples/multi_gpu_fleet.rs:
