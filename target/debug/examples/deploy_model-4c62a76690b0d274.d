/root/repo/target/debug/examples/deploy_model-4c62a76690b0d274.d: examples/deploy_model.rs Cargo.toml

/root/repo/target/debug/examples/libdeploy_model-4c62a76690b0d274.rmeta: examples/deploy_model.rs Cargo.toml

examples/deploy_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
