/root/repo/target/debug/examples/blueprint_explorer-2c16868671b17b81.d: examples/blueprint_explorer.rs

/root/repo/target/debug/examples/blueprint_explorer-2c16868671b17b81: examples/blueprint_explorer.rs

examples/blueprint_explorer.rs:
