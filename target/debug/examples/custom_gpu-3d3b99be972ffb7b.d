/root/repo/target/debug/examples/custom_gpu-3d3b99be972ffb7b.d: examples/custom_gpu.rs

/root/repo/target/debug/examples/custom_gpu-3d3b99be972ffb7b: examples/custom_gpu.rs

examples/custom_gpu.rs:
