/root/repo/target/debug/examples/blueprint_explorer-8be81220ab53c06c.d: examples/blueprint_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libblueprint_explorer-8be81220ab53c06c.rmeta: examples/blueprint_explorer.rs Cargo.toml

examples/blueprint_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
