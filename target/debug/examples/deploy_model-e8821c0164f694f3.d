/root/repo/target/debug/examples/deploy_model-e8821c0164f694f3.d: examples/deploy_model.rs

/root/repo/target/debug/examples/deploy_model-e8821c0164f694f3: examples/deploy_model.rs

examples/deploy_model.rs:
