/root/repo/target/debug/examples/deploy_model-7ee452b7e1e827de.d: examples/deploy_model.rs

/root/repo/target/debug/examples/deploy_model-7ee452b7e1e827de: examples/deploy_model.rs

examples/deploy_model.rs:
