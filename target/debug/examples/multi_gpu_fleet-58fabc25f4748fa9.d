/root/repo/target/debug/examples/multi_gpu_fleet-58fabc25f4748fa9.d: examples/multi_gpu_fleet.rs

/root/repo/target/debug/examples/multi_gpu_fleet-58fabc25f4748fa9: examples/multi_gpu_fleet.rs

examples/multi_gpu_fleet.rs:
