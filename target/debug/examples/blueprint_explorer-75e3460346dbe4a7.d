/root/repo/target/debug/examples/blueprint_explorer-75e3460346dbe4a7.d: examples/blueprint_explorer.rs

/root/repo/target/debug/examples/blueprint_explorer-75e3460346dbe4a7: examples/blueprint_explorer.rs

examples/blueprint_explorer.rs:
