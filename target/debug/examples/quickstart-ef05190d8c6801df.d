/root/repo/target/debug/examples/quickstart-ef05190d8c6801df.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ef05190d8c6801df: examples/quickstart.rs

examples/quickstart.rs:
