/root/repo/target/debug/examples/custom_gpu-baf7304b88fd9be0.d: examples/custom_gpu.rs

/root/repo/target/debug/examples/custom_gpu-baf7304b88fd9be0: examples/custom_gpu.rs

examples/custom_gpu.rs:
