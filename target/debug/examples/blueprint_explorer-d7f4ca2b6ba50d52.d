/root/repo/target/debug/examples/blueprint_explorer-d7f4ca2b6ba50d52.d: examples/blueprint_explorer.rs

/root/repo/target/debug/examples/blueprint_explorer-d7f4ca2b6ba50d52: examples/blueprint_explorer.rs

examples/blueprint_explorer.rs:
