/root/repo/target/debug/examples/multi_gpu_fleet-c7e6777f89bb78b9.d: examples/multi_gpu_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_gpu_fleet-c7e6777f89bb78b9.rmeta: examples/multi_gpu_fleet.rs Cargo.toml

examples/multi_gpu_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
