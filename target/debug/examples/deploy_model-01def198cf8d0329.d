/root/repo/target/debug/examples/deploy_model-01def198cf8d0329.d: examples/deploy_model.rs

/root/repo/target/debug/examples/deploy_model-01def198cf8d0329: examples/deploy_model.rs

examples/deploy_model.rs:
