/root/repo/target/debug/examples/custom_gpu-2efd2e27142d7a8f.d: examples/custom_gpu.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_gpu-2efd2e27142d7a8f.rmeta: examples/custom_gpu.rs Cargo.toml

examples/custom_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
