/root/repo/target/debug/examples/multi_gpu_fleet-d67747a4f7b8c7cf.d: examples/multi_gpu_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_gpu_fleet-d67747a4f7b8c7cf.rmeta: examples/multi_gpu_fleet.rs Cargo.toml

examples/multi_gpu_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
