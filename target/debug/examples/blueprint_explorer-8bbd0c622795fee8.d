/root/repo/target/debug/examples/blueprint_explorer-8bbd0c622795fee8.d: examples/blueprint_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libblueprint_explorer-8bbd0c622795fee8.rmeta: examples/blueprint_explorer.rs Cargo.toml

examples/blueprint_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
