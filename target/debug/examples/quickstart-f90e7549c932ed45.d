/root/repo/target/debug/examples/quickstart-f90e7549c932ed45.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f90e7549c932ed45: examples/quickstart.rs

examples/quickstart.rs:
