/root/repo/target/debug/examples/quickstart-267d9edab5029fca.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-267d9edab5029fca: examples/quickstart.rs

examples/quickstart.rs:
