/root/repo/target/debug/examples/multi_gpu_fleet-9a2bbcbfaaf30994.d: examples/multi_gpu_fleet.rs

/root/repo/target/debug/examples/multi_gpu_fleet-9a2bbcbfaaf30994: examples/multi_gpu_fleet.rs

examples/multi_gpu_fleet.rs:
