/root/repo/target/debug/examples/blueprint_explorer-88562a161d2e00f0.d: examples/blueprint_explorer.rs

/root/repo/target/debug/examples/blueprint_explorer-88562a161d2e00f0: examples/blueprint_explorer.rs

examples/blueprint_explorer.rs:
