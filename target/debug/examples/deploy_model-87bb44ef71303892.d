/root/repo/target/debug/examples/deploy_model-87bb44ef71303892.d: examples/deploy_model.rs

/root/repo/target/debug/examples/deploy_model-87bb44ef71303892: examples/deploy_model.rs

examples/deploy_model.rs:
