/root/repo/target/debug/examples/custom_gpu-1f5c89c8f4460921.d: examples/custom_gpu.rs

/root/repo/target/debug/examples/custom_gpu-1f5c89c8f4460921: examples/custom_gpu.rs

examples/custom_gpu.rs:
