//! Blueprint explorer: inspect the hardware embedding itself.
//!
//! ```sh
//! cargo run --release --example blueprint_explorer
//! ```
//!
//! Shows the Fig. 8 size/information-loss trade-off, the embedding of each
//! evaluation GPU, nearest neighbors in Blueprint space (embeddings cluster
//! by generation and scale), and how the decoded data-sheet values drive
//! the hardware-aware sampler's thresholds.

use glimpse_repro::core::blueprint::BlueprintCodec;
use glimpse_repro::core::sampler::{EnsembleSampler, DEFAULT_MEMBERS, DEFAULT_TAU};
use glimpse_repro::gpu_spec::{database, GpuSpec};

fn main() {
    let population: Vec<&GpuSpec> = database::all().iter().collect();

    println!("Blueprint size vs information loss (Fig. 8):");
    for point in BlueprintCodec::sweep(&population) {
        let bar = "#".repeat((point.rmse * 60.0).round() as usize);
        println!(
            "  k={:<2} ({:>5.1}% size)  rmse {:.4} {bar}",
            point.components,
            point.size_fraction * 100.0,
            point.rmse
        );
    }
    let k = BlueprintCodec::recommended_components(&population);
    println!("  operating point: k = {k} (<0.5% variance lost)\n");

    let codec = BlueprintCodec::fit(&population, k).expect("codec");
    println!("evaluation-GPU embeddings (first 4 of {k} dims):");
    let blueprints: Vec<_> = database::all().iter().map(|g| codec.encode(g)).collect();
    for gpu in database::evaluation_gpus() {
        let bp = codec.encode(gpu);
        let head: Vec<String> = bp.values.iter().take(4).map(|v| format!("{v:+.2}")).collect();
        println!("  {:<16} [{}]", gpu.name, head.join(", "));
    }

    println!("\nnearest neighbors in Blueprint space:");
    for gpu in database::evaluation_gpus() {
        let me = codec.encode(gpu);
        let mut dists: Vec<(&str, f64)> = blueprints
            .iter()
            .filter(|b| b.gpu != gpu.name)
            .map(|b| {
                let d: f64 = b.values.iter().zip(&me.values).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt();
                (b.gpu.as_str(), d)
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        println!(
            "  {:<16} -> {} (d={:.2}), {} (d={:.2})",
            gpu.name, dists[0].0, dists[0].1, dists[1].0, dists[1].1
        );
    }

    println!("\nsampler thresholds generated from each Blueprint (§3.3):");
    for gpu in database::evaluation_gpus() {
        let bp = codec.encode(gpu);
        let sampler = EnsembleSampler::from_blueprint(&codec, &bp, DEFAULT_MEMBERS, DEFAULT_TAU);
        let decoded = codec.decode(&bp);
        println!(
            "  {:<16} {} members, tau={:.2}; decoded smem/SM {:.0} KiB (sheet {} KiB), decoded threads/SM {:.0} (sheet {})",
            gpu.name,
            sampler.len(),
            sampler.tau(),
            decoded.get("shared_mem_per_sm_kib").unwrap(),
            gpu.shared_mem_per_sm_kib,
            decoded.get("max_threads_per_sm").unwrap(),
            gpu.max_threads_per_sm,
        );
    }
}
