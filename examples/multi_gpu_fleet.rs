//! Fleet scenario: one model, many GPUs — the paper's motivating workload
//! (§1: "10 DNN models on 100 different GPUs would take around 10,000 GPU
//! hours to optimize").
//!
//! ```sh
//! cargo run --release --example multi_gpu_fleet
//! ```
//!
//! Tunes the same AlexNet convolution for every GPU in the evaluation fleet
//! in parallel, once with hardware-agnostic AutoTVM and once with Glimpse
//! reusing a *single* set of meta-trained artifacts across all targets —
//! only the per-target Blueprint changes. This is exactly the scalability
//! story of §2.2: the knowledge transfers; the embedding adapts.

use glimpse_repro::core::artifacts::{GlimpseArtifacts, TrainingOptions};
use glimpse_repro::core::tuner::GlimpseTuner;
use glimpse_repro::gpu_spec::database;
use glimpse_repro::sim::Measurer;
use glimpse_repro::space::templates;
use glimpse_repro::tensor_prog::models;
use glimpse_repro::tuners::autotvm::AutoTvmTuner;
use glimpse_repro::tuners::{Budget, TuneContext, Tuner, TuningOutcome};

fn main() {
    let fleet = database::evaluation_gpus();
    let model = models::alexnet();
    let task = model.tasks()[2].clone();
    println!("fleet tuning: {task}");
    println!("fleet: {:?}\n", fleet.iter().map(|g| g.name.as_str()).collect::<Vec<_>>());

    // One artifact set serves the whole fleet. Exclude all four targets
    // from meta-training to keep the evaluation honest.
    println!("meta-training shared artifacts on the 20 non-evaluation GPUs ...");
    let trainers: Vec<&glimpse_repro::gpu_spec::GpuSpec> = database::all()
        .iter()
        .filter(|g| !database::EVALUATION_GPUS.contains(&g.name.as_str()))
        .collect();
    let artifacts = GlimpseArtifacts::train_with(&trainers, TrainingOptions::fast(), 42).expect("artifact training");

    let budget = Budget::measurements(128);
    let mut results: Vec<(String, TuningOutcome, TuningOutcome)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .map(|gpu| {
                let artifacts = &artifacts;
                let task = &task;
                scope.spawn(move || {
                    let space = templates::space_for_task(task);
                    let mut measurer = Measurer::new((*gpu).clone(), 3);
                    let ctx = TuneContext::new(task, &space, &mut measurer, budget, 3);
                    let glimpse = GlimpseTuner::new(artifacts, gpu).tune(ctx);
                    let mut measurer = Measurer::new((*gpu).clone(), 3);
                    let ctx = TuneContext::new(task, &space, &mut measurer, budget, 3);
                    let autotvm = AutoTvmTuner::new().tune(ctx);
                    (gpu.name.clone(), glimpse, autotvm)
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("fleet worker"));
        }
    });

    println!(
        "\n{:<16} {:>14} {:>14} {:>10} {:>12}",
        "GPU", "Glimpse GFLOPS", "AutoTVM GFLOPS", "speed", "GPU-s saved"
    );
    let mut total_saved = 0.0;
    for (gpu, glimpse, autotvm) in &results {
        let saved = autotvm.gpu_seconds - glimpse.gpu_seconds;
        total_saved += saved;
        println!(
            "{gpu:<16} {:>14.0} {:>14.0} {:>9.2}x {:>11.1}s",
            glimpse.best_gflops,
            autotvm.best_gflops,
            glimpse.best_gflops / autotvm.best_gflops.max(1e-9),
            saved
        );
    }
    println!("\nacross the fleet, Glimpse saved {total_saved:.0} simulated GPU seconds at equal budgets");
    println!("(one artifact set; per-GPU adaptation came only from each target's Blueprint)");
}
