//! Quickstart: tune one convolution layer on one GPU with Glimpse.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline: pick a GPU from the data-sheet database, train
//! the offline artifacts (Blueprint codec + prior generator + acquisition)
//! on *other* GPUs, then tune a ResNet-18 convolution and compare against
//! plain AutoTVM at the same measurement budget.

use glimpse_repro::core::artifacts::{GlimpseArtifacts, TrainingOptions};
use glimpse_repro::core::tuner::GlimpseTuner;
use glimpse_repro::gpu_spec::database;
use glimpse_repro::sim::Measurer;
use glimpse_repro::space::templates;
use glimpse_repro::tensor_prog::models;
use glimpse_repro::tuners::autotvm::AutoTvmTuner;
use glimpse_repro::tuners::{Budget, TuneContext, Tuner};

fn main() {
    // 1. The target GPU, straight from the public data-sheet database.
    let target = database::find("RTX 2080 Ti").expect("GPU in database");
    println!("target: {target}");

    // 2. Offline (one-off): meta-train Glimpse's artifacts on every *other*
    //    GPU in the database — the target is never seen during training.
    //    (`TrainingOptions::fast()` keeps this example snappy; the figure
    //    harnesses use the full-size defaults.)
    println!("meta-training artifacts (leave-one-out) ...");
    let gpus = database::training_gpus(&target.name);
    let artifacts = GlimpseArtifacts::train_with(&gpus, TrainingOptions::fast(), 42).expect("artifact training");
    println!("blueprint: {}", artifacts.encode(target));

    // 3. Pick a task: the 3x3 stride-1 convolution of ResNet-18's stage 1.
    let model = models::resnet18();
    let task = &model.tasks()[2];
    let space = templates::space_for_task(task);
    println!("task: {task}");
    println!("search space: {} configurations", space.size());

    // 4. Run-to-quality, the paper's comparison mode: each compiler runs
    //    until its output code reaches 90 % of the near-exhaustive optimum
    //    (or a hard measurement cap), and we compare the GPU time burned.
    let oracle = Measurer::new(target.clone(), 7)
        .oracle_best(&space, 20_000, 7)
        .expect("oracle found a valid configuration")
        .1;
    let budget = Budget::measurements(384).with_target(0.9 * oracle);
    println!(
        "quality target: {:.0} GFLOPS (90% of the near-exhaustive best {:.0})",
        0.9 * oracle,
        oracle
    );

    let mut measurer = Measurer::new(target.clone(), 7);
    let ctx = TuneContext::new(task, &space, &mut measurer, budget, 7);
    let glimpse = GlimpseTuner::new(&artifacts, target).tune(ctx);

    let mut measurer = Measurer::new(target.clone(), 7);
    let ctx = TuneContext::new(task, &space, &mut measurer, budget, 7);
    let autotvm = AutoTvmTuner::new().tune(ctx);

    println!("\n               best GFLOPS  measurements  invalid  explorer steps  GPU seconds");
    for outcome in [&glimpse, &autotvm] {
        println!(
            "{:<12} {:>12.0} {:>13} {:>8} {:>15} {:>12.1}",
            outcome.tuner,
            outcome.best_gflops,
            outcome.measurements,
            outcome.invalid_measurements,
            outcome.explorer_steps,
            outcome.gpu_seconds
        );
    }
    let speedup = autotvm.gpu_seconds / glimpse.gpu_seconds.max(1e-9);
    println!("\nGlimpse reached the quality target in {speedup:.2}x less GPU time.");
    if let Some(config) = &glimpse.best_config {
        println!("best configuration knob values:");
        for (knob, value) in space.knobs().iter().zip(space.values(config)) {
            println!("  {:<22} = {value}", knob.name());
        }
    }
}
