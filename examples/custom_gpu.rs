//! Bring-your-own data sheet: tune for a GPU that is in *nobody's*
//! database.
//!
//! ```sh
//! cargo run --release --example custom_gpu [path/to/sheet.txt]
//! ```
//!
//! This is the deployment story the paper's conclusion points at ("cope
//! with the constant evolution of the hardware"): a new GPU ships, you copy
//! its public data sheet into a text file, and the already-trained Glimpse
//! artifacts adapt through the Blueprint alone — no re-training, no code
//! change. Without a path argument, a built-in hypothetical "RTX 4070-ish"
//! sheet is used.

use glimpse_repro::core::artifacts::{GlimpseArtifacts, TrainingOptions};
use glimpse_repro::core::tuner::GlimpseTuner;
use glimpse_repro::gpu_spec::{database, datasheet};
use glimpse_repro::sim::Measurer;
use glimpse_repro::space::templates;
use glimpse_repro::tensor_prog::models;
use glimpse_repro::tuners::random::RandomTuner;
use glimpse_repro::tuners::{Budget, TuneContext, Tuner};

const BUILTIN_SHEET: &str = "\
# A hypothetical next-generation part, straight from a vendor page.
name: Custom GPU X
generation: Ampere
sm_count: 46
cores_per_sm: 128
base_clock_mhz: 1920
boost_clock_mhz: 2475
mem_bandwidth_gb_s: 504
mem_bus_bits: 192
mem_size_gib: 12
l2_cache_kib: 8192
tdp_w: 200
";

fn main() -> Result<(), String> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).map_err(|e| format!("could not read {path}: {e}"))?,
        None => BUILTIN_SHEET.to_owned(),
    };
    let gpu = datasheet::parse_sheet(&text).map_err(|e| format!("bad data sheet: {e}"))?;
    println!("parsed sheet: {gpu}");

    // Artifacts trained on the stock database only — the custom GPU has
    // never been seen by any component.
    println!("meta-training artifacts on the stock 24-GPU database ...");
    let trainers: Vec<&glimpse_repro::gpu_spec::GpuSpec> = database::all().iter().collect();
    let artifacts = GlimpseArtifacts::train_with(&trainers, TrainingOptions::fast(), 42).expect("artifact training");
    let blueprint = artifacts.encode(&gpu);
    println!("blueprint for the unseen part: {blueprint}");

    let model = models::resnet18();
    let task = &model.tasks()[1];
    let space = templates::space_for_task(task);
    println!("task: {task}\n");

    let budget = Budget::measurements(96);
    let mut measurer = Measurer::new(gpu.clone(), 7);
    let ctx = TuneContext::new(task, &space, &mut measurer, budget, 7);
    let glimpse = GlimpseTuner::new(&artifacts, &gpu).tune(ctx);

    let mut measurer = Measurer::new(gpu.clone(), 7);
    let ctx = TuneContext::new(task, &space, &mut measurer, budget, 7);
    let random = RandomTuner::new().tune(ctx);

    println!("{:<10} {:>12} {:>9} {:>13}", "tuner", "best GFLOPS", "invalid", "GPU seconds");
    for outcome in [&glimpse, &random] {
        println!(
            "{:<10} {:>12.0} {:>9} {:>13.1}",
            outcome.tuner, outcome.best_gflops, outcome.invalid_measurements, outcome.gpu_seconds
        );
    }
    println!(
        "\nOn a GPU no component ever saw, the Blueprint still bought {:.1}x better\ninitial+guided search than blind sampling at the same budget.",
        glimpse.best_gflops / random.best_gflops.max(1e-9)
    );
    Ok(())
}
