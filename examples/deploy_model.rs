//! Deployment scenario: compile a full DNN for a target GPU and report
//! end-to-end inference latency.
//!
//! ```sh
//! cargo run --release --example deploy_model -- [alexnet|resnet18|vgg16] [gpu name]
//! ```
//!
//! This is the deployment engineer's workflow of §2: every task of the
//! model is tuned (both the direct and Winograd template for eligible
//! convolutions), the faster implementation is kept per layer, and the
//! per-layer latencies are folded into the model's inference latency.

use glimpse_repro::core::artifacts::{GlimpseArtifacts, TrainingOptions};
use glimpse_repro::core::tuner::GlimpseTuner;
use glimpse_repro::gpu_spec::database;
use glimpse_repro::sim::Measurer;
use glimpse_repro::space::templates;
use glimpse_repro::tensor_prog::{models, OpSpec, TemplateKind};
use glimpse_repro::tuners::{Budget, TuneContext, Tuner};

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let model_name = args.get(1).map_or("resnet18", String::as_str);
    let gpu_name = args.get(2).map_or("RTX 2070 Super", String::as_str);

    let model = models::find(model_name).ok_or_else(|| format!("unknown model {model_name}; use alexnet | resnet18 | vgg16"))?;
    let target = database::find(gpu_name).ok_or_else(|| format!("unknown GPU {gpu_name}; see glimpse_gpu_spec::database"))?;

    println!("deploying {} on {target}", model.name());
    println!("meta-training artifacts (one-off, leave-one-out) ...");
    let gpus = database::training_gpus(&target.name);
    let artifacts = GlimpseArtifacts::train_with(&gpus, TrainingOptions::fast(), 42).expect("artifact training");

    let budget_per_task = Budget::measurements(96);
    let mut bests: Vec<(usize, TemplateKind, OpSpec, f64)> = Vec::new();
    let mut total_gpu_s = 0.0;
    for task in model.tasks() {
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(target.clone(), 11);
        let ctx = TuneContext::new(task, &space, &mut measurer, budget_per_task, 11);
        let outcome = GlimpseTuner::new(&artifacts, target).tune(ctx);
        println!(
            "  L{:<2} {:<16} {:>8.0} GFLOPS  ({} measurements, {} invalid)",
            task.id.index,
            task.template.to_string(),
            outcome.best_gflops,
            outcome.measurements,
            outcome.invalid_measurements
        );
        total_gpu_s += outcome.gpu_seconds;
        bests.push((task.id.index, task.template, task.op, outcome.best_gflops));
    }

    // Fold per-task results into end-to-end latency: eligible convolutions
    // keep the faster of (direct, winograd).
    let mut latency_ms = 0.0;
    for task in model.tasks() {
        if task.template == TemplateKind::Conv2dWinograd {
            continue;
        }
        let direct = bests.iter().find(|(i, ..)| *i == task.id.index).expect("tuned").3;
        let wino = bests
            .iter()
            .find(|(_, tpl, op, _)| *tpl == TemplateKind::Conv2dWinograd && *op == task.op)
            .map_or(0.0, |(.., g)| *g);
        let chosen = direct.max(wino).max(50.0);
        latency_ms += task.latency_ms(chosen);
    }
    println!("\ncompilation used {:.1} simulated GPU minutes", total_gpu_s / 60.0);
    println!(
        "end-to-end {} inference latency on {}: {:.3} ms",
        model.name(),
        target.name,
        latency_ms
    );
    Ok(())
}
