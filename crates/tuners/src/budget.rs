//! Tuning budgets: when does the compilation loop stop?
//!
//! The paper's comparisons use two stopping modes: a fixed optimization-time
//! budget per layer (Fig. 5 gives every compiler 100 seconds) and
//! run-to-quality (Fig. 6/9 compare how fast each compiler reaches
//! comparable output-code performance). [`Budget`] expresses both, plus a
//! hard measurement cap so no experiment runs away.

use serde::{Deserialize, Serialize};

/// Convergence detection: stop when the incumbent best has improved by less
/// than `epsilon` (relative) over the last `window` measurements. This is
/// how each compiler self-paces in the end-to-end comparison — well-guided
/// search plateaus early and stops paying for measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlateauRule {
    /// Number of trailing measurements inspected.
    pub window: usize,
    /// Relative improvement below which the run is considered converged.
    pub epsilon: f64,
}

/// Stopping criteria for one tuning run. Tuning stops when **any** bound is
/// hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum hardware measurements.
    pub max_measurements: usize,
    /// Maximum simulated GPU seconds (`f64::INFINITY` to disable).
    pub max_gpu_seconds: f64,
    /// Stop early once the best measured throughput reaches this (GFLOPS).
    pub target_gflops: Option<f64>,
    /// Stop once the best-so-far trajectory plateaus.
    pub plateau: Option<PlateauRule>,
}

impl Budget {
    /// Budget bounded only by a measurement count.
    ///
    /// # Examples
    ///
    /// ```
    /// use glimpse_tuners::Budget;
    /// let b = Budget::measurements(100).with_target(2000.0).with_plateau(32, 0.01);
    /// assert!(b.exhausted(100, 0.0, 0.0));       // count cap
    /// assert!(b.exhausted(5, 0.0, 2500.0));      // quality target
    /// assert!(!b.exhausted(5, 0.0, 100.0));
    /// ```
    #[must_use]
    pub fn measurements(n: usize) -> Self {
        Self {
            max_measurements: n,
            max_gpu_seconds: f64::INFINITY,
            target_gflops: None,
            plateau: None,
        }
    }

    /// Budget bounded by simulated GPU seconds (with a generous measurement
    /// cap as a backstop).
    #[must_use]
    pub fn gpu_seconds(s: f64) -> Self {
        Self {
            max_measurements: 100_000,
            max_gpu_seconds: s,
            target_gflops: None,
            plateau: None,
        }
    }

    /// Adds an early-exit quality target.
    #[must_use]
    pub fn with_target(mut self, gflops: f64) -> Self {
        self.target_gflops = Some(gflops);
        self
    }

    /// Adds plateau-based convergence stopping.
    #[must_use]
    pub fn with_plateau(mut self, window: usize, epsilon: f64) -> Self {
        self.plateau = Some(PlateauRule { window, epsilon });
        self
    }

    /// Whether a best-so-far trajectory has plateaued under this budget's
    /// rule (always false without one, or before `window + 1` entries).
    #[must_use]
    pub fn plateaued(&self, trajectory: &[f64]) -> bool {
        let Some(rule) = self.plateau else { return false };
        if trajectory.len() <= rule.window {
            return false;
        }
        let now = trajectory[trajectory.len() - 1];
        let then = trajectory[trajectory.len() - 1 - rule.window];
        if now <= 0.0 {
            return false; // nothing valid found yet; keep searching
        }
        (now - then) / now < rule.epsilon
    }

    /// Whether a run in this state should stop.
    #[must_use]
    pub fn exhausted(&self, measurements: usize, gpu_seconds: f64, best_gflops: f64) -> bool {
        if measurements >= self.max_measurements {
            return true;
        }
        if gpu_seconds >= self.max_gpu_seconds {
            return true;
        }
        if let Some(target) = self.target_gflops {
            if best_gflops >= target {
                return true;
            }
        }
        false
    }

    /// Measurements still allowed.
    #[must_use]
    pub fn remaining_measurements(&self, measurements: usize) -> usize {
        self.max_measurements.saturating_sub(measurements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_cap_stops() {
        let b = Budget::measurements(10);
        assert!(!b.exhausted(9, 0.0, 0.0));
        assert!(b.exhausted(10, 0.0, 0.0));
    }

    #[test]
    fn gpu_seconds_cap_stops() {
        let b = Budget::gpu_seconds(100.0);
        assert!(!b.exhausted(5, 99.9, 0.0));
        assert!(b.exhausted(5, 100.0, 0.0));
    }

    #[test]
    fn quality_target_stops_early() {
        let b = Budget::measurements(1000).with_target(2000.0);
        assert!(!b.exhausted(5, 0.0, 1999.0));
        assert!(b.exhausted(5, 0.0, 2000.0));
    }

    #[test]
    fn remaining_measurements_saturates() {
        let b = Budget::measurements(10);
        assert_eq!(b.remaining_measurements(3), 7);
        assert_eq!(b.remaining_measurements(30), 0);
    }

    #[test]
    fn plateau_detects_stalled_trajectory() {
        let b = Budget::measurements(1000).with_plateau(4, 0.01);
        // Improving trajectory: no plateau.
        assert!(!b.plateaued(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        // Flat tail beyond the window: plateau.
        assert!(b.plateaued(&[1.0, 5.0, 5.0, 5.0, 5.0, 5.0]));
        // Too short to judge.
        assert!(!b.plateaued(&[5.0, 5.0, 5.0]));
    }

    #[test]
    fn plateau_ignores_runs_with_no_valid_measurement() {
        let b = Budget::measurements(1000).with_plateau(2, 0.01);
        assert!(!b.plateaued(&[0.0, 0.0, 0.0, 0.0, 0.0]));
    }

    #[test]
    fn no_plateau_rule_never_plateaus() {
        let b = Budget::measurements(10);
        assert!(!b.plateaued(&[5.0; 100]));
    }
}
