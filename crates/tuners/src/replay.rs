//! Replay tuning: re-issue a recorded journal's configurations verbatim.
//!
//! Two production uses, both borrowed from how TVM logs are used in
//! practice: (a) *re-measurement* — validate a past run's winners on a
//! fresh measurement channel (different noise seed, recalibrated device);
//! (b) *regression pinning* — CI replays a golden journal and compares
//! outcomes, catching accidental behavior changes in the measurement stack.

use crate::context::{TuneContext, Tuner, TuningOutcome};
use crate::history::TuningHistory;

/// Replays the configurations of a recorded history, in order.
#[derive(Debug, Clone)]
pub struct ReplayTuner {
    source: TuningHistory,
}

impl ReplayTuner {
    /// Creates a replayer for `source`.
    #[must_use]
    pub fn new(source: TuningHistory) -> Self {
        Self { source }
    }

    /// The journal being replayed.
    #[must_use]
    pub fn source(&self) -> &TuningHistory {
        &self.source
    }
}

impl Tuner for ReplayTuner {
    fn name(&self) -> &str {
        "Replay"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        for trial in &self.source.trials {
            if ctx.exhausted() {
                break;
            }
            ctx.measure(&trial.config);
        }
        ctx.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::random::RandomTuner;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    fn recorded_run(seed: u64) -> TuningOutcome {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), seed);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(40), seed);
        RandomTuner::new().tune(ctx)
    }

    #[test]
    fn replay_visits_identical_configs() {
        let original = recorded_run(1);
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 999); // different noise
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(40), 999);
        let replayed = ReplayTuner::new(original.history.clone()).tune(ctx);
        assert_eq!(replayed.measurements, original.measurements);
        for (a, b) in replayed.history.trials.iter().zip(&original.history.trials) {
            assert_eq!(a.config, b.config);
        }
    }

    #[test]
    fn replay_under_different_noise_stays_close() {
        let original = recorded_run(2);
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 31337);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(40), 31337);
        let replayed = ReplayTuner::new(original.history.clone()).tune(ctx);
        // Validity pattern is deterministic; throughputs differ only by noise.
        for (a, b) in replayed.history.trials.iter().zip(&original.history.trials) {
            assert_eq!(a.is_valid(), b.is_valid());
            if let (Some(x), Some(y)) = (a.gflops, b.gflops) {
                assert!((x / y - 1.0).abs() < 0.2, "replay diverged: {x} vs {y}");
            }
        }
    }

    #[test]
    fn replay_respects_tighter_budget() {
        let original = recorded_run(3);
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 5);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(10), 5);
        let replayed = ReplayTuner::new(original.history).tune(ctx);
        assert_eq!(replayed.measurements, 10);
    }
}
