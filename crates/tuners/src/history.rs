//! Tuning histories: the measurement journal of one run, and the log store
//! used for transfer learning and meta-training.
//!
//! Serialized [`TuningHistory`] records are this reproduction's equivalent
//! of TVM tuning logs / the TenSet corpus [19] that §3.1 gathers to train
//! the prior generator `H`.

use glimpse_sim::{InvalidReason, MeasureFault, MeasureResult, Outcome};
use glimpse_space::Config;
use glimpse_tensor_prog::TemplateKind;
use serde::{Deserialize, Serialize};

/// One measured trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// The measured configuration.
    pub config: Config,
    /// Throughput in GFLOPS; `None` if the launch failed or faulted.
    pub gflops: Option<f64>,
    /// Simulated GPU seconds this trial cost (retries and backoff
    /// included when the harness retried).
    pub cost_s: f64,
    /// The infrastructure fault that ate this trial, if one did. A fault
    /// says nothing about the configuration — faulted trials must never
    /// become surrogate training targets, unlike invalid ones.
    pub fault: Option<MeasureFault>,
    /// Why the configuration was rejected, when the trial was invalid.
    /// Absent in logs written before this field existed (those records
    /// still classify as invalid via `gflops`/`fault`).
    pub invalid: Option<InvalidReason>,
}

impl Trial {
    /// Converts a measurement result into a trial record.
    #[must_use]
    pub fn from_measure(result: &MeasureResult) -> Self {
        let (gflops, invalid) = match result.outcome {
            Outcome::Valid { gflops, .. } => (Some(gflops), None),
            Outcome::Invalid(reason) => (None, Some(reason)),
            Outcome::Faulted(_) => (None, None),
        };
        Self {
            config: result.config.clone(),
            gflops,
            cost_s: result.cost_s,
            fault: result.outcome.fault(),
            invalid,
        }
    }

    /// Whether the trial was a valid measurement.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.gflops.is_some()
    }

    /// Whether the trial was lost to an infrastructure fault.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        self.fault.is_some()
    }

    /// Whether the configuration itself was invalid (resource violation):
    /// a *learnable* failure, unlike a fault.
    #[must_use]
    pub fn is_invalid(&self) -> bool {
        self.gflops.is_none() && self.fault.is_none()
    }
}

/// The full journal of one tuning run on one (GPU, task) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningHistory {
    /// GPU marketing name.
    pub gpu: String,
    /// Model the task came from.
    pub model: String,
    /// Task index within the model.
    pub task_index: usize,
    /// Code template tuned.
    pub template: TemplateKind,
    /// Trials in measurement order.
    pub trials: Vec<Trial>,
}

impl TuningHistory {
    /// Empty history for a (GPU, task) pair.
    #[must_use]
    pub fn new(gpu: &str, model: &str, task_index: usize, template: TemplateKind) -> Self {
        Self {
            gpu: gpu.to_owned(),
            model: model.to_owned(),
            task_index,
            template,
            trials: Vec::new(),
        }
    }

    /// Appends a trial.
    pub fn push(&mut self, trial: Trial) {
        self.trials.push(trial);
    }

    /// Number of trials.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether no trials were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Best valid throughput so far, 0 if none.
    #[must_use]
    pub fn best_gflops(&self) -> f64 {
        self.trials.iter().filter_map(|t| t.gflops).fold(0.0, f64::max)
    }

    /// The best valid configuration, if any trial succeeded.
    #[must_use]
    pub fn best_config(&self) -> Option<&Config> {
        self.trials
            .iter()
            .filter(|t| t.is_valid())
            .max_by(|a, b| {
                a.gflops
                    .unwrap_or(f64::NEG_INFINITY)
                    .total_cmp(&b.gflops.unwrap_or(f64::NEG_INFINITY))
            })
            .map(|t| &t.config)
    }

    /// Best-so-far trajectory: element `i` is the best throughput after
    /// `i + 1` measurements.
    #[must_use]
    pub fn trajectory(&self) -> Vec<f64> {
        let mut best = 0.0f64;
        self.trials
            .iter()
            .map(|t| {
                if let Some(g) = t.gflops {
                    best = best.max(g);
                }
                best
            })
            .collect()
    }

    /// Fraction of trials whose configuration was invalid (faulted trials
    /// are excluded from both numerator and population — they say nothing
    /// about the space).
    #[must_use]
    pub fn invalid_fraction(&self) -> f64 {
        let population = self.trials.iter().filter(|t| !t.is_fault()).count();
        if population == 0 {
            return 0.0;
        }
        self.invalid_count() as f64 / population as f64
    }

    /// Number of invalid trials (configuration violations, not faults).
    #[must_use]
    pub fn invalid_count(&self) -> usize {
        self.trials.iter().filter(|t| t.is_invalid()).count()
    }

    /// Number of trials lost to infrastructure faults.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.trials.iter().filter(|t| t.is_fault()).count()
    }

    /// Total simulated GPU seconds spent.
    #[must_use]
    pub fn gpu_seconds(&self) -> f64 {
        self.trials.iter().map(|t| t.cost_s).sum()
    }

    /// Number of measurements needed to first reach `gflops`, if ever.
    #[must_use]
    pub fn measurements_to_reach(&self, gflops: f64) -> Option<usize> {
        let mut best = 0.0f64;
        for (i, t) in self.trials.iter().enumerate() {
            if let Some(g) = t.gflops {
                best = best.max(g);
            }
            if best >= gflops {
                return Some(i + 1);
            }
        }
        None
    }

    /// Valid `(config, gflops)` pairs — the supervised dataset for cost
    /// models and the prior generator.
    #[must_use]
    pub fn valid_pairs(&self) -> Vec<(&Config, f64)> {
        self.trials.iter().filter_map(|t| t.gflops.map(|g| (&t.config, g))).collect()
    }
}

/// A collection of tuning histories from past runs — the corpus transfer
/// learning (AutoTVM), cross-task priors (DGP), and Glimpse's offline
/// meta-training all draw from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogStore {
    logs: Vec<TuningHistory>,
}

impl LogStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a history.
    pub fn push(&mut self, history: TuningHistory) {
        self.logs.push(history);
    }

    /// All histories.
    #[must_use]
    pub fn logs(&self) -> &[TuningHistory] {
        &self.logs
    }

    /// Number of stored histories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// Whether the store holds no histories.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Histories matching a template, excluding a (gpu, model, task) target
    /// — the leave-one-out query used everywhere meta-knowledge is built.
    #[must_use]
    pub fn transfer_set(&self, template: TemplateKind, exclude_gpu: &str, exclude_model: &str, exclude_task: usize) -> Vec<&TuningHistory> {
        self.logs
            .iter()
            .filter(|h| h.template == template)
            .filter(|h| !(h.gpu == exclude_gpu && h.model == exclude_model && h.task_index == exclude_task))
            .collect()
    }

    /// Histories for a specific GPU and template (DGP transfers across
    /// layers of one target GPU).
    #[must_use]
    pub fn for_gpu(&self, gpu: &str, template: TemplateKind) -> Vec<&TuningHistory> {
        self.logs.iter().filter(|h| h.gpu == gpu && h.template == template).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(gflops: &[Option<f64>]) -> TuningHistory {
        let mut h = TuningHistory::new("Titan Xp", "toy", 0, TemplateKind::Conv2dDirect);
        for (i, g) in gflops.iter().enumerate() {
            h.push(Trial {
                config: Config::new(vec![i]),
                gflops: *g,
                cost_s: 1.0,
                fault: None,
                invalid: None,
            });
        }
        h
    }

    #[test]
    fn best_and_trajectory() {
        let h = history_with(&[Some(10.0), None, Some(30.0), Some(20.0)]);
        assert_eq!(h.best_gflops(), 30.0);
        assert_eq!(h.trajectory(), vec![10.0, 10.0, 30.0, 30.0]);
        assert_eq!(h.best_config(), Some(&Config::new(vec![2])));
    }

    #[test]
    fn invalid_accounting() {
        let h = history_with(&[Some(10.0), None, None, Some(20.0)]);
        assert_eq!(h.invalid_count(), 2);
        assert!((h.invalid_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn faults_are_journaled_separately_from_invalids() {
        let mut h = history_with(&[Some(10.0), None]);
        h.push(Trial {
            config: Config::new(vec![9]),
            gflops: None,
            cost_s: 10.0,
            fault: Some(MeasureFault::Timeout { timeout_s: 10.0 }),
            invalid: None,
        });
        assert_eq!(h.invalid_count(), 1);
        assert_eq!(h.fault_count(), 1);
        // The faulted trial drops out of the invalid-fraction population.
        assert!((h.invalid_fraction() - 0.5).abs() < 1e-12);
        // ...but its cost still counts against the GPU-seconds budget.
        assert!((h.gpu_seconds() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn measurements_to_reach_finds_first_crossing() {
        let h = history_with(&[Some(10.0), Some(15.0), Some(40.0)]);
        assert_eq!(h.measurements_to_reach(12.0), Some(2));
        assert_eq!(h.measurements_to_reach(40.0), Some(3));
        assert_eq!(h.measurements_to_reach(50.0), None);
    }

    #[test]
    fn gpu_seconds_sum_costs() {
        let h = history_with(&[Some(1.0), None]);
        assert!((h.gpu_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_set_excludes_target() {
        let mut store = LogStore::new();
        store.push(history_with(&[Some(1.0)]));
        let mut other = history_with(&[Some(2.0)]);
        other.gpu = "RTX 3090".into();
        store.push(other);
        let set = store.transfer_set(TemplateKind::Conv2dDirect, "Titan Xp", "toy", 0);
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].gpu, "RTX 3090");
    }

    #[test]
    fn for_gpu_filters() {
        let mut store = LogStore::new();
        store.push(history_with(&[Some(1.0)]));
        assert_eq!(store.for_gpu("Titan Xp", TemplateKind::Conv2dDirect).len(), 1);
        assert_eq!(store.for_gpu("Titan Xp", TemplateKind::Dense).len(), 0);
        assert_eq!(store.for_gpu("RTX 3090", TemplateKind::Conv2dDirect).len(), 0);
    }

    #[test]
    fn valid_pairs_skip_invalid() {
        let h = history_with(&[Some(10.0), None, Some(30.0)]);
        assert_eq!(h.valid_pairs().len(), 2);
    }
}
