//! Auto-tuning framework and the hardware-agnostic baselines.
//!
//! This crate provides the shared tuning loop of §2.1 — propose candidates,
//! measure them on (simulated) hardware, update a surrogate, repeat — and
//! the three state-of-the-art compilers the paper compares against:
//!
//! * [`autotvm::AutoTvmTuner`] — gradient-boosted surrogate + parallel
//!   simulated annealing + ε-greedy batches (Chen et al., NeurIPS '18),
//!   with optional cross-hardware **transfer learning** (Fig. 5's baseline).
//! * [`chameleon::ChameleonTuner`] — adaptive exploration (shrinking
//!   annealing budgets restarted from the incumbent top-K) and adaptive
//!   sampling (k-means over proposed configs, measuring snapped centroids)
//!   (Ahn et al., ICLR '20).
//! * [`dgp::DgpTuner`] — Gaussian-process surrogate with expected
//!   improvement and cross-task transfer priors (Sun et al., ICCV '21).
//! * [`random::RandomTuner`], [`grid::GridTuner`] — sanity baselines.
//!
//! All tuners speak the same [`Tuner`] trait and report the same
//! [`TuningOutcome`] metrics (best GFLOPS, explorer steps, invalid counts,
//! simulated GPU seconds), which is what the figure harnesses aggregate.

#![forbid(unsafe_code)]

pub mod autotvm;
pub mod budget;
pub mod chameleon;
pub mod context;
pub mod cost_model;
pub mod dgp;
pub mod diagnostics;
pub mod feature_cache;
pub mod genetic;
pub mod grid;
pub mod history;
pub mod journal;
pub mod portfolio;
pub mod random;
pub mod replay;
pub mod scheduler;

pub use budget::Budget;
pub use context::{RunControl, TuneContext, Tuner, TuningOutcome};
pub use feature_cache::{CacheStats, FeatureCache};
pub use history::{LogStore, Trial, TuningHistory};
pub use journal::{run_checkpointed, run_supervised, CheckpointSpec, JournalError, RunHeader, RunJournal, SupervisedOutcome, TrialRecord};
