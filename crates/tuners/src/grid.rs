//! Strided grid search — the "simple grid search" §2.1 calls impractical.
//!
//! Included as a baseline and as a demonstration of *why* the paper's
//! premise holds: covering a 10⁸-point space with a few hundred probes
//! leaves astronomically large unexplored gaps.

use crate::context::{TuneContext, Tuner, TuningOutcome};

/// Visits configurations at a fixed stride through the flattened space.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridTuner;

impl GridTuner {
    /// Creates the tuner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Tuner for GridTuner {
    fn name(&self) -> &str {
        "Grid"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let size = ctx.space.size();
        let probes = ctx.remaining().max(1) as u128;
        let stride = (size / probes).max(1);
        let mut flat: u128 = stride / 2; // center probes within their cells
        while !ctx.exhausted() && flat < size {
            let config = ctx.space.config_from_flat(flat);
            ctx.measure(&config);
            ctx.add_explorer_steps(1);
            flat += stride;
        }
        ctx.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    #[test]
    fn grid_probes_distinct_configs() {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("RTX 3090").unwrap().clone(), 1);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(25), 7);
        let outcome = GridTuner::new().tune(ctx);
        assert_eq!(outcome.measurements, 25);
        let mut indices: Vec<&glimpse_space::Config> = outcome.history.trials.iter().map(|t| &t.config).collect();
        indices.dedup();
        assert_eq!(indices.len(), 25, "grid must not repeat configs");
    }

    #[test]
    fn grid_handles_budget_larger_than_space() {
        let model = models::alexnet();
        // Dense 4096->1000 space is ~600k, still > budget; use tiny custom space via ry knob trick:
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("RTX 3090").unwrap().clone(), 1);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(5), 7);
        let outcome = GridTuner::new().tune(ctx);
        assert!(outcome.measurements <= 5);
    }
}
