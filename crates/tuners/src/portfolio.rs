//! Portfolio tuning: interleave several tuners and let measured progress
//! decide who gets the next slice of budget.
//!
//! Algorithm selection is the classic answer when no single search strategy
//! dominates every (hardware, layer) pair — which is precisely the premise
//! behind the paper's Fig. 1. The portfolio runs each member tuner in
//! fixed-size slices and allocates the remaining budget by UCB1 over the
//! per-slice improvement each member has delivered.
//!
//! Because the [`Tuner`] trait consumes its context, members are modeled as
//! *factories*: each slice constructs a fresh member over a shared journal
//! prefix (the measured history is shared through the [`TuneContext`]'s
//! dedup, so members build on one another's measurements).

use crate::context::{TuneContext, Tuner, TuningOutcome};
use crate::Budget;

/// One member of the portfolio: a display name plus a factory for a boxed
/// tuner instance.
pub struct Member {
    name: &'static str,
    build: Box<dyn Fn() -> Box<dyn Tuner> + Send + Sync>,
}

impl Member {
    /// Creates a member from a factory closure.
    pub fn new<F>(name: &'static str, build: F) -> Self
    where
        F: Fn() -> Box<dyn Tuner> + Send + Sync + 'static,
    {
        Self {
            name,
            build: Box::new(build),
        }
    }

    /// Member display name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.name
    }
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Member").field("name", &self.name).finish_non_exhaustive()
    }
}

/// The portfolio tuner.
#[derive(Debug)]
pub struct PortfolioTuner {
    members: Vec<Member>,
    /// Measurements granted per slice.
    pub slice: usize,
    /// UCB exploration coefficient.
    pub exploration: f64,
}

impl PortfolioTuner {
    /// Creates a portfolio over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn new(members: Vec<Member>) -> Self {
        assert!(!members.is_empty(), "portfolio needs at least one member");
        Self {
            members,
            slice: 32,
            exploration: 0.4,
        }
    }
}

impl Tuner for PortfolioTuner {
    fn name(&self) -> &str {
        "Portfolio"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let n = self.members.len();
        let mut plays = vec![0usize; n];
        let mut gains = vec![0.0f64; n];
        let mut round = 0usize;
        while !ctx.exhausted() {
            // UCB1 with unplayed-first.
            let pick = (0..n).find(|&i| plays[i] == 0).unwrap_or_else(|| {
                let total: usize = plays.iter().sum();
                (0..n)
                    .max_by(|&a, &b| {
                        let score =
                            |i: usize| gains[i] / plays[i] as f64 + self.exploration * ((total as f64).ln() / plays[i] as f64).sqrt();
                        score(a).total_cmp(&score(b))
                    })
                    .expect("nonempty members")
            });

            // Run the member for one slice in a sub-context sharing our
            // measurer (the clock and noise stream carry across slices).
            let before_best = ctx.history().best_gflops();
            let slice_budget = Budget::measurements(self.slice.min(ctx.remaining().max(1)));
            let sub = TuneContext::new(
                ctx.task,
                ctx.space,
                ctx.measurer,
                slice_budget,
                ctx.seed.wrapping_add(round as u64 * 7919),
            );
            let outcome = (self.members[pick].build)().tune(sub);
            round += 1;
            // Fold the slice's trials into the main journal.
            ctx.add_explorer_steps(outcome.explorer_steps);
            for trial in &outcome.history.trials {
                if ctx.exhausted() {
                    break;
                }
                ctx.absorb(trial.clone());
            }
            let improvement = (ctx.history().best_gflops() - before_best).max(0.0);
            plays[pick] += 1;
            gains[pick] += improvement / before_best.max(1.0);
        }
        ctx.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autotvm::AutoTvmTuner;
    use crate::genetic::GeneticTuner;
    use crate::random::RandomTuner;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    fn members() -> Vec<Member> {
        vec![
            Member::new("autotvm", || Box::new(AutoTvmTuner::new())),
            Member::new("genetic", || Box::new(GeneticTuner::new())),
            Member::new("random", || Box::new(RandomTuner::new())),
        ]
    }

    fn run(budget: usize, seed: u64) -> TuningOutcome {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("GTX 1080 Ti").unwrap().clone(), seed);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(budget), seed);
        PortfolioTuner::new(members()).tune(ctx)
    }

    #[test]
    fn portfolio_spends_the_budget_and_finds_valid_configs() {
        let outcome = run(128, 1);
        assert_eq!(outcome.tuner, "Portfolio");
        assert!(outcome.measurements <= 128);
        assert!(outcome.measurements >= 96, "portfolio under-spent: {}", outcome.measurements);
        assert!(outcome.best_gflops > 0.0);
    }

    #[test]
    fn portfolio_is_at_least_as_good_as_pure_random() {
        // Statistical claim, so majority-of-seeds like the other tuner
        // comparisons: any single seed can hand random a lucky draw.
        let mut wins = 0;
        for seed in [1, 2, 3] {
            let portfolio = run(128, seed);
            let mut measurer = Measurer::new(database::find("GTX 1080 Ti").unwrap().clone(), seed);
            let model = models::alexnet();
            let task = &model.tasks()[2];
            let space = templates::space_for_task(task);
            let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(128), seed);
            let random = RandomTuner::new().tune(ctx);
            if portfolio.best_gflops >= 0.8 * random.best_gflops {
                wins += 1;
            }
        }
        assert!(wins >= 2, "portfolio matched random on only {wins}/3 seeds");
    }

    #[test]
    #[should_panic(expected = "portfolio needs at least one member")]
    fn empty_portfolio_is_rejected() {
        let _ = PortfolioTuner::new(Vec::new());
    }
}
