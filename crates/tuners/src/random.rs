//! Uniform random search — the weakest baseline in Fig. 4.

use crate::context::{TuneContext, Tuner, TuningOutcome};
use glimpse_mlkit::stats::child_rng;
use rand::Rng;

/// Samples configurations uniformly at random until the budget is spent.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomTuner;

impl RandomTuner {
    /// Creates the tuner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Tuner for RandomTuner {
    fn name(&self) -> &str {
        "Random"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let mut rng = child_rng(ctx.seed, 0x0BAD_5EED);
        while !ctx.exhausted() {
            // Resample on collision a few times, then accept the duplicate.
            let mut config = ctx.space.sample_uniform(&mut rng);
            for _ in 0..4 {
                if !ctx.seen(&config) {
                    break;
                }
                config = ctx.space.sample_uniform(&mut rng);
            }
            ctx.measure(&config);
            // One sample drawn = one (degenerate) explorer step.
            ctx.add_explorer_steps(1);
        }
        let _ = rng.gen::<u64>();
        ctx.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    #[test]
    fn random_tuner_spends_entire_budget() {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 1);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(30), 7);
        let outcome = RandomTuner::new().tune(ctx);
        assert_eq!(outcome.measurements, 30);
        assert_eq!(outcome.tuner, "Random");
        assert!(outcome.best_gflops > 0.0, "30 random samples should find at least one valid config");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let run = |seed| {
            let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 1);
            let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(20), seed);
            RandomTuner::new().tune(ctx).best_gflops
        };
        assert_eq!(run(5), run(5));
    }
}
