//! Genetic-algorithm tuner — the search strategy TVM's own tuner family
//! ships alongside random search (§5: "TVM builds on random search and
//! genetic algorithms"; GGA [11] guides a GA with history).
//!
//! Standard generational GA over knob-index chromosomes: tournament
//! selection on measured throughput, uniform crossover, per-knob mutation,
//! elitism. Like the other baselines it is hardware-agnostic — fitness comes
//! only from real measurements.

use crate::context::{TuneContext, Tuner, TuningOutcome};
use glimpse_mlkit::stats::child_rng;
use glimpse_space::Config;
use rand::Rng;

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneticConfig {
    /// Population size (individuals measured per generation).
    pub population: usize,
    /// Elites copied unchanged into the next generation.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-knob mutation probability.
    pub mutation_rate: f64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        Self {
            population: 16,
            elites: 2,
            tournament: 3,
            mutation_rate: 0.12,
        }
    }
}

/// The GA tuner.
#[derive(Debug, Clone)]
pub struct GeneticTuner {
    config: GeneticConfig,
}

impl GeneticTuner {
    /// Creates the tuner with default hyperparameters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: GeneticConfig::default(),
        }
    }

    /// Creates the tuner with explicit hyperparameters.
    #[must_use]
    pub fn with_config(config: GeneticConfig) -> Self {
        Self { config }
    }
}

impl Default for GeneticTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl Tuner for GeneticTuner {
    fn name(&self) -> &str {
        "Genetic"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let mut rng = child_rng(ctx.seed, 0x06E6_E71C);
        let pop_size = self.config.population.max(2);

        // Generation 0: uniform random.
        let mut population: Vec<Config> = (0..pop_size).map(|_| ctx.space.sample_uniform(&mut rng)).collect();
        let mut fitness: Vec<f64> = population.iter().map(|c| ctx.measure(c).unwrap_or(0.0)).collect();
        ctx.add_explorer_steps(pop_size);

        while !ctx.exhausted() {
            // Elitism: carry the best individuals over unchanged.
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&i, &j| fitness[j].total_cmp(&fitness[i]));
            let mut next: Vec<Config> = order.iter().take(self.config.elites).map(|&i| population[i].clone()).collect();
            let mut next_fitness: Vec<f64> = order.iter().take(self.config.elites).map(|&i| fitness[i]).collect();

            // Offspring: tournament select two parents, uniform crossover,
            // mutate, measure.
            while next.len() < pop_size && !ctx.exhausted() {
                let parent = |rng: &mut rand::rngs::StdRng, fitness: &[f64]| -> usize {
                    let mut best = rng.gen_range(0..fitness.len());
                    for _ in 1..self.config.tournament {
                        let cand = rng.gen_range(0..fitness.len());
                        if fitness[cand] > fitness[best] {
                            best = cand;
                        }
                    }
                    best
                };
                let a = parent(&mut rng, &fitness);
                let b = parent(&mut rng, &fitness);
                let mut genes: Vec<usize> = population[a]
                    .indices()
                    .iter()
                    .zip(population[b].indices())
                    .map(|(&x, &y)| if rng.gen::<bool>() { x } else { y })
                    .collect();
                for (g, knob) in genes.iter_mut().zip(ctx.space.knobs()) {
                    if rng.gen::<f64>() < self.config.mutation_rate {
                        *g = rng.gen_range(0..knob.cardinality());
                    }
                }
                ctx.add_explorer_steps(1);
                let child = Config::new(genes);
                let score = if ctx.seen(&child) {
                    // Re-use known fitness instead of burning a measurement.
                    ctx.history()
                        .trials
                        .iter()
                        .find(|t| t.config == child)
                        .and_then(|t| t.gflops)
                        .unwrap_or(0.0)
                } else {
                    ctx.measure(&child).unwrap_or(0.0)
                };
                next.push(child);
                next_fitness.push(score);
            }
            population = next;
            fitness = next_fitness;
        }
        ctx.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::random::RandomTuner;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    fn run_tuner<T: Tuner>(mut tuner: T, budget: usize, seed: u64) -> TuningOutcome {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("GTX 1080 Ti").unwrap().clone(), seed);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(budget), seed);
        tuner.tune(ctx)
    }

    #[test]
    fn beats_random_search_usually() {
        let mut wins = 0;
        for seed in [1u64, 2, 3] {
            let ga = run_tuner(GeneticTuner::new(), 200, seed);
            let random = run_tuner(RandomTuner::new(), 200, seed);
            if ga.best_gflops > random.best_gflops {
                wins += 1;
            }
        }
        assert!(wins >= 2, "GA won only {wins}/3");
    }

    #[test]
    fn respects_budget() {
        let outcome = run_tuner(GeneticTuner::new(), 50, 4);
        assert!(outcome.measurements <= 50);
    }

    #[test]
    fn fitness_improves_over_generations() {
        let outcome = run_tuner(GeneticTuner::new(), 240, 5);
        let trajectory = outcome.history.trajectory();
        let early = trajectory[15];
        let late = *trajectory.last().unwrap();
        assert!(late >= early);
        assert!(late > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_tuner(GeneticTuner::new(), 80, 6);
        let b = run_tuner(GeneticTuner::new(), 80, 6);
        assert_eq!(a.best_gflops, b.best_gflops);
    }
}
