//! Surrogate-model diagnostics: how good is `f̂ ≈ f` really?
//!
//! §2.1 frames neural compilation around a learned approximation of the
//! hardware. These helpers quantify that approximation on a recorded
//! [`TuningHistory`] — rank correlation (cost models are rankers), top-k
//! recall (only the top-k ever gets measured), and a learning curve over
//! measurement counts. Used by tests, the CLI, and post-hoc analysis.

use crate::cost_model::GbtCostModel;
use crate::history::TuningHistory;
use glimpse_mlkit::rank::{kendall_tau, spearman_rho, top_k_recall};
use glimpse_space::SearchSpace;
use serde::{Deserialize, Serialize};

/// Rank-quality summary of a surrogate on held-out trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateQuality {
    /// Kendall τ between predictions and measurements.
    pub kendall_tau: f64,
    /// Spearman ρ between predictions and measurements.
    pub spearman_rho: f64,
    /// Recall of the true top-8 within the predicted top-8.
    pub top8_recall: f64,
    /// Number of held-out trials evaluated.
    pub holdout: usize,
}

/// Fits a surrogate on the first `train` trials of `history` and scores its
/// ranking quality on the remainder (invalid trials count as 0 GFLOPS,
/// matching how the tuners train).
///
/// Returns `None` if there are fewer than 8 held-out trials to judge on.
#[must_use]
pub fn holdout_quality(space: &SearchSpace, history: &TuningHistory, train: usize, seed: u64) -> Option<SurrogateQuality> {
    if history.len() < train + 8 {
        return None;
    }
    let mut prefix = TuningHistory::new(&history.gpu, &history.model, history.task_index, history.template);
    for trial in &history.trials[..train] {
        prefix.push(trial.clone());
    }
    let mut model = GbtCostModel::new(seed);
    model.fit(space, &prefix);

    let holdout = &history.trials[train..];
    let truth: Vec<f64> = holdout.iter().map(|t| t.gflops.unwrap_or(0.0)).collect();
    let predicted: Vec<f64> = holdout.iter().map(|t| model.predict(space, &t.config)).collect();
    Some(SurrogateQuality {
        kendall_tau: kendall_tau(&truth, &predicted),
        spearman_rho: spearman_rho(&truth, &predicted),
        top8_recall: top_k_recall(&truth, &predicted, 8.min(truth.len())),
        holdout: holdout.len(),
    })
}

/// Learning curve: surrogate quality at increasing training-prefix sizes.
/// Points where the holdout would be too small are omitted.
#[must_use]
pub fn learning_curve(space: &SearchSpace, history: &TuningHistory, prefixes: &[usize], seed: u64) -> Vec<(usize, SurrogateQuality)> {
    prefixes
        .iter()
        .filter_map(|&n| holdout_quality(space, history, n, seed).map(|q| (n, q)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Trial;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn measured_history(n: usize) -> (SearchSpace, TuningHistory) {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("RTX 2070 Super").unwrap().clone(), 3);
        let mut history = TuningHistory::new("RTX 2070 Super", &task.id.model, task.id.index, task.template);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..n {
            let c = space.sample_uniform(&mut rng);
            history.push(Trial::from_measure(&measurer.measure(&space, &c)));
        }
        (space, history)
    }

    #[test]
    fn trained_surrogate_ranks_clearly_better_than_chance() {
        let (space, history) = measured_history(400);
        let quality = holdout_quality(&space, &history, 300, 1).unwrap();
        assert!(quality.kendall_tau > 0.3, "tau {}", quality.kendall_tau);
        assert!(quality.spearman_rho > 0.4, "rho {}", quality.spearman_rho);
        assert_eq!(quality.holdout, 100);
    }

    #[test]
    fn quality_improves_with_more_training_data() {
        let (space, history) = measured_history(400);
        let curve = learning_curve(&space, &history, &[30, 300], 1);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].1.spearman_rho >= curve[0].1.spearman_rho - 0.1, "{curve:?}");
    }

    #[test]
    fn tiny_histories_yield_none() {
        let (space, history) = measured_history(10);
        assert!(holdout_quality(&space, &history, 8, 1).is_none());
    }
}
