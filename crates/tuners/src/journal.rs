//! Crash-safe tuning runs: durable trial journal, atomic snapshots, and
//! kill-anywhere resume.
//!
//! A checkpointed run directory holds three files:
//!
//! * `journal.wal` — an append-only write-ahead log (see
//!   [`glimpse_durable::wal`]). Frame 0 is the [`RunHeader`] (run identity
//!   plus the measurer's starting state); every following frame is one
//!   [`TrialRecord`] — the [`Trial`] plus the [`MeasurerState`] *after* it —
//!   appended before the tuner consumes the trial, so a crash never loses a
//!   debited measurement.
//! * `snapshot.json` — a periodic [`Snapshot`] written atomically
//!   (temp file + fsync + rename) every [`CheckpointSpec::snapshot_every`]
//!   trials; each snapshot also fsyncs the WAL, making everything up to it
//!   power-loss durable.
//! * `complete.json` — the final [`TuningOutcome`], written atomically by
//!   [`RunJournal::mark_complete`]. Its presence marks the cell finished;
//!   fleet resume loads it instead of re-running.
//!
//! **Resume is replay, not state surgery.** Tuners are deterministic
//! functions of `(seed, history)` (PR 2's contract), so
//! [`run_checkpointed`] does not try to serialize GBT/GP internals.
//! It restores the measurer to the header's starting state and re-drives
//! the tuner; [`TuneContext`] serves the recorded prefix from a replay
//! queue (verifying the tuner requests the same configurations — any
//! divergence poisons the journal and fail-stops) and switches to live
//! measurement exactly where the crash hit, restoring the measurer to the
//! last recorded post-trial state. The resumed journal is byte-identical
//! to an uninterrupted run's.
//!
//! **Recovery rules.** On open, the WAL scan tolerates a truncated tail and
//! a corrupted trailing record (frame-level via CRC/sequence checks,
//! payload-level via JSON decoding): the corrupt tail is truncated away and
//! appending continues at the next sequence number. A journal whose header
//! frame never became durable is restarted from zero (nothing measured was
//! recorded); a header that decodes but does not match the requested run is
//! a hard [`JournalError::HeaderMismatch`] — resuming under different
//! parameters would silently corrupt results.

use crate::budget::Budget;
use crate::context::{RunControl, TuneContext, Tuner, TuningOutcome};
use crate::history::Trial;
use glimpse_sim::{FaultRates, Measurer, MeasurerState, RetryPolicy, StorageFaults};
use glimpse_space::SearchSpace;
use glimpse_supervise::{Abandonment, CellStatus};
use glimpse_tensor_prog::{Task, TemplateKind};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// WAL file name inside a checkpoint cell directory.
pub const JOURNAL_FILE: &str = "journal.wal";
/// Periodic atomic snapshot file name.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// Terminal outcome file name; presence marks the cell complete.
pub const COMPLETE_FILE: &str = "complete.json";
/// Default snapshot cadence (trials per snapshot + WAL fsync).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 16;
/// Default bytes of a torn frame that reach the file when `torn_at_seq`
/// fires without an explicit `torn_keep_bytes` (cuts mid-header).
pub const DEFAULT_TORN_KEEP: u64 = 7;

/// Why a journal operation failed. Corruption of the *tail* is not an
/// error (lossy-tail recovery handles it); these are the unrecoverable or
/// injected cases.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A frame that passed its CRC holds an undecodable or impossible
    /// payload (format drift, version skew).
    Corrupt {
        /// WAL sequence number of the offending frame.
        seq: u64,
        /// What failed to decode.
        detail: String,
    },
    /// The journal's header does not match the run being resumed.
    HeaderMismatch {
        /// First mismatching field, `name: journal=.. run=..`.
        detail: String,
    },
    /// A journal already exists and `--resume` was not requested.
    AlreadyExists(PathBuf),
    /// Injected fail-stop: the sim fault plan's `crash_at_seq` fired.
    SimulatedCrash {
        /// Sequence number whose append was suppressed.
        seq: u64,
    },
    /// Injected fail-stop: the sim fault plan's `torn_at_seq` fired and a
    /// partial frame was written.
    TornWrite {
        /// Sequence number whose append was torn.
        seq: u64,
    },
    /// During resume, the tuner requested a different configuration than
    /// the journal recorded — the determinism contract is broken.
    ReplayDivergence {
        /// Sequence number of the record that disagreed.
        seq: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(err) => write!(f, "journal IO error: {err}"),
            JournalError::Corrupt { seq, detail } => write!(f, "journal record {seq} is corrupt: {detail}"),
            JournalError::HeaderMismatch { detail } => {
                write!(f, "journal belongs to a different run ({detail}); refuse to resume")
            }
            JournalError::AlreadyExists(path) => {
                write!(f, "journal {} already exists; pass --resume to continue it", path.display())
            }
            JournalError::SimulatedCrash { seq } => write!(f, "injected crash before appending record {seq}"),
            JournalError::TornWrite { seq } => write!(f, "injected torn write while appending record {seq}"),
            JournalError::ReplayDivergence { seq } => {
                write!(
                    f,
                    "resume diverged from the journal at record {seq}: tuner requested a different config"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(err: std::io::Error) -> Self {
        JournalError::Io(err)
    }
}

/// Frame 0 of every journal: the run's identity and starting state. A
/// resumed run must present identical parameters — the header is the
/// contract that makes byte-identical resume meaningful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHeader {
    /// Tuner name ([`Tuner::name`]).
    pub tuner: String,
    /// GPU marketing name.
    pub gpu: String,
    /// Model the task came from.
    pub model: String,
    /// Task index within the model.
    pub task_index: usize,
    /// Code template tuned.
    pub template: TemplateKind,
    /// Stopping criteria.
    pub budget: Budget,
    /// Tuner seed.
    pub seed: u64,
    /// Retry policy applied to faulted measurements.
    pub retry: RetryPolicy,
    /// Fault-plan seed the measurer was built with.
    pub fault_seed: u64,
    /// Fault rates in effect for this device.
    pub fault_rates: FaultRates,
    /// Fallback-ladder fingerprint (`component name` → rung) the run was
    /// constructed with. Empty in journals written before health tracking
    /// existed, which reads as "every component on rung 0" — resuming a
    /// run under a *different* rung set is a header mismatch, because the
    /// tuner is a deterministic function of (seed, history, rungs).
    #[serde(default)]
    pub rungs: Vec<(String, u8)>,
    /// Measurer state when the run started.
    pub start: MeasurerState,
}

/// One WAL trial record: the trial plus the measurer state after it, so
/// resume can continue the measurement and fault streams bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The journaled trial.
    pub trial: Trial,
    /// Measurer state immediately after this trial.
    pub post: MeasurerState,
}

/// Periodic atomic checkpoint of run progress (written alongside a WAL
/// fsync, so everything up to `trials` is power-loss durable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Trials journaled when this snapshot was taken.
    pub trials: u64,
    /// Best valid throughput so far (GFLOPS).
    pub best_gflops: f64,
    /// Measurer state after the last journaled trial.
    pub post: MeasurerState,
}

/// A live journal: the appending end of a checkpointed run.
#[derive(Debug)]
pub struct RunJournal {
    writer: glimpse_durable::WalWriter,
    dir: PathBuf,
    snapshot_every: u64,
    storage: StorageFaults,
    trials: u64,
    best_gflops: f64,
    poison: Option<JournalError>,
}

/// What [`RunJournal::resume`] recovered from an interrupted run.
#[derive(Debug)]
pub struct ResumedRun {
    /// The journal, positioned to append the next trial.
    pub journal: RunJournal,
    /// The run's header (frame 0).
    pub header: RunHeader,
    /// Every intact trial record, in sequence order.
    pub records: Vec<TrialRecord>,
}

impl RunJournal {
    /// Starts a fresh journal in `dir`, writing and fsyncing the header
    /// frame before returning.
    ///
    /// # Errors
    ///
    /// [`JournalError::AlreadyExists`] if `dir` already holds a journal
    /// (use [`RunJournal::resume`]); otherwise IO/encoding errors.
    pub fn create(dir: &Path, header: &RunHeader, storage: StorageFaults, snapshot_every: u64) -> Result<Self, JournalError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        if path.exists() {
            return Err(JournalError::AlreadyExists(path));
        }
        let mut writer = glimpse_durable::WalWriter::create(&path)?;
        let payload = encode(header, 0)?;
        writer.append(payload.as_bytes())?;
        writer.sync()?;
        Ok(Self {
            writer,
            dir: dir.to_path_buf(),
            snapshot_every,
            storage,
            trials: 0,
            best_gflops: 0.0,
            poison: None,
        })
    }

    /// Recovers the journal in `dir`: scans the WAL, drops a corrupt tail
    /// (truncated frame, bad CRC, bad sequence number, or an undecodable
    /// trailing payload), truncates the file back to the intact prefix,
    /// and returns the header plus every recovered trial record.
    ///
    /// Returns `Ok(None)` when no header frame survived — nothing was
    /// durably recorded, so the caller should start the run from scratch.
    ///
    /// # Errors
    ///
    /// IO errors, or [`JournalError::Corrupt`] when the header frame is
    /// intact at the WAL layer but undecodable (format drift).
    pub fn resume(dir: &Path, storage: StorageFaults, snapshot_every: u64) -> Result<Option<ResumedRun>, JournalError> {
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path)?;
        let recovery = glimpse_durable::scan(&bytes, 0);
        let Some(first) = recovery.frames.first() else {
            return Ok(None);
        };
        let header: RunHeader = decode(&first.payload, 0)?;
        let mut valid_len = frame_len(first) as u64;
        let mut records = Vec::with_capacity(recovery.frames.len().saturating_sub(1));
        let mut best_gflops = 0.0f64;
        for frame in &recovery.frames[1..] {
            // A record that passed its CRC but fails to decode is treated
            // exactly like a torn tail: it and everything after it are
            // discarded. (In practice only the last record can be affected;
            // anything earlier would indicate format drift, caught by the
            // header check above.)
            let Ok(record) = decode::<TrialRecord>(&frame.payload, frame.seq) else {
                break;
            };
            valid_len += frame_len(frame) as u64;
            if let Some(g) = record.trial.gflops {
                best_gflops = best_gflops.max(g);
            }
            records.push(record);
        }
        let next_seq = records.len() as u64 + 1;
        let writer = glimpse_durable::open_for_append_at(&path, valid_len, next_seq)?;
        let trials = records.len() as u64;
        Ok(Some(ResumedRun {
            journal: Self {
                writer,
                dir: dir.to_path_buf(),
                snapshot_every,
                storage,
                trials,
                best_gflops,
                poison: None,
            },
            header,
            records,
        }))
    }

    /// Appends one trial record. Returns `false` — and poisons the journal,
    /// making the owning [`TuneContext`] report exhaustion — when the
    /// append failed or an injected storage fault fired; the trial must
    /// then not be consumed by the tuner (fail-stop semantics).
    pub fn append_trial(&mut self, record: &TrialRecord) -> bool {
        if self.poison.is_some() {
            return false;
        }
        match self.try_append(record) {
            Ok(()) => true,
            Err(err) => {
                self.poison = Some(err);
                false
            }
        }
    }

    fn try_append(&mut self, record: &TrialRecord) -> Result<(), JournalError> {
        let seq = self.writer.next_seq();
        if self.storage.crash_at_seq == Some(seq) {
            return Err(JournalError::SimulatedCrash { seq });
        }
        let payload = encode(record, seq)?;
        if self.storage.torn_at_seq == Some(seq) {
            let keep = self.storage.torn_keep_bytes.unwrap_or(DEFAULT_TORN_KEEP);
            self.writer
                .append_torn(payload.as_bytes(), usize::try_from(keep).unwrap_or(usize::MAX))?;
            return Err(JournalError::TornWrite { seq });
        }
        self.writer.append(payload.as_bytes())?;
        self.trials += 1;
        if let Some(g) = record.trial.gflops {
            self.best_gflops = self.best_gflops.max(g);
        }
        if self.snapshot_every > 0 && self.trials.is_multiple_of(self.snapshot_every) {
            self.write_snapshot(&record.post)?;
        }
        Ok(())
    }

    /// Forces a snapshot + WAL fsync *now* — the graceful-shutdown flush.
    /// Everything journaled so far becomes power-loss durable before the
    /// process exits. The snapshot is advisory (resume replays the WAL, not
    /// the snapshot): if the run was cancelled while still replaying a
    /// recorded prefix, `post` is the measurer's restored starting state,
    /// which is fine because nothing new was measured.
    ///
    /// # Errors
    ///
    /// IO or encoding errors.
    pub fn flush_snapshot(&mut self, post: &MeasurerState) -> Result<(), JournalError> {
        self.write_snapshot(post)
    }

    fn write_snapshot(&mut self, post: &MeasurerState) -> Result<(), JournalError> {
        let snapshot = Snapshot {
            trials: self.trials,
            best_gflops: self.best_gflops,
            post: *post,
        };
        let text = encode(&snapshot, self.trials)?;
        glimpse_durable::atomic_write(&self.dir.join(SNAPSHOT_FILE), text.as_bytes())?;
        // Snapshot cadence doubles as the power-loss durability barrier.
        self.writer.sync()?;
        Ok(())
    }

    /// Finishes the run: fsyncs the WAL and atomically writes
    /// `complete.json` with the outcome, marking the cell done for fleet
    /// resume.
    ///
    /// # Errors
    ///
    /// IO or encoding errors; the journal itself stays valid.
    pub fn mark_complete(&mut self, outcome: &TuningOutcome) -> Result<(), JournalError> {
        self.writer.sync()?;
        let text = encode(outcome, self.trials)?;
        glimpse_durable::atomic_write(&self.dir.join(COMPLETE_FILE), text.as_bytes())?;
        Ok(())
    }

    /// Poisons the journal with a replay divergence (called by the context
    /// when a resumed tuner requests a configuration the journal did not
    /// record).
    pub fn poison_divergence(&mut self, seq: u64) {
        if self.poison.is_none() {
            self.poison = Some(JournalError::ReplayDivergence { seq });
        }
    }

    /// Whether a fatal journal event occurred; the run must fail-stop.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poison.is_some()
    }

    /// Takes the poisoning error, if any.
    pub fn take_poison(&mut self) -> Option<JournalError> {
        self.poison.take()
    }

    /// Number of trial records appended (replayed prefix included).
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

/// Loads a cell's terminal outcome, if the run completed.
///
/// # Errors
///
/// IO errors other than the file being absent, or a corrupt outcome file
/// (which `atomic_write` should make impossible short of media failure).
pub fn load_complete(dir: &Path) -> Result<Option<TuningOutcome>, JournalError> {
    let path = dir.join(COMPLETE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(JournalError::Io(err)),
    };
    serde_json::from_str(&text).map(Some).map_err(|err| JournalError::Corrupt {
        seq: 0,
        detail: format!("{}: {err:?}", path.display()),
    })
}

/// Loads the latest periodic snapshot, if one was written.
///
/// # Errors
///
/// IO errors other than the file being absent, or a corrupt snapshot.
pub fn load_snapshot(dir: &Path) -> Result<Option<Snapshot>, JournalError> {
    let path = dir.join(SNAPSHOT_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(JournalError::Io(err)),
    };
    serde_json::from_str(&text).map(Some).map_err(|err| JournalError::Corrupt {
        seq: 0,
        detail: format!("{}: {err:?}", path.display()),
    })
}

fn encode<T: Serialize>(value: &T, seq: u64) -> Result<String, JournalError> {
    serde_json::to_string(value).map_err(|err| JournalError::Corrupt {
        seq,
        detail: format!("encode: {err:?}"),
    })
}

fn decode<T: serde::Deserialize>(payload: &[u8], seq: u64) -> Result<T, JournalError> {
    let text = std::str::from_utf8(payload).map_err(|err| JournalError::Corrupt {
        seq,
        detail: format!("payload is not UTF-8: {err}"),
    })?;
    serde_json::from_str(text).map_err(|err| JournalError::Corrupt {
        seq,
        detail: format!("decode: {err:?}"),
    })
}

fn frame_len(frame: &glimpse_durable::WalFrame) -> usize {
    glimpse_durable::wal::FRAME_HEADER_LEN + frame.payload.len()
}

/// Where and how a run checkpoints.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointSpec<'p> {
    /// Cell directory holding `journal.wal` / `snapshot.json` /
    /// `complete.json`.
    pub dir: &'p Path,
    /// Whether an existing journal may be continued (otherwise an existing
    /// journal is an error — no silent clobbering).
    pub resume: bool,
    /// Injected storage faults (chaos tests).
    pub storage: StorageFaults,
    /// Trials per snapshot + WAL fsync.
    pub snapshot_every: u64,
    /// Fault-plan seed recorded in (and checked against) the header.
    pub fault_seed: u64,
    /// Device fault rates recorded in (and checked against) the header.
    pub fault_rates: FaultRates,
    /// Fallback-ladder fingerprint recorded in (and checked against) the
    /// header. Empty means every component on its learned rung.
    pub rungs: &'p [(String, u8)],
}

impl<'p> CheckpointSpec<'p> {
    /// A spec with defaults: fresh run, no injected faults, default
    /// snapshot cadence.
    #[must_use]
    pub fn new(dir: &'p Path) -> Self {
        Self {
            dir,
            resume: false,
            storage: StorageFaults::none(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            fault_seed: 0,
            fault_rates: FaultRates::none(),
            rungs: &[],
        }
    }

    /// Allows continuing an existing journal.
    #[must_use]
    pub fn resuming(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Arms injected storage faults.
    #[must_use]
    pub fn with_storage(mut self, storage: StorageFaults) -> Self {
        self.storage = storage;
        self
    }

    /// Records the measurement fault plan's seed and per-device rates.
    #[must_use]
    pub fn with_faults(mut self, seed: u64, rates: FaultRates) -> Self {
        self.fault_seed = seed;
        self.fault_rates = rates;
        self
    }

    /// Records the fallback-ladder fingerprint the tuner was resolved
    /// with (see `HealthReport::rung_fingerprint`).
    #[must_use]
    pub fn with_rungs(mut self, rungs: &'p [(String, u8)]) -> Self {
        self.rungs = rungs;
        self
    }
}

/// A supervised run's result: the outcome plus the terminal
/// [`CellStatus`] the degradation report records.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedOutcome {
    /// The tuning outcome as of when the run ended (full budget for
    /// `Complete`, the journaled prefix otherwise).
    pub outcome: TuningOutcome,
    /// How the cell ended.
    pub status: CellStatus,
    /// Simulated seconds left under the tightest configured deadline when
    /// the run ended (`None` when no deadline was set).
    pub deadline_slack_s: Option<f64>,
}

/// Runs `tuner` on one (task, device) cell with crash-safe journaling.
///
/// Fresh run: writes the header, journals every trial before the tuner
/// consumes it, snapshots periodically, and writes `complete.json` at the
/// end. Resume (`spec.resume`): a completed cell returns its stored
/// outcome without touching the measurer; an interrupted cell is recovered
/// (lossy-tail truncation), the measurer is restored to the header's
/// starting state, and the tuner is re-driven with the recorded prefix
/// served from a replay queue — continuing live, bit-identically, where
/// the crash hit.
///
/// Unsupervised convenience wrapper over [`run_supervised`]: no token, no
/// deadlines. Note a run whose device died mid-cell returns its partial
/// outcome but does **not** write `complete.json` — the cell stays
/// resumable (on a revived device) or reassignable by the fleet supervisor.
///
/// # Errors
///
/// Journal IO/recovery errors, [`JournalError::HeaderMismatch`] when the
/// journal belongs to different run parameters, injected
/// [`JournalError::SimulatedCrash`]/[`JournalError::TornWrite`] events,
/// and [`JournalError::ReplayDivergence`] if determinism is broken.
pub fn run_checkpointed<T: Tuner + ?Sized>(
    tuner: &mut T,
    spec: &CheckpointSpec<'_>,
    task: &Task,
    space: &SearchSpace,
    measurer: &mut Measurer,
    budget: Budget,
    seed: u64,
) -> Result<TuningOutcome, JournalError> {
    run_supervised(tuner, spec, task, space, measurer, budget, seed, &RunControl::none()).map(|s| s.outcome)
}

/// [`run_checkpointed`] under supervision: the run polls
/// `control.cancel` at every trial boundary, enforces the control's
/// simulated-clock deadlines, and settles into a typed [`CellStatus`].
///
/// Termination paths, in precedence order:
///
/// 1. journal poison (injected crash/torn write, replay divergence) — a
///    hard `Err`, exactly as in [`run_checkpointed`];
/// 2. a tripped token — snapshot + WAL fsync are flushed and the cell is
///    `Degraded(reason)`; the journal is a byte-identical prefix of the
///    uninterrupted run's and `--resume` will finish it;
/// 3. a dead device — snapshot flushed, `Abandoned(DeviceDead)`; the
///    fleet supervisor may reassign the cell;
/// 4. otherwise `complete.json` is written and the cell is `Complete`.
///
/// A cell resumed after completion reports `Complete` with its stored
/// outcome, untouched by the current control's deadlines.
///
/// # Errors
///
/// As [`run_checkpointed`].
#[allow(clippy::too_many_arguments)]
pub fn run_supervised<T: Tuner + ?Sized>(
    tuner: &mut T,
    spec: &CheckpointSpec<'_>,
    task: &Task,
    space: &SearchSpace,
    measurer: &mut Measurer,
    budget: Budget,
    seed: u64,
    control: &RunControl,
) -> Result<SupervisedOutcome, JournalError> {
    let journal_path = spec.dir.join(JOURNAL_FILE);
    let retry = RetryPolicy::default();
    let mut resumed = None;
    if journal_path.exists() {
        if !spec.resume {
            return Err(JournalError::AlreadyExists(journal_path));
        }
        if let Some(outcome) = load_complete(spec.dir)? {
            // A completed cell re-reports through its stored health: a run
            // that finished on fallback rungs stays Degraded on resume.
            let fallback = outcome.health.as_ref().is_some_and(glimpse_supervise::HealthReport::any_degraded);
            return Ok(SupervisedOutcome {
                deadline_slack_s: deadline_slack(control, outcome.gpu_seconds),
                status: CellStatus::settle_with_health(None, false, fallback),
                outcome,
            });
        }
        resumed = RunJournal::resume(spec.dir, spec.storage, spec.snapshot_every)?;
        if resumed.is_none() {
            // The header frame never became durable: nothing was recorded,
            // so the only honest recovery is a fresh start.
            std::fs::remove_file(&journal_path)?;
        }
    }
    let (mut journal, records) = match resumed {
        Some(run) => {
            verify_header(&run.header, tuner.name(), task, measurer, budget, seed, retry, spec)?;
            measurer.restore_state(&run.header.start);
            (run.journal, run.records)
        }
        None => {
            let header = RunHeader {
                tuner: tuner.name().to_owned(),
                gpu: measurer.gpu().name.clone(),
                model: task.id.model.clone(),
                task_index: task.id.index,
                template: task.template,
                budget,
                seed,
                retry,
                fault_seed: spec.fault_seed,
                fault_rates: spec.fault_rates,
                rungs: spec.rungs.to_vec(),
                start: measurer.state(),
            };
            (
                RunJournal::create(spec.dir, &header, spec.storage, spec.snapshot_every)?,
                Vec::new(),
            )
        }
    };
    let ctx = TuneContext::new(task, space, measurer, budget, seed)
        .with_retry_policy(retry)
        .with_control(control.clone())
        .with_journal(&mut journal)
        .with_replay(records);
    let outcome = tuner.tune(ctx);
    if let Some(err) = journal.take_poison() {
        return Err(err);
    }
    let component_fallback = outcome.health.as_ref().is_some_and(glimpse_supervise::HealthReport::any_degraded);
    let status = match (control.cancel.reason(), measurer.is_device_dead()) {
        (Some(reason), _) => {
            journal.flush_snapshot(&measurer.state())?;
            CellStatus::Degraded(reason.into())
        }
        (None, true) => {
            journal.flush_snapshot(&measurer.state())?;
            CellStatus::Abandoned(Abandonment::DeviceDead)
        }
        (None, false) => {
            // A full-budget run on fallback rungs is still *finished*:
            // complete.json is written (the cell never re-runs), but the
            // status reports the weakened search strategy.
            journal.mark_complete(&outcome)?;
            CellStatus::settle_with_health(None, false, component_fallback)
        }
    };
    Ok(SupervisedOutcome {
        deadline_slack_s: deadline_slack(control, outcome.gpu_seconds),
        status,
        outcome,
    })
}

/// Simulated seconds left under the tightest configured deadline.
fn deadline_slack(control: &RunControl, gpu_seconds: f64) -> Option<f64> {
    [control.deadline_s, control.wall_deadline_s]
        .into_iter()
        .flatten()
        .fold(None, |tightest: Option<f64>, d| Some(tightest.map_or(d, |t| t.min(d))))
        .map(|tightest| tightest - gpu_seconds)
}

#[allow(clippy::too_many_arguments)]
fn verify_header(
    header: &RunHeader,
    tuner: &str,
    task: &Task,
    measurer: &Measurer,
    budget: Budget,
    seed: u64,
    retry: RetryPolicy,
    spec: &CheckpointSpec<'_>,
) -> Result<(), JournalError> {
    let mismatch = |field: &str, journal: String, run: String| JournalError::HeaderMismatch {
        detail: format!("{field}: journal={journal} run={run}"),
    };
    if header.tuner != tuner {
        return Err(mismatch("tuner", header.tuner.clone(), tuner.to_owned()));
    }
    let gpu = &measurer.gpu().name;
    if &header.gpu != gpu {
        return Err(mismatch("gpu", header.gpu.clone(), gpu.clone()));
    }
    if header.model != task.id.model || header.task_index != task.id.index || header.template != task.template {
        return Err(mismatch(
            "task",
            format!("{}#{} ({})", header.model, header.task_index, header.template),
            format!("{}#{} ({})", task.id.model, task.id.index, task.template),
        ));
    }
    if header.budget != budget {
        return Err(mismatch("budget", format!("{:?}", header.budget), format!("{budget:?}")));
    }
    if header.seed != seed {
        return Err(mismatch("seed", header.seed.to_string(), seed.to_string()));
    }
    if header.retry != retry {
        return Err(mismatch("retry", format!("{:?}", header.retry), format!("{retry:?}")));
    }
    if header.fault_seed != spec.fault_seed || header.fault_rates != spec.fault_rates {
        return Err(mismatch(
            "fault plan",
            format!("seed {} {:?}", header.fault_seed, header.fault_rates),
            format!("seed {} {:?}", spec.fault_seed, spec.fault_rates),
        ));
    }
    if !rungs_match(&header.rungs, spec.rungs) {
        return Err(mismatch("rungs", format_rungs(&header.rungs), format_rungs(spec.rungs)));
    }
    Ok(())
}

/// Whether two ladder fingerprints describe the same resolution. An absent
/// entry (including the wholly empty fingerprint of a pre-health journal)
/// reads as rung 0, so old journals resume under healthy artifacts but not
/// under degraded ones.
fn rungs_match(journal: &[(String, u8)], run: &[(String, u8)]) -> bool {
    let rung_of = |list: &[(String, u8)], name: &str| list.iter().find(|(n, _)| n == name).map_or(0, |(_, r)| *r);
    journal
        .iter()
        .chain(run)
        .all(|(name, _)| rung_of(journal, name) == rung_of(run, name))
}

fn format_rungs(rungs: &[(String, u8)]) -> String {
    if rungs.is_empty() {
        return "all-healthy".to_owned();
    }
    rungs
        .iter()
        .map(|(name, rung)| format!("{name}={rung}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomTuner;
    use glimpse_gpu_spec::database;
    use glimpse_sim::FaultPlan;
    use glimpse_space::templates;
    use glimpse_supervise::Degradation;
    use glimpse_tensor_prog::models;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("glimpse_journal_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> (Task, SearchSpace, FaultPlan) {
        let model = models::alexnet();
        let task = model.tasks()[2].clone();
        let space = templates::space_for_task(&task);
        let plan = FaultPlan::uniform(
            5,
            FaultRates {
                timeout: 0.05,
                noise_spike: 0.1,
                ..FaultRates::none()
            },
        );
        (task, space, plan)
    }

    fn measurer(plan: &FaultPlan) -> Measurer {
        Measurer::with_faults(database::find("Titan Xp").unwrap().clone(), 7, plan)
    }

    #[test]
    fn uninterrupted_checkpointed_run_completes_and_reloads() {
        let dir = temp_dir("clean_run");
        let (task, space, plan) = fixture();
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates);
        let mut m = measurer(&plan);
        let outcome = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(20), 3).unwrap();
        assert_eq!(outcome.measurements, 20);
        let stored = load_complete(&dir).unwrap().expect("complete.json written");
        assert_eq!(stored, outcome);
        // A periodic snapshot landed (cadence 16 <= 20 trials).
        let snapshot = load_snapshot(&dir).unwrap().expect("snapshot written");
        assert_eq!(snapshot.trials, 16);
        // Resuming a completed cell returns the stored outcome untouched.
        let spec = spec.resuming(true);
        let mut m2 = measurer(&plan);
        let again = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m2, Budget::measurements(20), 3).unwrap();
        assert_eq!(again, outcome);
        assert_eq!(m2.elapsed_gpu_seconds(), 0.0, "completed cell must not re-measure");
    }

    #[test]
    fn existing_journal_without_resume_is_refused() {
        let dir = temp_dir("no_clobber");
        let (task, space, plan) = fixture();
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates);
        let mut m = measurer(&plan);
        run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(5), 3).unwrap();
        let mut m2 = measurer(&plan);
        let err = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m2, Budget::measurements(5), 3).unwrap_err();
        assert!(matches!(err, JournalError::AlreadyExists(_)), "{err}");
    }

    #[test]
    fn crash_at_every_trial_boundary_resumes_byte_identically() {
        let (task, space, plan) = fixture();
        let budget = Budget::measurements(12);

        let baseline_dir = temp_dir("kill_baseline");
        let spec = CheckpointSpec::new(&baseline_dir).with_faults(plan.seed, plan.default_rates);
        let mut m = measurer(&plan);
        let baseline = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 3).unwrap();
        let baseline_wal = std::fs::read(baseline_dir.join(JOURNAL_FILE)).unwrap();

        for kill_seq in 1..=12u64 {
            let dir = temp_dir(&format!("kill_at_{kill_seq}"));
            let crash = StorageFaults {
                crash_at_seq: Some(kill_seq),
                ..StorageFaults::none()
            };
            let spec = CheckpointSpec::new(&dir)
                .with_faults(plan.seed, plan.default_rates)
                .with_storage(crash);
            let mut m = measurer(&plan);
            let err = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 3).unwrap_err();
            assert!(matches!(err, JournalError::SimulatedCrash { seq } if seq == kill_seq), "{err}");

            let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates).resuming(true);
            let mut m = measurer(&plan);
            let resumed = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 3).unwrap();
            assert_eq!(resumed, baseline, "kill at seq {kill_seq}");
            let wal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
            assert_eq!(wal, baseline_wal, "journal bytes differ after kill at seq {kill_seq}");
        }
    }

    #[test]
    fn torn_write_is_truncated_and_resumed_byte_identically() {
        let (task, space, plan) = fixture();
        let budget = Budget::measurements(10);

        let baseline_dir = temp_dir("torn_baseline");
        let spec = CheckpointSpec::new(&baseline_dir).with_faults(plan.seed, plan.default_rates);
        let mut m = measurer(&plan);
        run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 9).unwrap();
        let baseline_wal = std::fs::read(baseline_dir.join(JOURNAL_FILE)).unwrap();

        let dir = temp_dir("torn_run");
        let torn = StorageFaults {
            torn_at_seq: Some(4),
            torn_keep_bytes: Some(21),
            ..StorageFaults::none()
        };
        let spec = CheckpointSpec::new(&dir)
            .with_faults(plan.seed, plan.default_rates)
            .with_storage(torn);
        let mut m = measurer(&plan);
        let err = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 9).unwrap_err();
        assert!(matches!(err, JournalError::TornWrite { seq: 4 }), "{err}");

        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates).resuming(true);
        let mut m = measurer(&plan);
        run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 9).unwrap();
        assert_eq!(std::fs::read(dir.join(JOURNAL_FILE)).unwrap(), baseline_wal);
    }

    #[test]
    fn resume_under_different_parameters_is_refused() {
        let dir = temp_dir("mismatch");
        let (task, space, plan) = fixture();
        let crash = StorageFaults {
            crash_at_seq: Some(3),
            ..StorageFaults::none()
        };
        let spec = CheckpointSpec::new(&dir)
            .with_faults(plan.seed, plan.default_rates)
            .with_storage(crash);
        let mut m = measurer(&plan);
        let _ = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(10), 3);
        // Different seed.
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates).resuming(true);
        let mut m = measurer(&plan);
        let err = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(10), 4).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }), "{err}");
        // Different budget.
        let mut m = measurer(&plan);
        let err = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(11), 3).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }), "{err}");
    }

    #[test]
    fn blown_deadline_degrades_the_cell_but_leaves_it_resumable() {
        let dir = temp_dir("deadline");
        let (task, space, plan) = fixture();
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates);
        let control = RunControl::none().deadline_s(Some(0.0));
        let mut m = measurer(&plan);
        let supervised = run_supervised(
            &mut RandomTuner::new(),
            &spec,
            &task,
            &space,
            &mut m,
            Budget::measurements(8),
            3,
            &control,
        )
        .unwrap();
        assert_eq!(supervised.status, CellStatus::Degraded(Degradation::DeadlineExceeded));
        assert_eq!(supervised.outcome.measurements, 0, "a zero deadline stops before the first trial");
        assert!(supervised.deadline_slack_s.is_some_and(|s| s <= 0.0));
        assert!(load_complete(&dir).unwrap().is_none(), "degraded cell must not be marked complete");
        assert!(load_snapshot(&dir).unwrap().is_some(), "degraded cell must flush a snapshot");
        // Resuming with a generous deadline finishes the cell.
        let spec = spec.resuming(true);
        let control = RunControl::none().deadline_s(Some(1e9));
        let mut m = measurer(&plan);
        let resumed = run_supervised(
            &mut RandomTuner::new(),
            &spec,
            &task,
            &space,
            &mut m,
            Budget::measurements(8),
            3,
            &control,
        )
        .unwrap();
        assert_eq!(resumed.status, CellStatus::Complete);
        assert_eq!(resumed.outcome.measurements, 8);
        // A completed cell resumed under an already-blown deadline still
        // reports Complete with the stored outcome.
        let mut m = measurer(&plan);
        let again = run_supervised(
            &mut RandomTuner::new(),
            &spec,
            &task,
            &space,
            &mut m,
            Budget::measurements(8),
            3,
            &RunControl::none().deadline_s(Some(0.0)),
        )
        .unwrap();
        assert_eq!(again.status, CellStatus::Complete);
        assert_eq!(again.outcome, resumed.outcome);
    }

    #[test]
    fn cancelled_cell_is_a_byte_prefix_and_resumes_identically() {
        let (task, space, plan) = fixture();
        let budget = Budget::measurements(10);

        let baseline_dir = temp_dir("cancel_baseline");
        let spec = CheckpointSpec::new(&baseline_dir).with_faults(plan.seed, plan.default_rates);
        let mut m = measurer(&plan);
        let baseline = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 3).unwrap();
        let baseline_wal = std::fs::read(baseline_dir.join(JOURNAL_FILE)).unwrap();

        let dir = temp_dir("cancel_run");
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates);
        let control = RunControl::none().cancel_at_trial(5);
        let mut m = measurer(&plan);
        let supervised = run_supervised(&mut RandomTuner::new(), &spec, &task, &space, &mut m, budget, 3, &control).unwrap();
        assert_eq!(supervised.status, CellStatus::Degraded(Degradation::Interrupted));
        assert_eq!(supervised.outcome.measurements, 4, "cancel fires before trial 5 is journaled");
        let wal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        assert!(
            wal.len() < baseline_wal.len() && baseline_wal.starts_with(&wal),
            "cancelled journal is not a proper byte prefix of the baseline"
        );

        let spec = spec.resuming(true);
        let mut m = measurer(&plan);
        let resumed = run_supervised(
            &mut RandomTuner::new(),
            &spec,
            &task,
            &space,
            &mut m,
            budget,
            3,
            &RunControl::none(),
        )
        .unwrap();
        assert_eq!(resumed.status, CellStatus::Complete);
        assert_eq!(resumed.outcome, baseline);
        assert_eq!(std::fs::read(dir.join(JOURNAL_FILE)).unwrap(), baseline_wal);
    }

    #[test]
    fn resume_under_a_different_rung_set_is_refused() {
        let dir = temp_dir("rung_mismatch");
        let (task, space, plan) = fixture();
        let degraded_rungs = vec![("prior".to_owned(), 1u8)];
        let crash = StorageFaults {
            crash_at_seq: Some(3),
            ..StorageFaults::none()
        };
        let spec = CheckpointSpec::new(&dir)
            .with_faults(plan.seed, plan.default_rates)
            .with_rungs(&degraded_rungs)
            .with_storage(crash);
        let mut m = measurer(&plan);
        let _ = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(10), 3);
        // Resuming with healthy artifacts (rung 0 everywhere) must refuse:
        // the journaled prefix was produced by a different strategy.
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates).resuming(true);
        let mut m = measurer(&plan);
        let err = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(10), 3).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }), "{err}");
        // Resuming under the recorded rung set continues fine.
        let spec = spec.with_rungs(&degraded_rungs);
        let mut m = measurer(&plan);
        let outcome = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(10), 3).unwrap();
        assert_eq!(outcome.measurements, 10);
    }

    #[test]
    fn explicit_rung_zero_fingerprint_matches_a_legacy_empty_header() {
        // A fingerprint that spells out rung 0 for every component is the
        // same resolution as the empty fingerprint old journals carry.
        let all_zero: Vec<(String, u8)> = vec![("prior".to_owned(), 0), ("cost-model".to_owned(), 0)];
        assert!(rungs_match(&[], &all_zero));
        assert!(rungs_match(&all_zero, &[]));
        assert!(!rungs_match(&[("prior".to_owned(), 1)], &all_zero));
        assert!(!rungs_match(&[], &[("sampler".to_owned(), 1)]));
    }

    /// A tuner that delegates to [`RandomTuner`] but reports degraded
    /// component health, standing in for a Glimpse run on fallback rungs.
    struct DegradedTuner(RandomTuner);

    impl Tuner for DegradedTuner {
        fn name(&self) -> &str {
            "degraded-test"
        }

        fn tune(&mut self, ctx: TuneContext<'_>) -> TuningOutcome {
            let mut outcome = self.0.tune(ctx);
            let mut health = glimpse_supervise::HealthReport::healthy();
            health.demote(
                glimpse_supervise::health::Component::Prior,
                1,
                glimpse_supervise::health::HealthCause::ChecksumMismatch,
            );
            outcome.health = Some(health);
            outcome
        }
    }

    #[test]
    fn full_budget_run_on_fallback_rungs_settles_degraded_but_complete() {
        let dir = temp_dir("fallback_settle");
        let (task, space, plan) = fixture();
        let rungs = vec![("prior".to_owned(), 1u8)];
        let spec = CheckpointSpec::new(&dir)
            .with_faults(plan.seed, plan.default_rates)
            .with_rungs(&rungs);
        let mut m = measurer(&plan);
        let supervised = run_supervised(
            &mut DegradedTuner(RandomTuner::new()),
            &spec,
            &task,
            &space,
            &mut m,
            Budget::measurements(6),
            3,
            &RunControl::none(),
        )
        .unwrap();
        assert_eq!(supervised.status, CellStatus::Degraded(Degradation::ComponentFallback));
        assert_eq!(supervised.outcome.measurements, 6, "a fallback rung still runs the full budget");
        assert!(load_complete(&dir).unwrap().is_some(), "fallback cells are finished, not resumable");
        // Resuming the finished cell re-reports the same status from the
        // stored outcome without re-measuring.
        let spec = spec.resuming(true);
        let mut m2 = measurer(&plan);
        let again = run_supervised(
            &mut DegradedTuner(RandomTuner::new()),
            &spec,
            &task,
            &space,
            &mut m2,
            Budget::measurements(6),
            3,
            &RunControl::none(),
        )
        .unwrap();
        assert_eq!(again.status, CellStatus::Degraded(Degradation::ComponentFallback));
        assert_eq!(again.outcome, supervised.outcome);
        assert_eq!(m2.elapsed_gpu_seconds(), 0.0);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // hand-writes a corrupt fixture
    fn headerless_journal_restarts_from_zero() {
        let dir = temp_dir("headerless");
        let (task, space, plan) = fixture();
        // Simulate a crash mid-header append: a few junk bytes, no frame.
        std::fs::write(dir.join(JOURNAL_FILE), b"\x05\x00").unwrap();
        let spec = CheckpointSpec::new(&dir).with_faults(plan.seed, plan.default_rates).resuming(true);
        let mut m = measurer(&plan);
        let outcome = run_checkpointed(&mut RandomTuner::new(), &spec, &task, &space, &mut m, Budget::measurements(5), 3).unwrap();
        assert_eq!(outcome.measurements, 5);
    }
}
