//! The Chameleon baseline (Ahn et al., "Chameleon: Adaptive Code
//! Optimization for Expedited Deep Neural Network Compilation", ICLR 2020).
//!
//! Two upgrades over AutoTVM, both reproduced here:
//!
//! * **Adaptive exploration** — instead of fixed-length annealing rounds,
//!   the exploration budget *shrinks geometrically* as the learned policy
//!   converges, and chains restart from the incumbent top-K. This is what
//!   buys Chameleon its ~2× reduction in search steps over AutoTVM
//!   (Fig. 6 shows ≈50 % vs AutoTVM's 100 %).
//! * **Adaptive sampling** — the explorer proposes a large candidate pool;
//!   k-means clusters the pool in feature space and only configurations
//!   nearest the centroids are measured, cutting redundant and (some)
//!   invalid measurements. The paper notes this sampling is still
//!   hardware-agnostic — Glimpse's Fig. 7 advantage comes from replacing it
//!   with Blueprint-derived predictors.

use crate::context::{TuneContext, Tuner, TuningOutcome};
use crate::cost_model::GbtCostModel;
use glimpse_mlkit::kmeans::{kmeans, snap_to_points};
use glimpse_mlkit::sa::{anneal_cancellable_in_place, SaParams};
use glimpse_mlkit::stats::child_rng;
use glimpse_space::Config;
use rand::Rng;

/// Chameleon hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ChameleonConfig {
    /// Random measurements before the first surrogate fit.
    pub n_init: usize,
    /// Hardware measurements per iteration.
    pub batch_size: usize,
    /// Parallel Markov chains per exploration round.
    pub sa_chains: usize,
    /// Steps per chain in the **first** round.
    pub sa_steps_initial: usize,
    /// Geometric decay of per-round annealing steps (adaptive exploration).
    pub sa_decay: f64,
    /// Candidate-pool multiple handed to adaptive sampling.
    pub pool_factor: usize,
}

impl Default for ChameleonConfig {
    fn default() -> Self {
        Self {
            n_init: 16,
            batch_size: 16,
            sa_chains: 32,
            sa_steps_initial: 60,
            sa_decay: 0.75,
            pool_factor: 4,
        }
    }
}

/// The Chameleon tuner.
#[derive(Debug, Clone)]
pub struct ChameleonTuner {
    config: ChameleonConfig,
}

impl ChameleonTuner {
    /// Creates the tuner with default hyperparameters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: ChameleonConfig::default(),
        }
    }

    /// Creates the tuner with explicit hyperparameters.
    #[must_use]
    pub fn with_config(config: ChameleonConfig) -> Self {
        Self { config }
    }
}

impl Default for ChameleonTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl Tuner for ChameleonTuner {
    fn name(&self) -> &str {
        "Chameleon"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let mut rng = child_rng(ctx.seed, 0xC4A3_1E0A);
        let mut model = GbtCostModel::new(ctx.seed ^ 0x11);

        while ctx.history().len() < self.config.n_init && !ctx.exhausted() {
            let config = ctx.space.sample_uniform(&mut rng);
            ctx.measure(&config);
            ctx.add_explorer_steps(1);
        }

        let mut round = 0usize;
        // A cancelled SA round is discarded whole, so supervision never
        // perturbs the journal.
        let cancel = ctx.cancel_token();
        while !ctx.exhausted() {
            model.fit(ctx.space, ctx.history());
            // Adaptive exploration: shrinking annealing budget, greedy restarts.
            let steps = ((self.config.sa_steps_initial as f64) * self.config.sa_decay.powi(round as i32))
                .ceil()
                .max(8.0) as usize;
            round += 1;
            let mut ranked = ctx.history().valid_pairs();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut starts: Vec<Config> = ranked.iter().map(|(c, _)| (*c).clone()).take(self.config.sa_chains / 2).collect();
            while starts.len() < self.config.sa_chains {
                starts.push(ctx.space.sample_uniform(&mut rng));
            }
            let space = ctx.space;
            // Per-round seed: chains fan out across workers, seed-split per
            // chain, so the round is deterministic at any thread count.
            let sa_seed: u64 = rng.gen();
            let Some(outcome) = anneal_cancellable_in_place(
                &starts,
                |c| model.predict(space, c),
                |c: &Config, out: &mut Config, r: &mut _| space.neighbor_into(c, out, r),
                SaParams {
                    chains: self.config.sa_chains,
                    max_steps: steps,
                    t_start: 1.0,
                    t_end: 0.05,
                    patience: 0,
                },
                sa_seed,
                &cancel,
            ) else {
                break;
            };
            ctx.add_explorer_steps(outcome.steps_executed);

            // Candidate pool for adaptive sampling.
            let pool_target = self.config.batch_size * self.config.pool_factor;
            let mut pool: Vec<Config> = Vec::new();
            for (config, _) in outcome.top_k(self.config.sa_chains) {
                if !ctx.seen(&config) && !pool.contains(&config) {
                    pool.push(config);
                }
            }
            // Expand the pool with neighbors of the *good* proposals (the
            // SA top-k seeds the front of the pool), keeping only candidates
            // the surrogate considers promising — Chameleon's sample
            // synthesis draws from the learned distribution, not uniformly.
            let seeds = pool.len().max(1);
            let quality_floor = 0.15 * model.predict_batch(space, &pool).into_iter().fold(0.0f64, f64::max);
            let mut attempts = 0;
            while pool.len() < pool_target && attempts < pool_target * 10 {
                attempts += 1;
                let base = if pool.is_empty() {
                    ctx.space.sample_uniform(&mut rng)
                } else {
                    pool[rng.gen_range(0..seeds.min(pool.len()))].clone()
                };
                let config = ctx.space.neighbor(&base, &mut rng);
                if !ctx.seen(&config) && !pool.contains(&config) && model.predict(space, &config) >= quality_floor {
                    pool.push(config);
                }
            }
            if pool.is_empty() {
                pool.push(ctx.space.sample_uniform(&mut rng));
            }

            // Adaptive sampling: cluster the pool, measure snapped centroids.
            // Featurize the whole pool once through the model's cache; the
            // surrogate scores reuse those same shared rows, and every later
            // filter reads the batch results.
            let features = model.features_batch(space, &pool);
            let pool_preds = model.predict_batch(space, &pool);
            let clusters = kmeans(&features, self.config.batch_size, 25, &mut rng);
            let chosen = snap_to_points(&clusters.centroids, &features);
            // Exploit guard: always measure the surrogate's single best
            // proposal, then fill with the (diverse) centroid picks that the
            // surrogate does not consider near-certainly invalid.
            let best_measured = ctx.history().best_gflops();
            let mut batch: Vec<Config> = Vec::new();
            if let Some(best_idx) = (0..pool.len()).max_by(|&a, &b| pool_preds[a].total_cmp(&pool_preds[b])) {
                batch.push(pool[best_idx].clone());
            }
            for idx in chosen {
                let config = pool[idx].clone();
                if !batch.contains(&config) && pool_preds[idx] > 0.05 * best_measured {
                    batch.push(config);
                }
            }
            let mut fill_attempts = 0;
            while batch.len() < self.config.batch_size && fill_attempts < 200 {
                fill_attempts += 1;
                // Back-fill from the pool's neighborhoods rather than
                // uniform samples (which are mostly invalid).
                let base = pool[rng.gen_range(0..pool.len())].clone();
                let config = ctx.space.neighbor(&base, &mut rng);
                if !ctx.seen(&config) && !batch.contains(&config) {
                    batch.push(config);
                }
            }
            ctx.measure_batch(&batch);
        }
        let mut outcome = ctx.finish(self.name());
        outcome.surrogate = Some(model.lifecycle());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autotvm::AutoTvmTuner;
    use crate::budget::Budget;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    fn run_tuner<T: Tuner>(mut tuner: T, budget: usize, seed: u64) -> TuningOutcome {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("RTX 2080 Ti").unwrap().clone(), seed);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(budget), seed);
        tuner.tune(ctx)
    }

    #[test]
    fn uses_fewer_explorer_steps_than_autotvm() {
        // Fig. 6: Chameleon ~50% of AutoTVM's steps at comparable budgets.
        let cham = run_tuner(ChameleonTuner::new(), 160, 3);
        let auto = run_tuner(AutoTvmTuner::new(), 160, 3);
        assert!(
            (cham.explorer_steps as f64) < 0.8 * auto.explorer_steps as f64,
            "chameleon {} vs autotvm {}",
            cham.explorer_steps,
            auto.explorer_steps
        );
    }

    #[test]
    fn finds_competitive_configs() {
        let cham = run_tuner(ChameleonTuner::new(), 160, 4);
        let auto = run_tuner(AutoTvmTuner::new(), 160, 4);
        assert!(
            cham.best_gflops > 0.5 * auto.best_gflops,
            "chameleon {} vs autotvm {}",
            cham.best_gflops,
            auto.best_gflops
        );
    }

    #[test]
    fn respects_budget() {
        let outcome = run_tuner(ChameleonTuner::new(), 60, 5);
        assert!(outcome.measurements <= 60);
    }

    #[test]
    fn batch_configs_are_distinct() {
        let outcome = run_tuner(ChameleonTuner::new(), 100, 6);
        use std::collections::BTreeSet;
        let set: BTreeSet<_> = outcome.history.trials.iter().map(|t| t.config.indices().to_vec()).collect();
        // Duplicates are possible only via the resample fallback; they
        // should be rare.
        assert!(set.len() as f64 > 0.9 * outcome.history.len() as f64);
    }
}
