//! Surrogate cost models (`f̂ ≈ f` of §2.1) over config features.
//!
//! AutoTVM fits a boosted-tree ranker on measured `(features, throughput)`
//! pairs and lets simulated annealing optimize the surrogate instead of the
//! hardware. Transfer learning (§2.2, Fig. 5) warm-starts the model with
//! pairs from *other* (GPU, task) runs, decaying their weight as local
//! evidence accumulates.
//!
//! # Surrogate lifecycle
//!
//! Refitting the forest from scratch over the whole history every round
//! makes surrogate cost O(rounds²) over a campaign. [`GbtCostModel::fit`]
//! is therefore *incremental* by default:
//!
//! * new fault-free trials since the last fit are featurized (through the
//!   shared [`FeatureCache`]) and appended to a persistent training matrix
//!   — the `usable` filter never rescans old history and transfer rows are
//!   never re-cloned;
//! * most rounds warm-start from the previous forest via
//!   [`Gbt::fit_incremental`], appending [`DEFAULT_INCREMENTAL_TREES`]
//!   trees fitted on the residuals, seeded by `child_rng(seed, round)`;
//! * every [`DEFAULT_REFIT_EVERY`]-th fit (and whenever the transfer set
//!   drops out) the forest is refitted from scratch with
//!   `StdRng::seed_from_u64(seed)` — exactly the historical code path — to
//!   bound drift. At these boundaries the model is bit-identical to what a
//!   scratch-every-round model (`with_refit_every(1)`, the equivalence
//!   baseline) produces on the same history.
//!
//! Every piece of this state is a pure function of `(seed, history)`: a
//! replayed or resumed campaign reconstructs the same forests, so journals
//! stay byte-identical with the incremental path on.

use crate::feature_cache::{CacheStats, FeatureCache};
use crate::history::TuningHistory;
use glimpse_mlkit::gbt::{Gbt, GbtParams};
use glimpse_mlkit::stats::child_rng;
use glimpse_space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Throughput scale (GFLOPS) applied before fitting, keeping targets O(1).
const SCORE_SCALE: f64 = 1000.0;

/// Default full-refit cadence: every K-th fit rebuilds the forest from
/// scratch; the fits between warm-start from the previous forest.
pub const DEFAULT_REFIT_EVERY: usize = 8;

/// Default number of residual trees appended per incremental fit.
pub const DEFAULT_INCREMENTAL_TREES: usize = 8;

/// What the most recent [`GbtCostModel::fit`] call actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitKind {
    /// Never fitted (no usable rows yet).
    Unfitted,
    /// Full seeded refit over the whole training matrix.
    Scratch,
    /// Warm start: residual trees appended to the previous forest.
    Incremental,
    /// No new usable trials since the last fit — forest kept as-is.
    Skipped,
}

/// Lifecycle counters for diagnostics: how the surrogate has been trained
/// and how the featurization cache is paying off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateLifecycle {
    /// Fits that actually trained (scratch + incremental).
    pub rounds: usize,
    /// Full seeded refits.
    pub scratch_fits: usize,
    /// Warm-start fits.
    pub incremental_fits: usize,
    /// Fit calls skipped because no new usable trials arrived.
    pub skipped_fits: usize,
    /// Trees in the current forest.
    pub forest_trees: usize,
    /// Rows in the training matrix (local + active transfer).
    pub training_rows: usize,
    /// Full-refit cadence K.
    pub refit_every: usize,
    /// Residual trees appended per incremental fit.
    pub incremental_trees: usize,
    /// Featurization-cache hit/miss counters.
    pub cache: CacheStats,
}

/// A gradient-boosted surrogate with optional transfer warm-start,
/// incremental per-round training, and cached featurization.
#[derive(Debug, Clone)]
pub struct GbtCostModel {
    params: GbtParams,
    seed: u64,
    model: Option<Gbt>,
    cache: FeatureCache,
    /// Persistent training matrix: local rows in history order, then the
    /// still-active transfer rows as a tail.
    train_x: Vec<Arc<[f64]>>,
    train_y: Vec<f64>,
    /// Number of local (non-transfer) rows at the front of the matrix.
    local_rows: usize,
    /// Transfer rows currently kept in the matrix tail (0 once dropped).
    transfer_tail: usize,
    /// Transfer pairs ever loaded (the stable [`GbtCostModel::transfer_len`]).
    transfer_loaded: usize,
    /// History trials consumed so far (including faulted ones).
    seen_trials: usize,
    rounds: usize,
    fits_since_refit: usize,
    refit_every: usize,
    incremental_trees: usize,
    scratch_fits: usize,
    incremental_fits: usize,
    skipped_fits: usize,
    last_fit: FitKind,
}

impl GbtCostModel {
    /// Fresh, unfitted model with the default incremental schedule.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            params: GbtParams::default(),
            seed,
            model: None,
            cache: FeatureCache::new(),
            train_x: Vec::new(),
            train_y: Vec::new(),
            local_rows: 0,
            transfer_tail: 0,
            transfer_loaded: 0,
            seen_trials: 0,
            rounds: 0,
            fits_since_refit: 0,
            refit_every: DEFAULT_REFIT_EVERY,
            incremental_trees: DEFAULT_INCREMENTAL_TREES,
            scratch_fits: 0,
            incremental_fits: 0,
            skipped_fits: 0,
            last_fit: FitKind::Unfitted,
        }
    }

    /// Sets the full-refit cadence (clamped to ≥ 1). `with_refit_every(1)`
    /// refits from scratch every round — the pre-incremental behavior, kept
    /// as the equivalence baseline.
    #[must_use]
    pub fn with_refit_every(mut self, rounds: usize) -> Self {
        self.refit_every = rounds.max(1);
        self
    }

    /// Sets the number of residual trees per incremental fit (≥ 1).
    #[must_use]
    pub fn with_incremental_trees(mut self, trees: usize) -> Self {
        self.incremental_trees = trees.max(1);
        self
    }

    /// Loads transfer pairs from foreign tuning logs. `space` must be the
    /// *target* task's space; only logs whose configs are dimensionally
    /// compatible (same knob arity) are usable and others are skipped.
    pub fn load_transfer(&mut self, space: &SearchSpace, logs: &[&TuningHistory], per_log_cap: usize) {
        let arity = space.knobs().len();
        for log in logs {
            let mut taken = 0usize;
            for (config, gflops) in log.valid_pairs() {
                if config.indices().len() != arity || taken >= per_log_cap {
                    continue;
                }
                if config.indices().iter().zip(space.knobs()).any(|(i, k)| *i >= k.cardinality()) {
                    continue;
                }
                // Transfer rows live in the matrix tail, after local rows;
                // they are featurized directly (not through the cache) so
                // foreign configs never pollute the campaign's memo.
                self.train_x.push(Arc::from(space.features(config)));
                self.train_y.push(gflops / SCORE_SCALE);
                self.transfer_tail += 1;
                self.transfer_loaded += 1;
                taken += 1;
            }
        }
    }

    /// Number of transfer pairs loaded.
    #[must_use]
    pub fn transfer_len(&self) -> usize {
        self.transfer_loaded
    }

    /// Whether the model has been fitted at least once.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }

    /// Fits on the history's valid measurements (invalid trials enter as
    /// zero-throughput examples so the surrogate learns to avoid them).
    /// Faulted trials are *excluded* entirely: a timeout or device loss says
    /// nothing about the configuration, and feeding it in as a fake zero
    /// would teach the model to avoid perfectly good regions.
    /// Transfer pairs participate until local data outnumbers them 2:1.
    ///
    /// Only trials appended since the previous call are processed (the
    /// history is append-only within a campaign); see the module docs for
    /// the scratch/incremental schedule.
    pub fn fit(&mut self, space: &SearchSpace, history: &TuningHistory) {
        if history.trials.len() < self.seen_trials {
            // A shorter history means a different campaign: drop all
            // derived state (cache included) and start over.
            self.reset_campaign_state();
        }
        let new_usable: Vec<&crate::history::Trial> = history.trials[self.seen_trials..].iter().filter(|t| !t.is_fault()).collect();
        self.seen_trials = history.trials.len();
        let had_new = !new_usable.is_empty();
        if had_new {
            let rows = self.cache.rows_batch(space, new_usable.iter().map(|t| &t.config));
            let at = self.local_rows;
            self.train_x.splice(at..at, rows);
            self.train_y
                .splice(at..at, new_usable.iter().map(|t| t.gflops.unwrap_or(0.0) / SCORE_SCALE));
            self.local_rows += new_usable.len();
        }
        // One-way flip: once local data outnumbers transfer 2:1 the tail is
        // dropped for good, and the forest is refitted from scratch so no
        // tree trained on foreign rows lingers.
        let mut force_scratch = false;
        if self.transfer_tail > 0 && self.local_rows >= 2 * self.transfer_tail {
            self.train_x.truncate(self.local_rows);
            self.train_y.truncate(self.local_rows);
            self.transfer_tail = 0;
            force_scratch = true;
        }
        if self.train_x.is_empty() {
            return;
        }
        if !had_new && self.model.is_some() && !force_scratch {
            self.skipped_fits += 1;
            self.last_fit = FitKind::Skipped;
            return;
        }
        let refit_due = force_scratch || self.fits_since_refit + 1 >= self.refit_every;
        // Growing requires a previous forest and no refit being due; taking
        // the model out (instead of `as_ref().expect(..)`) makes the scratch
        // path the structural fallback rather than a reachable panic.
        if let Some(prev) = self.model.take().filter(|_| !refit_due) {
            let mut rng = child_rng(self.seed, self.rounds as u64);
            let grown = prev.fit_incremental(&self.train_x, &self.train_y, self.incremental_trees, &mut rng);
            self.model = Some(grown);
            self.fits_since_refit += 1;
            self.incremental_fits += 1;
            self.last_fit = FitKind::Incremental;
        } else {
            // The historical code path, bit-for-bit: one seeded scratch fit
            // over (local rows in history order, then transfer rows).
            let mut rng = StdRng::seed_from_u64(self.seed);
            self.model = Some(Gbt::fit(&self.train_x, &self.train_y, self.params, &mut rng));
            self.fits_since_refit = 0;
            self.scratch_fits += 1;
            self.last_fit = FitKind::Scratch;
        }
        self.rounds += 1;
    }

    fn reset_campaign_state(&mut self) {
        // Keep the transfer tail (it is campaign-independent warm-start
        // data) but drop local rows, the forest, and the memo.
        self.train_x.drain(..self.local_rows);
        self.train_y.drain(..self.local_rows);
        self.local_rows = 0;
        self.seen_trials = 0;
        self.model = None;
        self.rounds = 0;
        self.fits_since_refit = 0;
        self.last_fit = FitKind::Unfitted;
        self.cache.clear();
    }

    /// Predicted throughput (GFLOPS) of `config`.
    ///
    /// Returns 0 before the first [`GbtCostModel::fit`]. Featurizes
    /// directly (not through the cache): this is the SA per-step path,
    /// where configs are almost never revisited.
    #[must_use]
    pub fn predict(&self, space: &SearchSpace, config: &Config) -> f64 {
        self.predict_features(&space.features(config))
    }

    /// Predicted throughput from a pre-computed feature vector.
    #[must_use]
    pub fn predict_features(&self, features: &[f64]) -> f64 {
        self.model.as_ref().map_or(0.0, |m| m.predict(features) * SCORE_SCALE)
    }

    /// Predicted throughput (GFLOPS) for a whole candidate batch, with
    /// values identical to mapping [`GbtCostModel::predict`] in order.
    /// Featurization goes through the campaign cache; tree walks fan out
    /// across worker threads.
    #[must_use]
    pub fn predict_batch(&self, space: &SearchSpace, configs: &[Config]) -> Vec<f64> {
        let Some(model) = self.model.as_ref() else {
            return vec![0.0; configs.len()];
        };
        let rows = self.cache.rows_batch(space, configs.iter());
        model.predict_batch(&rows).into_iter().map(|v| v * SCORE_SCALE).collect()
    }

    /// Cached feature rows for a batch of configs (shared, not cloned) —
    /// the same rows [`GbtCostModel::fit`] and
    /// [`GbtCostModel::predict_batch`] train and predict on. Lets callers
    /// (e.g. Chameleon's clustering) reuse the memo instead of
    /// featurizing again.
    #[must_use]
    pub fn features_batch<'a, I>(&self, space: &SearchSpace, configs: I) -> Vec<Arc<[f64]>>
    where
        I: IntoIterator<Item = &'a Config>,
    {
        self.cache.rows_batch(space, configs)
    }

    /// Featurization-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// What the most recent fit call did.
    #[must_use]
    pub fn last_fit(&self) -> FitKind {
        self.last_fit
    }

    /// Trees in the current forest (0 when unfitted).
    #[must_use]
    pub fn forest_trees(&self) -> usize {
        self.model.as_ref().map_or(0, Gbt::len)
    }

    /// Lifecycle counters for diagnostics and the throughput harness.
    #[must_use]
    pub fn lifecycle(&self) -> SurrogateLifecycle {
        SurrogateLifecycle {
            rounds: self.rounds,
            scratch_fits: self.scratch_fits,
            incremental_fits: self.incremental_fits,
            skipped_fits: self.skipped_fits,
            forest_trees: self.forest_trees(),
            training_rows: self.train_x.len(),
            refit_every: self.refit_every,
            incremental_trees: self.incremental_trees,
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Trial;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::{models, TemplateKind};

    fn measured_history(n: usize, seed: u64) -> (SearchSpace, TuningHistory) {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), seed);
        let mut history = TuningHistory::new("Titan Xp", &task.id.model, task.id.index, task.template);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let c = space.sample_uniform(&mut rng);
            let r = measurer.measure(&space, &c);
            history.push(Trial::from_measure(&r));
        }
        (space, history)
    }

    /// A fresh model fitted once on a prefix of `history`, scratch-style.
    fn scratch_at(space: &SearchSpace, history: &TuningHistory, trials: usize, seed: u64) -> GbtCostModel {
        let mut prefix = TuningHistory::new(&history.gpu, &history.model, history.task_index, history.template);
        for t in history.trials.iter().take(trials) {
            prefix.push(t.clone());
        }
        let mut model = GbtCostModel::new(seed).with_refit_every(1);
        model.fit(space, &prefix);
        model
    }

    #[test]
    fn unfitted_model_predicts_zero() {
        let (space, history) = measured_history(1, 1);
        let model = GbtCostModel::new(0);
        assert_eq!(model.predict(&space, &history.trials[0].config), 0.0);
        assert!(!model.is_fitted());
        assert_eq!(model.last_fit(), FitKind::Unfitted);
    }

    #[test]
    fn fitted_model_ranks_measured_configs() {
        let (space, history) = measured_history(300, 2);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        assert!(model.is_fitted());
        // Rank correlation between prediction and truth on training data.
        let pairs = history.valid_pairs();
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                let (pi, pj) = (model.predict(&space, pairs[i].0), model.predict(&space, pairs[j].0));
                total += 1;
                if (pairs[i].1 - pairs[j].1) * (pi - pj) > 0.0 {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total.max(1) as f64;
        assert!(tau > 0.7, "rank agreement {tau}");
    }

    #[test]
    fn invalid_trials_teach_avoidance() {
        let (space, history) = measured_history(300, 3);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        let invalid_preds: Vec<f64> = history
            .trials
            .iter()
            .filter(|t| !t.is_valid())
            .take(50)
            .map(|t| model.predict(&space, &t.config))
            .collect();
        let valid_best = history.best_gflops();
        let mean_invalid = invalid_preds.iter().sum::<f64>() / invalid_preds.len().max(1) as f64;
        assert!(mean_invalid < valid_best * 0.5, "invalid mean {mean_invalid} vs best {valid_best}");
    }

    #[test]
    fn faulted_trials_never_enter_training() {
        let (space, mut history) = measured_history(0, 7);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let c = space.sample_uniform(&mut rng);
            history.push(Trial {
                config: c,
                gflops: None,
                cost_s: 10.0,
                fault: Some(glimpse_sim::MeasureFault::Timeout { timeout_s: 10.0 }),
                invalid: None,
            });
        }
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        // Every trial was a fault, so there was nothing to train on.
        assert!(!model.is_fitted(), "faulted trials must not become fake zero-throughput examples");
    }

    #[test]
    fn predict_batch_matches_scalar_predict() {
        let (space, history) = measured_history(120, 8);
        let mut model = GbtCostModel::new(0);
        let configs: Vec<_> = history.trials.iter().map(|t| t.config.clone()).collect();
        // Unfitted: all zeros.
        assert!(model.predict_batch(&space, &configs).iter().all(|v| *v == 0.0));
        model.fit(&space, &history);
        let batch = model.predict_batch(&space, &configs);
        for (c, b) in configs.iter().zip(&batch) {
            assert_eq!(model.predict(&space, c).to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transfer_pairs_load_and_cap() {
        let (space, history) = measured_history(100, 4);
        let mut model = GbtCostModel::new(0);
        model.load_transfer(&space, &[&history], 10);
        assert!(model.transfer_len() <= 10);
        assert!(model.transfer_len() > 0);
    }

    #[test]
    fn transfer_from_mismatched_template_is_skipped() {
        let (space, _) = measured_history(5, 5);
        let dense_model = models::alexnet();
        let dense_task = dense_model.tasks().iter().find(|t| t.template == TemplateKind::Dense).unwrap();
        let dense_space = templates::space_for_task(dense_task);
        let mut dense_history = TuningHistory::new("Titan Xp", "AlexNet", dense_task.id.index, TemplateKind::Dense);
        let mut rng = StdRng::seed_from_u64(6);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 6);
        for _ in 0..20 {
            let c = dense_space.sample_uniform(&mut rng);
            dense_history.push(Trial::from_measure(&measurer.measure(&dense_space, &c)));
        }
        let mut model = GbtCostModel::new(0);
        model.load_transfer(&space, &[&dense_history], 100);
        assert_eq!(model.transfer_len(), 0, "dense configs must not enter a conv space model");
    }

    #[test]
    fn incremental_is_bitwise_equal_to_scratch_at_refit_boundaries() {
        // Drive an incremental model round by round; at every round where
        // it performed a scratch refit, its predictions must be bit-equal
        // to a fresh scratch fit on the same prefix — the determinism
        // contract that keeps replay/resume byte-identical.
        let (space, history) = measured_history(96, 9);
        let probe: Vec<Config> = history.trials.iter().take(30).map(|t| t.config.clone()).collect();
        let mut incremental = GbtCostModel::new(0).with_refit_every(3).with_incremental_trees(4);
        let batch = 8;
        let mut prefix = TuningHistory::new(&history.gpu, &history.model, history.task_index, history.template);
        let mut scratch_boundaries = 0usize;
        for (i, t) in history.trials.iter().enumerate() {
            prefix.push(t.clone());
            if (i + 1) % batch != 0 {
                continue;
            }
            incremental.fit(&space, &prefix);
            match incremental.last_fit() {
                FitKind::Scratch => {
                    scratch_boundaries += 1;
                    let baseline = scratch_at(&space, &history, i + 1, 0);
                    let a = incremental.predict_batch(&space, &probe);
                    let b = baseline.predict_batch(&space, &probe);
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "refit boundary diverged at trial {}", i + 1);
                    }
                }
                FitKind::Incremental => {
                    // Between refits the forest is larger than the scratch
                    // baseline's but must stay well-correlated with it.
                    let baseline = scratch_at(&space, &history, i + 1, 0);
                    let a = incremental.predict_batch(&space, &probe);
                    let b = baseline.predict_batch(&space, &probe);
                    let rho = glimpse_mlkit::rank::spearman_rho(&a, &b);
                    assert!(rho > 0.5, "rank divergence between refits: rho {rho} at trial {}", i + 1);
                }
                other => panic!("expected a training fit each round, got {other:?}"),
            }
        }
        assert!(scratch_boundaries >= 2, "the cadence must produce multiple refit boundaries");
        let life = incremental.lifecycle();
        assert_eq!(life.rounds, life.scratch_fits + life.incremental_fits);
        assert!(life.incremental_fits > life.scratch_fits);
    }

    #[test]
    fn refit_every_one_is_scratch_every_round() {
        let (space, history) = measured_history(48, 10);
        let mut model = GbtCostModel::new(0).with_refit_every(1);
        let mut prefix = TuningHistory::new(&history.gpu, &history.model, history.task_index, history.template);
        for (i, t) in history.trials.iter().enumerate() {
            prefix.push(t.clone());
            if (i + 1) % 16 == 0 {
                model.fit(&space, &prefix);
                assert_eq!(model.last_fit(), FitKind::Scratch);
            }
        }
        let life = model.lifecycle();
        assert_eq!(life.incremental_fits, 0);
        assert_eq!(life.scratch_fits, 3);
    }

    #[test]
    fn fit_without_new_trials_is_a_deterministic_no_op() {
        let (space, history) = measured_history(60, 11);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        let probe: Vec<Config> = history.trials.iter().take(10).map(|t| t.config.clone()).collect();
        let before = model.predict_batch(&space, &probe);
        let trees = model.forest_trees();
        model.fit(&space, &history);
        assert_eq!(model.last_fit(), FitKind::Skipped);
        assert_eq!(model.forest_trees(), trees, "a skipped fit must not grow the forest");
        let after = model.predict_batch(&space, &probe);
        for (x, y) in before.iter().zip(&after) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn usable_filter_is_incremental_and_complete() {
        // Feed the history in two chunks; the training matrix must contain
        // exactly the fault-free trials, each featurized once.
        let (space, history) = measured_history(80, 12);
        let usable = history.trials.iter().filter(|t| !t.is_fault()).count();
        let mut model = GbtCostModel::new(0);
        let mut prefix = TuningHistory::new(&history.gpu, &history.model, history.task_index, history.template);
        for t in history.trials.iter().take(40) {
            prefix.push(t.clone());
        }
        model.fit(&space, &prefix);
        for t in history.trials.iter().skip(40) {
            prefix.push(t.clone());
        }
        model.fit(&space, &prefix);
        let life = model.lifecycle();
        assert_eq!(life.training_rows, usable);
        assert_eq!(
            life.cache.lookups() as usize,
            usable,
            "each trial looked up exactly once across the two fits"
        );
        assert!(life.cache.entries <= usable);
    }

    #[test]
    fn shrunken_history_resets_the_campaign() {
        let (space, history) = measured_history(60, 13);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        assert!(model.is_fitted());
        // A shorter history is a new campaign: the model must refit from
        // scratch on it rather than treating it as a suffix.
        let (space2, short) = measured_history(24, 14);
        model.fit(&space2, &short);
        assert_eq!(model.last_fit(), FitKind::Scratch);
        let usable = short.trials.iter().filter(|t| !t.is_fault()).count();
        assert_eq!(model.lifecycle().training_rows, usable);
    }

    #[test]
    fn features_batch_shares_rows_with_fit() {
        let (space, history) = measured_history(50, 15);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        let configs: Vec<Config> = history.trials.iter().map(|t| t.config.clone()).collect();
        let stats_before = model.cache_stats();
        let rows = model.features_batch(&space, &configs);
        let stats_after = model.cache_stats();
        assert_eq!(rows.len(), configs.len());
        assert_eq!(stats_after.misses, stats_before.misses, "fit already featurized every trial config");
        for (c, row) in configs.iter().zip(&rows) {
            assert_eq!(row.as_ref(), space.features(c).as_slice());
        }
    }
}
