//! Surrogate cost models (`f̂ ≈ f` of §2.1) over config features.
//!
//! AutoTVM fits a boosted-tree ranker on measured `(features, throughput)`
//! pairs and lets simulated annealing optimize the surrogate instead of the
//! hardware. Transfer learning (§2.2, Fig. 5) warm-starts the model with
//! pairs from *other* (GPU, task) runs, decaying their weight as local
//! evidence accumulates.

use crate::history::TuningHistory;
use glimpse_mlkit::gbt::{Gbt, GbtParams};
use glimpse_mlkit::parallel::{parallel_map, Threads};
use glimpse_space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum batch size before featurization fans out across workers.
const PARALLEL_FEATURIZE_ROWS: usize = 64;

fn featurize_threads(rows: usize) -> Threads {
    if rows >= PARALLEL_FEATURIZE_ROWS {
        Threads::AUTO
    } else {
        Threads::fixed(1)
    }
}

/// Throughput scale (GFLOPS) applied before fitting, keeping targets O(1).
const SCORE_SCALE: f64 = 1000.0;

/// A gradient-boosted surrogate with optional transfer warm-start.
#[derive(Debug, Clone)]
pub struct GbtCostModel {
    params: GbtParams,
    seed: u64,
    model: Option<Gbt>,
    transfer_x: Vec<Vec<f64>>,
    transfer_y: Vec<f64>,
}

impl GbtCostModel {
    /// Fresh, unfitted model.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            params: GbtParams::default(),
            seed,
            model: None,
            transfer_x: Vec::new(),
            transfer_y: Vec::new(),
        }
    }

    /// Loads transfer pairs from foreign tuning logs. `space` must be the
    /// *target* task's space; only logs whose configs are dimensionally
    /// compatible (same knob arity) are usable and others are skipped.
    pub fn load_transfer(&mut self, space: &SearchSpace, logs: &[&TuningHistory], per_log_cap: usize) {
        let arity = space.knobs().len();
        for log in logs {
            let mut taken = 0usize;
            for (config, gflops) in log.valid_pairs() {
                if config.indices().len() != arity || taken >= per_log_cap {
                    continue;
                }
                if config.indices().iter().zip(space.knobs()).any(|(i, k)| *i >= k.cardinality()) {
                    continue;
                }
                self.transfer_x.push(space.features(config));
                self.transfer_y.push(gflops / SCORE_SCALE);
                taken += 1;
            }
        }
    }

    /// Number of transfer pairs loaded.
    #[must_use]
    pub fn transfer_len(&self) -> usize {
        self.transfer_x.len()
    }

    /// Whether the model has been fitted at least once.
    #[must_use]
    pub fn is_fitted(&self) -> bool {
        self.model.is_some()
    }

    /// Refits on the history's valid measurements (invalid trials enter as
    /// zero-throughput examples so the surrogate learns to avoid them).
    /// Faulted trials are *excluded* entirely: a timeout or device loss says
    /// nothing about the configuration, and feeding it in as a fake zero
    /// would teach the model to avoid perfectly good regions.
    /// Transfer pairs participate until local data outnumbers them 2:1.
    pub fn fit(&mut self, space: &SearchSpace, history: &TuningHistory) {
        let usable: Vec<&crate::history::Trial> = history.trials.iter().filter(|t| !t.is_fault()).collect();
        let mut xs: Vec<Vec<f64>> = parallel_map(featurize_threads(usable.len()), &usable, |_, t| space.features(&t.config));
        let mut ys: Vec<f64> = usable.iter().map(|t| t.gflops.unwrap_or(0.0) / SCORE_SCALE).collect();
        if !self.transfer_x.is_empty() && xs.len() < 2 * self.transfer_x.len() {
            xs.extend(self.transfer_x.iter().cloned());
            ys.extend(self.transfer_y.iter().copied());
        }
        if xs.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.model = Some(Gbt::fit(&xs, &ys, self.params, &mut rng));
    }

    /// Predicted throughput (GFLOPS) of `config`.
    ///
    /// Returns 0 before the first [`GbtCostModel::fit`].
    #[must_use]
    pub fn predict(&self, space: &SearchSpace, config: &Config) -> f64 {
        self.predict_features(&space.features(config))
    }

    /// Predicted throughput from a pre-computed feature vector.
    #[must_use]
    pub fn predict_features(&self, features: &[f64]) -> f64 {
        self.model.as_ref().map_or(0.0, |m| m.predict(features) * SCORE_SCALE)
    }

    /// Predicted throughput (GFLOPS) for a whole candidate batch:
    /// featurization and tree walks fan out across worker threads, with
    /// values identical to mapping [`GbtCostModel::predict`] in order.
    #[must_use]
    pub fn predict_batch(&self, space: &SearchSpace, configs: &[Config]) -> Vec<f64> {
        let Some(model) = self.model.as_ref() else {
            return vec![0.0; configs.len()];
        };
        let features = parallel_map(featurize_threads(configs.len()), configs, |_, c| space.features(c));
        model.predict_batch(&features).into_iter().map(|v| v * SCORE_SCALE).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Trial;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::{models, TemplateKind};

    fn measured_history(n: usize, seed: u64) -> (SearchSpace, TuningHistory) {
        let model = models::alexnet();
        let task = &model.tasks()[2];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), seed);
        let mut history = TuningHistory::new("Titan Xp", &task.id.model, task.id.index, task.template);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let c = space.sample_uniform(&mut rng);
            let r = measurer.measure(&space, &c);
            history.push(Trial::from_measure(&r));
        }
        (space, history)
    }

    #[test]
    fn unfitted_model_predicts_zero() {
        let (space, history) = measured_history(1, 1);
        let model = GbtCostModel::new(0);
        assert_eq!(model.predict(&space, &history.trials[0].config), 0.0);
        assert!(!model.is_fitted());
    }

    #[test]
    fn fitted_model_ranks_measured_configs() {
        let (space, history) = measured_history(300, 2);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        assert!(model.is_fitted());
        // Rank correlation between prediction and truth on training data.
        let pairs = history.valid_pairs();
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                let (pi, pj) = (model.predict(&space, pairs[i].0), model.predict(&space, pairs[j].0));
                total += 1;
                if (pairs[i].1 - pairs[j].1) * (pi - pj) > 0.0 {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total.max(1) as f64;
        assert!(tau > 0.7, "rank agreement {tau}");
    }

    #[test]
    fn invalid_trials_teach_avoidance() {
        let (space, history) = measured_history(300, 3);
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        let invalid_preds: Vec<f64> = history
            .trials
            .iter()
            .filter(|t| !t.is_valid())
            .take(50)
            .map(|t| model.predict(&space, &t.config))
            .collect();
        let valid_best = history.best_gflops();
        let mean_invalid = invalid_preds.iter().sum::<f64>() / invalid_preds.len().max(1) as f64;
        assert!(mean_invalid < valid_best * 0.5, "invalid mean {mean_invalid} vs best {valid_best}");
    }

    #[test]
    fn faulted_trials_never_enter_training() {
        let (space, mut history) = measured_history(0, 7);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let c = space.sample_uniform(&mut rng);
            history.push(Trial {
                config: c,
                gflops: None,
                cost_s: 10.0,
                fault: Some(glimpse_sim::MeasureFault::Timeout { timeout_s: 10.0 }),
                invalid: None,
            });
        }
        let mut model = GbtCostModel::new(0);
        model.fit(&space, &history);
        // Every trial was a fault, so there was nothing to train on.
        assert!(!model.is_fitted(), "faulted trials must not become fake zero-throughput examples");
    }

    #[test]
    fn predict_batch_matches_scalar_predict() {
        let (space, history) = measured_history(120, 8);
        let mut model = GbtCostModel::new(0);
        let configs: Vec<_> = history.trials.iter().map(|t| t.config.clone()).collect();
        // Unfitted: all zeros.
        assert!(model.predict_batch(&space, &configs).iter().all(|v| *v == 0.0));
        model.fit(&space, &history);
        let batch = model.predict_batch(&space, &configs);
        for (c, b) in configs.iter().zip(&batch) {
            assert_eq!(model.predict(&space, c).to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transfer_pairs_load_and_cap() {
        let (space, history) = measured_history(100, 4);
        let mut model = GbtCostModel::new(0);
        model.load_transfer(&space, &[&history], 10);
        assert!(model.transfer_len() <= 10);
        assert!(model.transfer_len() > 0);
    }

    #[test]
    fn transfer_from_mismatched_template_is_skipped() {
        let (space, _) = measured_history(5, 5);
        let dense_model = models::alexnet();
        let dense_task = dense_model.tasks().iter().find(|t| t.template == TemplateKind::Dense).unwrap();
        let dense_space = templates::space_for_task(dense_task);
        let mut dense_history = TuningHistory::new("Titan Xp", "AlexNet", dense_task.id.index, TemplateKind::Dense);
        let mut rng = StdRng::seed_from_u64(6);
        let mut measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 6);
        for _ in 0..20 {
            let c = dense_space.sample_uniform(&mut rng);
            dense_history.push(Trial::from_measure(&measurer.measure(&dense_space, &c)));
        }
        let mut model = GbtCostModel::new(0);
        model.load_transfer(&space, &[&dense_history], 100);
        assert_eq!(model.transfer_len(), 0, "dense configs must not enter a conv space model");
    }
}
