//! The AutoTVM baseline (Chen et al., "Learning to optimize tensor
//! programs", NeurIPS 2018).
//!
//! Loop structure, faithful to the original:
//!
//! 1. Seed with `n_init` random measurements.
//! 2. Fit a boosted-tree surrogate on everything measured so far (invalid
//!    configs enter as zero-throughput).
//! 3. Run a batch of parallel simulated-annealing Markov chains that
//!    maximize the *surrogate*, starting from the best measured configs plus
//!    random restarts.
//! 4. Take the top `batch_size` distinct proposals, replace an ε fraction
//!    with uniform random configs (ε-greedy), and measure them on hardware.
//! 5. Repeat until the budget is exhausted.
//!
//! With [`AutoTvmConfig::transfer`] logs the surrogate is warm-started from
//! foreign runs — the "AutoTVM w/ Transfer Learning" comparator of Fig. 5.

use crate::context::{TuneContext, Tuner, TuningOutcome};
use crate::cost_model::GbtCostModel;
use crate::history::TuningHistory;
use glimpse_mlkit::sa::{anneal_cancellable_in_place, SaParams};
use glimpse_mlkit::stats::child_rng;
use glimpse_space::Config;
use rand::Rng;

/// AutoTVM hyperparameters.
#[derive(Debug, Clone)]
pub struct AutoTvmConfig {
    /// Random measurements before the first surrogate fit.
    pub n_init: usize,
    /// Hardware measurements per iteration.
    pub batch_size: usize,
    /// Parallel Markov chains per exploration round.
    pub sa_chains: usize,
    /// Steps per chain per exploration round.
    pub sa_steps: usize,
    /// ε-greedy fraction of each measured batch.
    pub epsilon: f64,
    /// Foreign tuning logs for transfer learning (empty = plain AutoTVM).
    pub transfer: Vec<TuningHistory>,
}

impl Default for AutoTvmConfig {
    fn default() -> Self {
        Self {
            n_init: 16,
            batch_size: 16,
            sa_chains: 32,
            sa_steps: 75,
            epsilon: 0.1,
            transfer: Vec::new(),
        }
    }
}

/// The AutoTVM tuner.
#[derive(Debug, Clone)]
pub struct AutoTvmTuner {
    config: AutoTvmConfig,
}

impl AutoTvmTuner {
    /// Creates the tuner with default hyperparameters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: AutoTvmConfig::default(),
        }
    }

    /// Creates the tuner with explicit hyperparameters.
    #[must_use]
    pub fn with_config(config: AutoTvmConfig) -> Self {
        Self { config }
    }

    /// Enables transfer learning from foreign logs.
    #[must_use]
    pub fn with_transfer(mut self, logs: Vec<TuningHistory>) -> Self {
        self.config.transfer = logs;
        self
    }

    fn uses_transfer(&self) -> bool {
        !self.config.transfer.is_empty()
    }
}

impl Default for AutoTvmTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl Tuner for AutoTvmTuner {
    fn name(&self) -> &str {
        if self.uses_transfer() {
            "AutoTVM+TL"
        } else {
            "AutoTVM"
        }
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let mut rng = child_rng(ctx.seed, 0xA070_7111);
        let mut model = GbtCostModel::new(ctx.seed ^ 0x6B7);
        if self.uses_transfer() {
            let refs: Vec<&TuningHistory> = self.config.transfer.iter().collect();
            model.load_transfer(ctx.space, &refs, 64);
            // Transfer learning lets AutoTVM skip the random seeding phase:
            // the warm-started surrogate proposes the very first batch.
            model.fit(ctx.space, ctx.history());
        }

        // Phase 1: random initialization (skipped under transfer).
        while !model.is_fitted() && ctx.history().len() < self.config.n_init && !ctx.exhausted() {
            let config = ctx.space.sample_uniform(&mut rng);
            ctx.measure(&config);
            ctx.add_explorer_steps(1);
        }

        // Phase 2: surrogate-guided annealing rounds. A cancelled SA round
        // is discarded whole, so supervision never perturbs the journal.
        let cancel = ctx.cancel_token();
        while !ctx.exhausted() {
            model.fit(ctx.space, ctx.history());
            // Chain starts: incumbent top configs + random restarts.
            let mut ranked = ctx.history().valid_pairs();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut starts: Vec<Config> = ranked.iter().map(|(c, _)| (*c).clone()).take(self.config.sa_chains / 4).collect();
            while starts.len() < self.config.sa_chains {
                starts.push(ctx.space.sample_uniform(&mut rng));
            }
            let space = ctx.space;
            // One seed per round keeps the batch deterministic while the
            // chains fan out across worker threads (seed-split per chain).
            let sa_seed: u64 = rng.gen();
            let Some(outcome) = anneal_cancellable_in_place(
                &starts,
                |c| model.predict(space, c),
                |c: &Config, out: &mut Config, r: &mut _| space.neighbor_into(c, out, r),
                SaParams {
                    chains: self.config.sa_chains,
                    max_steps: self.config.sa_steps,
                    t_start: 1.0,
                    t_end: 0.05,
                    patience: 0,
                },
                sa_seed,
                &cancel,
            ) else {
                break;
            };
            ctx.add_explorer_steps(outcome.steps_executed);

            // Top distinct, unseen proposals.
            let mut batch: Vec<Config> = Vec::new();
            for (config, _) in outcome.top_k(self.config.sa_chains) {
                if batch.len() >= self.config.batch_size {
                    break;
                }
                if !ctx.seen(&config) && !batch.contains(&config) {
                    batch.push(config);
                }
            }
            // ε-greedy: replace a fraction with fresh random samples.
            let n_random = ((self.config.batch_size as f64) * self.config.epsilon).ceil() as usize;
            for _ in 0..n_random {
                let config = ctx.space.sample_uniform(&mut rng);
                if !ctx.seen(&config) && !batch.contains(&config) {
                    if batch.len() >= self.config.batch_size {
                        batch.pop();
                    }
                    batch.push(config);
                }
            }
            while batch.len() < self.config.batch_size {
                let config = ctx.space.sample_uniform(&mut rng);
                if !ctx.seen(&config) && !batch.contains(&config) {
                    batch.push(config);
                }
            }
            ctx.measure_batch(&batch);
        }
        let mut outcome = ctx.finish(self.name());
        outcome.surrogate = Some(model.lifecycle());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::random::RandomTuner;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    fn run_tuner<T: Tuner>(mut tuner: T, task_idx: usize, budget: usize, seed: u64) -> TuningOutcome {
        let model = models::alexnet();
        let task = &model.tasks()[task_idx];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("RTX 2070 Super").unwrap().clone(), seed);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(budget), seed);
        tuner.tune(ctx)
    }

    #[test]
    fn beats_random_search_at_equal_budget() {
        let budget = 160;
        let mut auto_wins = 0;
        for seed in [1u64, 2, 3] {
            let autotvm = run_tuner(AutoTvmTuner::new(), 2, budget, seed);
            let random = run_tuner(RandomTuner::new(), 2, budget, seed);
            if autotvm.best_gflops > random.best_gflops {
                auto_wins += 1;
            }
        }
        assert!(auto_wins >= 2, "AutoTVM won only {auto_wins}/3 seeds");
    }

    #[test]
    fn surrogate_cuts_invalid_fraction_vs_random() {
        // §4.3: learned cost models steer measurements toward valid configs.
        let autotvm = run_tuner(AutoTvmTuner::new(), 2, 200, 5);
        let random = run_tuner(RandomTuner::new(), 2, 200, 5);
        assert!(
            autotvm.invalid_fraction() < random.invalid_fraction(),
            "AutoTVM {} vs random {}",
            autotvm.invalid_fraction(),
            random.invalid_fraction()
        );
    }

    #[test]
    fn explorer_steps_accumulate() {
        let outcome = run_tuner(AutoTvmTuner::new(), 2, 80, 7);
        // 16 init steps + 4 rounds x 32 chains x 75 steps
        assert!(outcome.explorer_steps > 1000);
    }

    #[test]
    fn transfer_changes_name_and_seeds_model() {
        let donor = run_tuner(AutoTvmTuner::new(), 2, 80, 11);
        let tuner = AutoTvmTuner::new().with_transfer(vec![donor.history]);
        assert_eq!(tuner.name(), "AutoTVM+TL");
        let outcome = run_tuner(tuner, 2, 48, 12);
        assert!(outcome.best_gflops > 0.0);
    }

    #[test]
    fn respects_budget_exactly() {
        let outcome = run_tuner(AutoTvmTuner::new(), 2, 50, 13);
        assert!(outcome.measurements <= 50);
    }
}
