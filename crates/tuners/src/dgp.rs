//! The DGP baseline (Sun et al., "Fast and Efficient DNN Deployment via
//! Deep Gaussian Transfer Learning", ICCV 2021).
//!
//! DGP places a Gaussian process over configuration features and transfers
//! knowledge *across layers of the same target GPU*: logs from previously
//! tuned tasks fit a boosted-tree prior mean, and the GP models residuals
//! around it. Candidates are scored by expected improvement; the best
//! acquisition batch is measured.

use crate::context::{TuneContext, Tuner, TuningOutcome};
use crate::cost_model::GbtCostModel;
use crate::history::TuningHistory;
use glimpse_mlkit::gp::{GaussianProcess, RbfKernel};
use glimpse_mlkit::parallel::{parallel_map, Threads};
use glimpse_mlkit::stats::child_rng;
use glimpse_space::Config;
use rand::Rng;

/// DGP hyperparameters.
#[derive(Debug, Clone)]
pub struct DgpConfig {
    /// Random measurements before the first GP fit.
    pub n_init: usize,
    /// Hardware measurements per iteration.
    pub batch_size: usize,
    /// Candidate pool scored by the acquisition per iteration.
    pub candidates: usize,
    /// Maximum observations the exact GP conditions on (recent-best subset).
    pub gp_cap: usize,
    /// Cross-task logs from the same GPU for the transfer prior.
    pub transfer: Vec<TuningHistory>,
}

impl Default for DgpConfig {
    fn default() -> Self {
        Self {
            n_init: 16,
            batch_size: 16,
            candidates: 384,
            gp_cap: 200,
            transfer: Vec::new(),
        }
    }
}

/// The DGP tuner.
#[derive(Debug, Clone)]
pub struct DgpTuner {
    config: DgpConfig,
}

impl DgpTuner {
    /// Creates the tuner with default hyperparameters.
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: DgpConfig::default(),
        }
    }

    /// Creates the tuner with explicit hyperparameters.
    #[must_use]
    pub fn with_config(config: DgpConfig) -> Self {
        Self { config }
    }

    /// Supplies cross-task transfer logs (same target GPU).
    #[must_use]
    pub fn with_transfer(mut self, logs: Vec<TuningHistory>) -> Self {
        self.config.transfer = logs;
        self
    }
}

impl Default for DgpTuner {
    fn default() -> Self {
        Self::new()
    }
}

/// Normalization scale for GP targets.
const SCALE: f64 = 1000.0;

impl Tuner for DgpTuner {
    fn name(&self) -> &str {
        "DGP"
    }

    fn tune(&mut self, mut ctx: TuneContext<'_>) -> TuningOutcome {
        let mut rng = child_rng(ctx.seed, 0xD6_9000);

        // Transfer prior mean from other tasks on this GPU.
        let mut prior = GbtCostModel::new(ctx.seed ^ 0x77);
        if !self.config.transfer.is_empty() {
            let refs: Vec<&TuningHistory> = self.config.transfer.iter().collect();
            prior.load_transfer(ctx.space, &refs, 64);
        }

        while ctx.history().len() < self.config.n_init && !ctx.exhausted() {
            let config = ctx.space.sample_uniform(&mut rng);
            ctx.measure(&config);
            ctx.add_explorer_steps(1);
        }

        while !ctx.exhausted() {
            if prior.transfer_len() > 0 {
                prior.fit(ctx.space, ctx.history());
            }
            // GP over residuals (or raw values without a prior), on the
            // most recent + best observations up to the cap. The full
            // history is featurized through the prior's campaign cache —
            // only trials measured since the last round miss — and prior
            // evaluation fans out across workers per row.
            let space = ctx.space;
            let prior_ref = &prior;
            let rows = prior_ref.features_batch(space, ctx.history().trials.iter().map(|t| &t.config));
            let means: Vec<f64> = if prior_ref.is_fitted() {
                parallel_map(Threads::AUTO, &rows, |_, f| prior_ref.predict_features(f))
            } else {
                vec![0.0; rows.len()]
            };
            let mut obs: Vec<(&[f64], f64)> = rows
                .iter()
                .map(std::convert::AsRef::as_ref)
                .zip(&ctx.history().trials)
                .zip(means)
                .map(|((f, t), m)| (f, (t.gflops.unwrap_or(0.0) - m) / SCALE))
                .collect();
            if obs.len() > self.config.gp_cap {
                let skip = obs.len() - self.config.gp_cap;
                obs.drain(0..skip);
            }
            // The exact GP owns its conditioning matrix; copying the capped
            // subset is cheap next to re-featurizing the whole history.
            let (xs, ys): (Vec<Vec<f64>>, Vec<f64>) = obs.into_iter().map(|(f, y)| (f.to_vec(), y)).unzip();
            let gp = GaussianProcess::fit(
                RbfKernel {
                    variance: 1.0,
                    length_scale: 4.0,
                },
                1e-4,
                xs,
                &ys,
            );

            let best_y = ctx.history().best_gflops();
            let mut ranked = ctx.history().valid_pairs();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            // Candidate generation stays sequential (it consumes the tuner
            // RNG); the acquisition scoring of the batch is pure and fans
            // out across workers below.
            let mut candidates: Vec<Config> = Vec::with_capacity(self.config.candidates);
            for i in 0..self.config.candidates {
                // Mix of uniform candidates and neighbors of incumbents.
                let candidate = if i % 3 == 0 && !ranked.is_empty() {
                    let base = ranked[rng.gen_range(0..ranked.len().min(8))].0;
                    ctx.space.neighbor(base, &mut rng)
                } else {
                    ctx.space.sample_uniform(&mut rng)
                };
                if !ctx.seen(&candidate) {
                    candidates.push(candidate);
                }
            }
            let mut scored: Vec<(Config, f64)> = match &gp {
                Ok(gp) => {
                    let scores = parallel_map(Threads::AUTO, &candidates, |_, c| {
                        let f = space.features(c);
                        let m = if prior_ref.is_fitted() {
                            prior_ref.predict_features(&f)
                        } else {
                            0.0
                        };
                        gp.expected_improvement(&f, (best_y - m) / SCALE)
                    });
                    candidates.into_iter().zip(scores).collect()
                }
                // Degenerate GP: fall back to a random ordering (sequential,
                // it consumes the tuner RNG).
                Err(_) => candidates.into_iter().map(|c| (c, rng.gen::<f64>())).collect(),
            };
            ctx.add_explorer_steps(scored.len());
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut batch: Vec<Config> = Vec::new();
            for (config, _) in scored {
                if batch.len() >= self.config.batch_size {
                    break;
                }
                if !batch.contains(&config) {
                    batch.push(config);
                }
            }
            let mut attempts = 0;
            while batch.len() < self.config.batch_size && attempts < 100 {
                attempts += 1;
                let config = ctx.space.sample_uniform(&mut rng);
                if !ctx.seen(&config) && !batch.contains(&config) {
                    batch.push(config);
                }
            }
            ctx.measure_batch(&batch);
        }
        let mut outcome = ctx.finish(self.name());
        outcome.surrogate = Some(prior.lifecycle());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::random::RandomTuner;
    use glimpse_gpu_spec::database;
    use glimpse_sim::Measurer;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;

    fn run_tuner<T: Tuner>(mut tuner: T, task_idx: usize, budget: usize, seed: u64) -> TuningOutcome {
        let model = models::alexnet();
        let task = &model.tasks()[task_idx];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::new(database::find("RTX 3090").unwrap().clone(), seed);
        let ctx = TuneContext::new(task, &space, &mut measurer, Budget::measurements(budget), seed);
        tuner.tune(ctx)
    }

    #[test]
    fn beats_random_search() {
        let mut wins = 0;
        for seed in [1u64, 2, 3] {
            let dgp = run_tuner(DgpTuner::new(), 2, 128, seed);
            let random = run_tuner(RandomTuner::new(), 2, 128, seed);
            if dgp.best_gflops > random.best_gflops {
                wins += 1;
            }
        }
        assert!(wins >= 2, "DGP won only {wins}/3");
    }

    #[test]
    fn transfer_prior_consumes_cross_task_logs() {
        let donor = run_tuner(DgpTuner::new(), 2, 64, 9);
        let tuner = DgpTuner::new().with_transfer(vec![donor.history]);
        let outcome = run_tuner(tuner, 3, 64, 10);
        assert!(outcome.best_gflops > 0.0);
    }

    #[test]
    fn respects_budget() {
        let outcome = run_tuner(DgpTuner::new(), 2, 40, 11);
        assert!(outcome.measurements <= 40);
    }

    #[test]
    fn explorer_steps_count_acquisition_evaluations() {
        let outcome = run_tuner(DgpTuner::new(), 2, 64, 12);
        assert!(outcome.explorer_steps >= outcome.measurements);
    }
}
