//! The tuning loop contract: [`Tuner`], [`TuneContext`], [`TuningOutcome`].

use crate::budget::Budget;
use crate::cost_model::SurrogateLifecycle;
use crate::history::{Trial, TuningHistory};
use crate::journal::{RunJournal, TrialRecord};
use glimpse_sim::{measure_with_retry, Measurer, RetryPolicy};
use glimpse_space::{Config, SearchSpace};
use glimpse_supervise::{CancelReason, CancelToken, HealthReport, Heartbeat};
use glimpse_tensor_prog::Task;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Supervision inputs for one tuning run: the cancellation token the run
/// polls at trial boundaries, optional deadlines on the simulated clock,
/// an optional heartbeat for the real-wall-clock watchdog, and a
/// deterministic cancel trigger for chaos tests.
///
/// Deadlines deliberately live *outside* [`Budget`] (and therefore outside
/// the journal header): a resumed run may carry a different deadline than
/// the original without failing header verification — the deadline bounds
/// *this invocation*, the budget bounds *the run*.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Token polled at trial boundaries; trips on signals, deadlines, the
    /// watchdog, or [`RunControl::cancel_at_trial`].
    pub cancel: CancelToken,
    /// Per-cell limit on simulated GPU seconds for this invocation.
    pub deadline_s: Option<f64>,
    /// Campaign-wide wall budget remaining when this cell started
    /// (simulated seconds); trips `WallClockExceeded` instead of
    /// `DeadlineExceeded`.
    pub wall_deadline_s: Option<f64>,
    /// Campaign-level token (signal handler, watchdog) forwarded into
    /// `cancel` at trial boundaries, so one SIGINT stops every cell while
    /// each cell still owns its own per-cell token for deadlines.
    pub interrupt: Option<CancelToken>,
    /// Beaten once per consumed trial so the watchdog sees progress.
    pub heartbeat: Option<Heartbeat>,
    /// Chaos trigger: trip the token with `Interrupted` just before trial
    /// `n` would be measured, leaving exactly `n - 1` journaled trials —
    /// the same boundary `StorageFaults::crash_at_seq(n)` kills at.
    pub cancel_at_trial: Option<u64>,
}

impl RunControl {
    /// No supervision: a fresh token nothing trips, no deadlines.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Supervision under `cancel` with no deadlines.
    #[must_use]
    pub fn with_cancel(cancel: CancelToken) -> Self {
        Self { cancel, ..Self::default() }
    }

    /// Sets the per-cell deadline (simulated seconds).
    #[must_use]
    pub fn deadline_s(mut self, deadline: Option<f64>) -> Self {
        self.deadline_s = deadline;
        self
    }

    /// Sets the remaining campaign wall budget (simulated seconds).
    #[must_use]
    pub fn wall_deadline_s(mut self, deadline: Option<f64>) -> Self {
        self.wall_deadline_s = deadline;
        self
    }

    /// Forwards a campaign-level token (signals, watchdog) into the cell.
    #[must_use]
    pub fn interrupted_by(mut self, interrupt: CancelToken) -> Self {
        self.interrupt = Some(interrupt);
        self
    }

    /// Attaches a watchdog heartbeat.
    #[must_use]
    pub fn heartbeat(mut self, heartbeat: Heartbeat) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// Arms the deterministic cancel trigger at trial boundary `n`.
    #[must_use]
    pub fn cancel_at_trial(mut self, n: u64) -> Self {
        self.cancel_at_trial = Some(n);
        self
    }
}

/// Everything a tuner needs for one run on one (GPU, task) pair.
#[derive(Debug)]
pub struct TuneContext<'a> {
    /// The task being tuned (identity + occurrence weight).
    pub task: &'a Task,
    /// The task's configuration space.
    pub space: &'a SearchSpace,
    /// Measurement channel to the target GPU.
    pub measurer: &'a mut Measurer,
    /// Stopping criteria.
    pub budget: Budget,
    /// Seed for the tuner's own randomness.
    pub seed: u64,
    /// Retry policy applied to faulted measurements.
    pub retry: RetryPolicy,
    history: TuningHistory,
    visited: BTreeSet<Vec<usize>>,
    gpu_seconds_at_start: f64,
    explorer_steps: usize,
    retried_attempts: usize,
    best_trajectory: Vec<f64>,
    control: RunControl,
    journal: Option<&'a mut RunJournal>,
    replay: VecDeque<TrialRecord>,
    // While replaying a recorded prefix, the measurer sits at the run's
    // *starting* state so the resumed timeline matches the original; this
    // carries the clock value as of the last replayed trial.
    replay_clock: Option<f64>,
}

impl<'a> TuneContext<'a> {
    /// Opens a tuning run.
    #[must_use]
    pub fn new(task: &'a Task, space: &'a SearchSpace, measurer: &'a mut Measurer, budget: Budget, seed: u64) -> Self {
        let gpu = measurer.gpu().name.clone();
        let gpu_seconds_at_start = measurer.elapsed_gpu_seconds();
        let history = TuningHistory::new(&gpu, &task.id.model, task.id.index, task.template);
        Self {
            task,
            space,
            measurer,
            budget,
            seed,
            retry: RetryPolicy::default(),
            history,
            visited: BTreeSet::new(),
            gpu_seconds_at_start,
            explorer_steps: 0,
            retried_attempts: 0,
            best_trajectory: Vec::new(),
            control: RunControl::none(),
            journal: None,
            replay: VecDeque::new(),
            replay_clock: None,
        }
    }

    /// Replaces the retry policy applied to faulted measurements.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches supervision: the run polls `control.cancel` at every trial
    /// boundary and trips it itself when a deadline expires.
    #[must_use]
    pub fn with_control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// A handle to the run's cancellation token (shared state; cloning is
    /// cheap). Tuners hand this to cancellable explorer fan-outs such as
    /// `anneal_cancellable` so an SA round in flight stops promptly.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.control.cancel.clone()
    }

    /// Attaches a crash-safe journal: every trial is appended to the WAL
    /// before the tuner consumes it, and a journal failure (injected crash,
    /// torn write, IO error) poisons the run into fail-stop exhaustion.
    #[must_use]
    pub fn with_journal(mut self, journal: &'a mut RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Queues a recovered journal prefix to be served instead of live
    /// measurements. The measurer must be restored to the run's *starting*
    /// state; it is fast-forwarded to the last record's post-state when the
    /// queue drains. Each served record is verified against the tuner's
    /// requested configuration — a mismatch poisons the journal
    /// (determinism contract violation).
    #[must_use]
    pub fn with_replay(mut self, records: Vec<TrialRecord>) -> Self {
        self.replay = records.into();
        self
    }

    /// The journal so far.
    #[must_use]
    pub fn history(&self) -> &TuningHistory {
        &self.history
    }

    /// Simulated GPU seconds consumed by this run.
    #[must_use]
    pub fn gpu_seconds(&self) -> f64 {
        let now = self.replay_clock.unwrap_or_else(|| self.measurer.elapsed_gpu_seconds());
        now - self.gpu_seconds_at_start
    }

    /// Whether the run should stop (cancellation or an expired deadline,
    /// budget bounds, plateau convergence, the device having died
    /// permanently — there is nothing left to measure on a dead channel —
    /// or the journal having been poisoned by a write failure: fail-stop
    /// rather than run unjournaled).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.check_deadlines();
        self.control.cancel.is_cancelled()
            || self
                .budget
                .exhausted(self.history.len(), self.gpu_seconds(), self.history.best_gflops())
            || self.budget.plateaued(&self.best_trajectory)
            || self.measurer.is_device_dead()
            || self.journal.as_ref().is_some_and(|j| j.poisoned())
    }

    /// Trips the token when the campaign interrupt fired or a
    /// simulated-clock deadline has expired. The interrupt is forwarded
    /// first (a signal beats a deadline), then the per-cell deadline, so
    /// when both deadlines are blown the cell reports `DeadlineExceeded`
    /// (first cancel wins).
    fn check_deadlines(&self) {
        if let Some(reason) = self.control.interrupt.as_ref().and_then(CancelToken::reason) {
            self.control.cancel.cancel(reason);
        }
        let elapsed = self.gpu_seconds();
        if self.control.deadline_s.is_some_and(|d| elapsed >= d) {
            self.control.cancel.cancel(CancelReason::DeadlineExceeded);
        }
        if self.control.wall_deadline_s.is_some_and(|d| elapsed >= d) {
            self.control.cancel.cancel(CancelReason::WallClockExceeded);
        }
    }

    /// Measurements still allowed by the budget's count cap.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.budget.remaining_measurements(self.history.len())
    }

    /// Records explorer work (SA chain updates, acquisition evaluations) —
    /// the "search steps" metric of Fig. 6.
    pub fn add_explorer_steps(&mut self, steps: usize) {
        self.explorer_steps += steps;
    }

    /// Whether a configuration was already measured in this run.
    #[must_use]
    pub fn seen(&self, config: &Config) -> bool {
        self.visited.contains(config.indices())
    }

    /// Measures one configuration (respecting the budget), returning its
    /// throughput if it was valid. Duplicate configurations are measured
    /// again only if `config` was never seen (callers should pre-filter
    /// with [`TuneContext::seen`] to save budget).
    pub fn measure(&mut self, config: &Config) -> Option<f64> {
        // The chaos trigger fires *before* trial n is journaled, leaving
        // exactly n-1 records — the same boundary crash_at_seq(n) kills at.
        if self.control.cancel_at_trial.is_some_and(|n| self.history.len() as u64 + 1 >= n) {
            self.control.cancel.cancel(CancelReason::Interrupted);
        }
        if self.exhausted() {
            return None;
        }
        self.visited.insert(config.indices().to_vec());
        if let Some(record) = self.next_replayed(config) {
            return self.consume(record.trial);
        }
        if !self.replay.is_empty() {
            // Replay divergence: the journal is poisoned; fail-stop.
            return None;
        }
        let retried = measure_with_retry(self.measurer, self.space, config, &self.retry);
        self.retried_attempts += retried.attempts.saturating_sub(1) as usize;
        let trial = Trial::from_measure(&retried.result);
        if !self.journal_live(&trial) {
            return None;
        }
        self.consume(trial)
    }

    /// Folds an externally measured trial into this run's journal without
    /// re-measuring (the measurer's clock already advanced when the trial
    /// was taken — e.g. by a portfolio member sharing this measurer).
    pub fn absorb(&mut self, trial: Trial) {
        self.visited.insert(trial.config.indices().to_vec());
        if let Some(record) = self.next_replayed(&trial.config) {
            let _ = self.consume(record.trial);
            return;
        }
        if !self.replay.is_empty() || !self.journal_live(&trial) {
            return;
        }
        let _ = self.consume(trial);
    }

    /// Serves the next replayed record, verifying the tuner asked for the
    /// configuration the journal recorded. On divergence, poisons the
    /// journal and drops the rest of the queue.
    fn next_replayed(&mut self, config: &Config) -> Option<TrialRecord> {
        let record = self.replay.pop_front()?;
        if record.trial.config != *config {
            if let Some(journal) = self.journal.as_mut() {
                journal.poison_divergence(self.history.len() as u64 + 1);
            }
            self.replay.clear();
            self.replay_clock = None;
            return None;
        }
        self.replay_clock = Some(record.post.clock_s);
        if self.replay.is_empty() {
            // End of the recorded prefix: fast-forward the measurer to the
            // last recorded post-state and go live.
            self.measurer.restore_state(&record.post);
            self.replay_clock = None;
        }
        Some(record)
    }

    /// Appends a live trial to the journal (no-op without one). Returns
    /// `false` when the append failed — the trial must not be consumed.
    fn journal_live(&mut self, trial: &Trial) -> bool {
        let Some(journal) = self.journal.as_mut() else {
            return true;
        };
        let record = TrialRecord {
            trial: trial.clone(),
            post: self.measurer.state(),
        };
        journal.append_trial(&record)
    }

    /// Pushes a trial into the run's history and trajectory bookkeeping.
    fn consume(&mut self, trial: Trial) -> Option<f64> {
        if let Some(heartbeat) = &self.control.heartbeat {
            heartbeat.beat();
        }
        let gflops = trial.gflops;
        self.history.push(trial);
        let best = self.best_trajectory.last().copied().unwrap_or(0.0).max(gflops.unwrap_or(0.0));
        self.best_trajectory.push(best);
        gflops
    }

    /// Measures a batch, stopping early if the budget runs out mid-batch.
    pub fn measure_batch(&mut self, configs: &[Config]) -> Vec<Option<f64>> {
        configs.iter().map(|c| self.measure(c)).collect()
    }

    /// Consumes the context into the final outcome.
    #[must_use]
    pub fn finish(self, tuner: &str) -> TuningOutcome {
        let gpu_seconds = self.gpu_seconds();
        TuningOutcome {
            tuner: tuner.to_owned(),
            best_gflops: self.history.best_gflops(),
            best_config: self.history.best_config().cloned(),
            measurements: self.history.len(),
            invalid_measurements: self.history.invalid_count(),
            faulted_measurements: self.history.fault_count(),
            explorer_steps: self.explorer_steps,
            retried_attempts: self.retried_attempts,
            gpu_seconds,
            surrogate: None,
            health: None,
            history: self.history,
        }
    }
}

/// Result of one tuning run, with the metrics the paper's figures compare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Name of the tuner that produced this outcome.
    pub tuner: String,
    /// Best measured throughput (GFLOPS).
    pub best_gflops: f64,
    /// Best configuration, if any measurement succeeded.
    pub best_config: Option<Config>,
    /// Total hardware measurements.
    pub measurements: usize,
    /// Invalid (failed) measurements among them — Fig. 7's numerator.
    pub invalid_measurements: usize,
    /// Measurements lost to injected infrastructure faults (timeouts,
    /// launch failures, device loss) after retries were exhausted.
    pub faulted_measurements: usize,
    /// Explorer steps (Markov-chain updates / acquisition evaluations) —
    /// Fig. 6's metric.
    pub explorer_steps: usize,
    /// Extra measurement attempts spent on fault retries (total attempts
    /// minus one per measurement). Counted per invocation: a replayed
    /// journal prefix contributes zero, since retries are folded into the
    /// recorded trial.
    pub retried_attempts: usize,
    /// Simulated GPU seconds — Table 2's "GPU hours" contribution.
    pub gpu_seconds: f64,
    /// Surrogate lifecycle + featurization-cache diagnostics, for tuners
    /// that train a cost model (None for random/grid). Derived state: a
    /// replayed or resumed campaign reproduces the same counters.
    #[serde(default)]
    pub surrogate: Option<SurrogateLifecycle>,
    /// Component-health resolution the tuner ran under (None for tuners
    /// without learned components, and for outcomes recorded before health
    /// tracking existed). Derived at run construction from artifact
    /// integrity, so a resumed run reproduces the same report.
    #[serde(default)]
    pub health: Option<HealthReport>,
    /// The full measurement journal.
    pub history: TuningHistory,
}

impl TuningOutcome {
    /// Fraction of measurements that were invalid, over the fault-free
    /// population (a faulted measurement reveals nothing about the space).
    #[must_use]
    pub fn invalid_fraction(&self) -> f64 {
        let population = self.measurements.saturating_sub(self.faulted_measurements);
        if population == 0 {
            0.0
        } else {
            self.invalid_measurements as f64 / population as f64
        }
    }
}

/// A tensor-program auto-tuner (Algorithm 1's outer loop).
pub trait Tuner {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Runs the tuning loop until the context's budget is exhausted.
    fn tune(&mut self, ctx: TuneContext<'_>) -> TuningOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (glimpse_tensor_prog::Task, SearchSpace, Measurer) {
        let model = models::alexnet();
        let task = model.tasks()[2].clone();
        let space = templates::space_for_task(&task);
        let measurer = Measurer::new(database::find("Titan Xp").unwrap().clone(), 3);
        (task, space, measurer)
    }

    #[test]
    fn budget_stops_measurement() {
        let (task, space, mut measurer) = fixture();
        let mut ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(5), 1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let c = space.sample_uniform(&mut rng);
            ctx.measure(&c);
        }
        assert_eq!(ctx.history().len(), 5);
        assert!(ctx.exhausted());
    }

    #[test]
    fn outcome_metrics_are_consistent() {
        let (task, space, mut measurer) = fixture();
        let mut ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(10), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let c = space.sample_uniform(&mut rng);
            ctx.measure(&c);
        }
        ctx.add_explorer_steps(42);
        let outcome = ctx.finish("test");
        assert_eq!(outcome.measurements, 10);
        assert_eq!(outcome.explorer_steps, 42);
        assert!(outcome.gpu_seconds > 0.0);
        assert_eq!(outcome.history.len(), 10);
        assert!(outcome.invalid_fraction() >= 0.0 && outcome.invalid_fraction() <= 1.0);
    }

    #[test]
    fn seen_tracks_visited_configs() {
        let (task, space, mut measurer) = fixture();
        let mut ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(10), 1);
        let mut rng = StdRng::seed_from_u64(3);
        let c = space.sample_uniform(&mut rng);
        assert!(!ctx.seen(&c));
        ctx.measure(&c);
        assert!(ctx.seen(&c));
    }

    #[test]
    fn deadline_trips_the_cell_token_at_a_trial_boundary() {
        let (task, space, mut measurer) = fixture();
        let control = RunControl::none().deadline_s(Some(0.0));
        let cancel = control.cancel.clone();
        let ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(100), 1).with_control(control);
        assert!(ctx.exhausted(), "a zero deadline exhausts the run immediately");
        assert_eq!(cancel.reason(), Some(CancelReason::DeadlineExceeded));
        let outcome = ctx.finish("test");
        assert_eq!(outcome.measurements, 0);
    }

    #[test]
    fn campaign_interrupt_forwards_into_the_cell_token() {
        let (task, space, mut measurer) = fixture();
        let interrupt = CancelToken::new();
        let control = RunControl::none().interrupted_by(interrupt.clone());
        let cell = control.cancel.clone();
        let mut ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(10), 1).with_control(control);
        let mut rng = StdRng::seed_from_u64(5);
        let c = space.sample_uniform(&mut rng);
        ctx.measure(&c);
        assert!(!ctx.exhausted());
        interrupt.cancel(CancelReason::Interrupted);
        assert!(ctx.exhausted(), "the forwarded interrupt must stop the cell");
        assert_eq!(cell.reason(), Some(CancelReason::Interrupted));
        assert_eq!(ctx.history().len(), 1, "cancellation lands on the trial boundary");
    }

    #[test]
    fn interrupt_beats_a_blown_deadline() {
        let (task, space, mut measurer) = fixture();
        let interrupt = CancelToken::new();
        interrupt.cancel(CancelReason::Stalled);
        let control = RunControl::none().deadline_s(Some(0.0)).interrupted_by(interrupt);
        let cell = control.cancel.clone();
        let ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(10), 1).with_control(control);
        assert!(ctx.exhausted());
        assert_eq!(cell.reason(), Some(CancelReason::Stalled));
    }

    #[test]
    fn quality_target_short_circuits() {
        let (task, space, mut measurer) = fixture();
        // Any valid measurement exceeds 0.001 GFLOPS, so one valid sample ends it.
        let mut ctx = TuneContext::new(&task, &space, &mut measurer, Budget::measurements(1000).with_target(0.001), 1);
        let mut rng = StdRng::seed_from_u64(4);
        while !ctx.exhausted() {
            let c = space.sample_uniform(&mut rng);
            ctx.measure(&c);
        }
        assert!(ctx.history().len() < 1000);
    }
}
