//! Cross-round featurization cache for the tuning hot loop.
//!
//! A config's feature vector is a pure function of `(space, config)` — it
//! never changes over a campaign — yet the pre-cache tuners recomputed it
//! from the factorization lattice on every surrogate fit *and* every
//! batch prediction. [`FeatureCache`] memoizes rows behind the space's
//! [`flat_index`](glimpse_space::SearchSpace::flat_index) bijection so each
//! config is featurized exactly once per campaign, however many times the
//! fit/predict/acquisition paths revisit it.
//!
//! Rows are shared as `Arc<[f64]>`: a hit hands back a pointer clone, and
//! the GBT training/prediction APIs accept `AsRef<[f64]>` rows, so cached
//! features flow into [`glimpse_mlkit::gbt::Gbt::fit`] without copying the
//! matrix.
//!
//! **Determinism contract:** the cache is *derived state* — a memo of a
//! pure function keyed by a `BTreeMap` (D2) — so it is never journaled and
//! never influences results, only their cost. Replayed and resumed runs
//! issue the same lookups in the same order, which also makes the hit/miss
//! counters reproducible. The per-step SA proposal stream is deliberately
//! *not* routed through the cache: those configs are rarely revisited, so
//! caching them would grow memory without paying for the lock traffic.

use glimpse_mlkit::parallel::{parallel_map, Threads};
use glimpse_space::{Config, SearchSpace};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Minimum batch size before miss featurization fans out across workers
/// (same threshold the cost model used before the cache existed).
const PARALLEL_FEATURIZE_ROWS: usize = 64;

pub(crate) fn featurize_threads(rows: usize) -> Threads {
    if rows >= PARALLEL_FEATURIZE_ROWS {
        Threads::AUTO
    } else {
        Threads::fixed(1)
    }
}

/// Hit/miss counters and current size of a [`FeatureCache`], surfaced in
/// tuning diagnostics and the throughput harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to featurize.
    pub misses: u64,
    /// Distinct configs currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Deterministic memo of `space.features(config)` keyed by the space's
/// mixed-radix config index. See the module docs for the contract.
#[derive(Debug, Default)]
pub struct FeatureCache {
    rows: Mutex<BTreeMap<u128, Arc<[f64]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FeatureCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The feature row of `config`, featurizing on first sight.
    #[must_use]
    pub fn row(&self, space: &SearchSpace, config: &Config) -> Arc<[f64]> {
        let key = space.flat_index(config);
        if let Some(row) = self.rows.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(row);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh: Arc<[f64]> = Arc::from(space.features(config));
        Arc::clone(self.rows.lock().entry(key).or_insert(fresh))
    }

    /// Feature rows for a batch of configs, in input order. Hits are
    /// resolved under one lock acquisition; misses are featurized in
    /// parallel (outside the lock) and inserted afterwards, so the values
    /// are identical to mapping [`FeatureCache::row`] in order.
    // lint:boundary(PANICS) every slot is either filled on the hit pass or listed in miss_at and filled on the miss pass
    #[must_use]
    pub fn rows_batch<'a, I>(&self, space: &SearchSpace, configs: I) -> Vec<Arc<[f64]>>
    where
        I: IntoIterator<Item = &'a Config>,
    {
        let configs: Vec<&Config> = configs.into_iter().collect();
        let keys: Vec<u128> = configs.iter().map(|c| space.flat_index(c)).collect();
        let mut out: Vec<Option<Arc<[f64]>>> = vec![None; configs.len()];
        let mut miss_at: Vec<usize> = Vec::new();
        {
            let rows = self.rows.lock();
            for (i, key) in keys.iter().enumerate() {
                match rows.get(key) {
                    Some(row) => out[i] = Some(Arc::clone(row)),
                    None => miss_at.push(i),
                }
            }
        }
        self.hits.fetch_add((configs.len() - miss_at.len()) as u64, Ordering::Relaxed);
        self.misses.fetch_add(miss_at.len() as u64, Ordering::Relaxed);
        if !miss_at.is_empty() {
            let fresh = parallel_map(featurize_threads(miss_at.len()), &miss_at, |_, &i| -> Arc<[f64]> {
                Arc::from(space.features(configs[i]))
            });
            let mut rows = self.rows.lock();
            for (&i, row) in miss_at.iter().zip(fresh) {
                // A duplicate config within the batch featurizes twice but
                // keeps the first inserted row; the values are identical.
                out[i] = Some(Arc::clone(rows.entry(keys[i]).or_insert(row)));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot is a hit or a resolved miss"))
            .collect()
    }

    /// Current hit/miss counters and entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.rows.lock().len(),
        }
    }

    /// Drops every cached row and zeroes the counters (used when a model
    /// is re-targeted at a fresh campaign).
    pub fn clear(&self) {
        self.rows.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Clone for FeatureCache {
    /// Clones the memo (pointer clones per row) and the counters, so a
    /// cloned model keeps the same diagnostics trajectory.
    fn clone(&self) -> Self {
        Self {
            rows: Mutex::new(self.rows.lock().clone()),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_space::templates;
    use glimpse_tensor_prog::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        let model = models::alexnet();
        templates::space_for_task(&model.tasks()[2])
    }

    #[test]
    fn row_matches_fresh_featurization() {
        let s = space();
        let cache = FeatureCache::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = s.sample_uniform(&mut rng);
            assert_eq!(cache.row(&s, &c).as_ref(), s.features(&c).as_slice());
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_row() {
        let s = space();
        let cache = FeatureCache::new();
        let mut rng = StdRng::seed_from_u64(2);
        let c = s.sample_uniform(&mut rng);
        let first = cache.row(&s, &c);
        let second = cache.row(&s, &c);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the cached row");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2 - 1, 1));
    }

    #[test]
    fn batch_matches_scalar_lookups_and_counts_once_per_config() {
        let s = space();
        let cache = FeatureCache::new();
        let reference = FeatureCache::new();
        let mut rng = StdRng::seed_from_u64(3);
        let configs: Vec<Config> = (0..150).map(|_| s.sample_uniform(&mut rng)).collect();
        let batch = cache.rows_batch(&s, &configs);
        for (c, row) in configs.iter().zip(&batch) {
            assert_eq!(row.as_ref(), reference.row(&s, c).as_ref());
        }
        // Second pass over the same configs: all hits.
        let before = cache.stats();
        let again = cache.rows_batch(&s, &configs);
        let after = cache.stats();
        assert_eq!(after.misses, before.misses, "revisit must not featurize");
        assert_eq!(after.hits, before.hits + configs.len() as u64);
        for (a, b) in batch.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn clear_resets_rows_and_counters() {
        let s = space();
        let cache = FeatureCache::new();
        let mut rng = StdRng::seed_from_u64(4);
        let configs: Vec<Config> = (0..10).map(|_| s.sample_uniform(&mut rng)).collect();
        let _ = cache.rows_batch(&s, &configs);
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn clone_preserves_rows_and_counters() {
        let s = space();
        let cache = FeatureCache::new();
        let mut rng = StdRng::seed_from_u64(5);
        let c = s.sample_uniform(&mut rng);
        let _ = cache.row(&s, &c);
        let cloned = cache.clone();
        assert_eq!(cloned.stats(), cache.stats());
        let row = cloned.row(&s, &c);
        assert_eq!(row.as_ref(), s.features(&c).as_slice());
        assert_eq!(cloned.stats().hits, cache.stats().hits + 1);
    }

    #[test]
    fn hit_rate_is_zero_when_never_queried() {
        let stats = FeatureCache::new().stats();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.lookups(), 0);
    }
}
