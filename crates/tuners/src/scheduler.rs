//! Cross-task budget scheduling: where should the next measurement go?
//!
//! A model is many tasks (Table 1), and a fixed compilation budget can be
//! spent uniformly or *where it buys the most end-to-end latency* — the
//! idea behind dynamic tensor-program optimization (DynaTune, ICLR '21,
//! which the paper cites among the hardware-agnostic line). The scheduler
//! here allocates measurement rounds across a model's tasks by expected
//! latency gain, estimated from each task's remaining FLOPs at its current
//! best throughput versus a diminishing-returns projection.

use serde::{Deserialize, Serialize};

/// Scheduling policy across tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Equal rounds per task (what the paper's per-layer budgets do).
    RoundRobin,
    /// Rounds go to the task with the largest projected latency gain.
    LatencyGain,
}

/// State of one schedulable task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskState {
    /// Total weighted FLOPs of the task (occurrences folded in).
    pub weighted_flops: f64,
    /// Best throughput measured so far (GFLOPS), 0 before any success.
    pub best_gflops: f64,
    /// Rounds already granted.
    pub rounds: usize,
    /// Whether the task's tuner reported convergence.
    pub converged: bool,
}

impl TaskState {
    /// Current latency contribution in milliseconds (∞FLOPs at 0 GFLOPS is
    /// capped by a conservative fallback, as in deployment).
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        const FALLBACK_GFLOPS: f64 = 50.0;
        self.weighted_flops / self.best_gflops.max(FALLBACK_GFLOPS) / 1e6
    }

    /// Projected latency if one more round improves throughput by the
    /// diminishing-returns factor `1 + g/(rounds+1)`.
    fn projected_latency_ms(&self, gain_per_round: f64) -> f64 {
        let improved = self.best_gflops.max(50.0) * (1.0 + gain_per_round / (self.rounds as f64 + 1.0));
        self.weighted_flops / improved / 1e6
    }
}

/// The budget scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskScheduler {
    policy: SchedulePolicy,
    tasks: Vec<TaskState>,
    /// First-round optimistic relative gain (decays per round).
    gain_per_round: f64,
}

impl TaskScheduler {
    /// Creates a scheduler over tasks given their weighted FLOPs.
    ///
    /// # Panics
    ///
    /// Panics if `weighted_flops` is empty.
    #[must_use]
    pub fn new(policy: SchedulePolicy, weighted_flops: &[f64]) -> Self {
        assert!(!weighted_flops.is_empty(), "need at least one task");
        let tasks = weighted_flops
            .iter()
            .map(|&f| TaskState {
                weighted_flops: f,
                best_gflops: 0.0,
                rounds: 0,
                converged: false,
            })
            .collect();
        Self {
            policy,
            tasks,
            gain_per_round: 0.5,
        }
    }

    /// Task states, in construction order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskState] {
        &self.tasks
    }

    /// Picks the task that should receive the next measurement round, or
    /// `None` when every task has converged.
    #[must_use]
    pub fn next_task(&self) -> Option<usize> {
        let open: Vec<usize> = (0..self.tasks.len()).filter(|&i| !self.tasks[i].converged).collect();
        if open.is_empty() {
            return None;
        }
        match self.policy {
            SchedulePolicy::RoundRobin => open.iter().copied().min_by_key(|&i| self.tasks[i].rounds),
            SchedulePolicy::LatencyGain => open.iter().copied().max_by(|&a, &b| {
                let ga = self.tasks[a].latency_ms() - self.tasks[a].projected_latency_ms(self.gain_per_round);
                let gb = self.tasks[b].latency_ms() - self.tasks[b].projected_latency_ms(self.gain_per_round);
                ga.total_cmp(&gb)
            }),
        }
    }

    /// Reports a round's result for a task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn report(&mut self, task: usize, best_gflops: f64, converged: bool) {
        let state = &mut self.tasks[task];
        state.rounds += 1;
        state.best_gflops = state.best_gflops.max(best_gflops);
        state.converged = converged;
    }

    /// Current end-to-end latency estimate (ms) across all tasks.
    #[must_use]
    pub fn total_latency_ms(&self) -> f64 {
        self.tasks.iter().map(TaskState::latency_ms).sum()
    }

    /// Whether every task has converged.
    #[must_use]
    pub fn done(&self) -> bool {
        self.tasks.iter().all(|t| t.converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flops() -> Vec<f64> {
        vec![4.0e9, 1.0e9, 0.1e9] // one heavy task, one medium, one light
    }

    #[test]
    fn round_robin_balances_rounds() {
        let mut s = TaskScheduler::new(SchedulePolicy::RoundRobin, &flops());
        for _ in 0..9 {
            let i = s.next_task().unwrap();
            s.report(i, 500.0, false);
        }
        assert!(s.tasks().iter().all(|t| t.rounds == 3), "{:?}", s.tasks());
    }

    #[test]
    fn latency_gain_prioritizes_the_heavy_task() {
        let mut s = TaskScheduler::new(SchedulePolicy::LatencyGain, &flops());
        for _ in 0..9 {
            let i = s.next_task().unwrap();
            s.report(i, 500.0, false);
        }
        assert!(s.tasks()[0].rounds > s.tasks()[2].rounds, "{:?}", s.tasks());
    }

    #[test]
    fn converged_tasks_get_no_more_rounds() {
        let mut s = TaskScheduler::new(SchedulePolicy::RoundRobin, &flops());
        s.report(0, 900.0, true);
        for _ in 0..6 {
            let i = s.next_task().unwrap();
            assert_ne!(i, 0);
            s.report(i, 500.0, false);
        }
    }

    #[test]
    fn all_converged_means_done() {
        let mut s = TaskScheduler::new(SchedulePolicy::LatencyGain, &flops());
        for i in 0..3 {
            s.report(i, 700.0, true);
        }
        assert!(s.done());
        assert_eq!(s.next_task(), None);
    }

    #[test]
    fn total_latency_tracks_improvements() {
        let mut s = TaskScheduler::new(SchedulePolicy::LatencyGain, &flops());
        let before = s.total_latency_ms();
        s.report(0, 2000.0, false);
        let after = s.total_latency_ms();
        assert!(after < before);
    }

    #[test]
    fn latency_uses_fallback_before_any_success() {
        let s = TaskScheduler::new(SchedulePolicy::RoundRobin, &[1.0e9]);
        // 1 GFLOP at the 50 GFLOPS fallback = 20 ms.
        assert!((s.total_latency_ms() - 20.0).abs() < 1e-9);
    }
}
