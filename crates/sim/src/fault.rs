//! Seeded fault injection for the measurement harness.
//!
//! Real tuning fleets fail in ways the simulator's clean oracle never does:
//! kernels hang until the RPC timeout fires, launches fail spuriously,
//! thermal events inflate latencies, devices drop off the network for a few
//! requests, and occasionally a board dies for good. A [`FaultPlan`]
//! describes per-device rates for each of those events; a [`FaultInjector`]
//! turns the plan into a deterministic per-device event stream, so a tuning
//! run under faults is exactly reproducible from `(seed, plan)`.
//!
//! Fault draws use their own RNG stream, separate from the measurement
//! noise stream — injecting faults perturbs *which* measurements fail, not
//! the noise of the ones that succeed.

use crate::pool::PoolPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
// Per-device override table; only point lookups by device name, never
// iterated, so hash-order randomization is inert here (D2 does not apply).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// Simulated seconds a hung kernel burns before the harness kills it: the
/// full RPC timeout window is charged to the GPU clock.
pub const TIMEOUT_WINDOW_S: f64 = 10.0;
/// Simulated seconds lost detecting a spurious launch failure.
pub const LAUNCH_FAILURE_COST_S: f64 = 1.2;
/// Simulated seconds lost on an RPC round trip to a device that is
/// (transiently or permanently) unreachable.
pub const DEVICE_LOSS_COST_S: f64 = 2.0;
/// Latency multiplier applied by a noise spike (thermal event / co-tenant).
pub const NOISE_SPIKE_FACTOR: f64 = 3.0;
/// Consecutive requests a transient device loss swallows.
pub const TRANSIENT_LOSS_SPAN: u32 = 3;

/// The failure a measurement came back with (instead of a latency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MeasureFault {
    /// The kernel hung; the harness killed it after the timeout window.
    /// The whole window is charged to the simulated clock.
    Timeout {
        /// Simulated seconds burned waiting.
        timeout_s: f64,
    },
    /// The launch failed spuriously (driver hiccup, ECC retry, OOM race).
    LaunchFailure,
    /// The device did not answer the RPC; it may come back.
    DeviceLost,
    /// The device is permanently gone.
    DeviceDead,
}

impl MeasureFault {
    /// Whether retrying the same measurement can possibly succeed.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        !matches!(self, MeasureFault::DeviceDead)
    }

    /// Simulated seconds this fault costs when it fires.
    #[must_use]
    pub fn cost_s(&self) -> f64 {
        match self {
            MeasureFault::Timeout { timeout_s } => *timeout_s,
            MeasureFault::LaunchFailure => LAUNCH_FAILURE_COST_S,
            MeasureFault::DeviceLost | MeasureFault::DeviceDead => DEVICE_LOSS_COST_S,
        }
    }

    /// Stable machine-readable label (journals, CLI summaries).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MeasureFault::Timeout { .. } => "timeout",
            MeasureFault::LaunchFailure => "launch_failure",
            MeasureFault::DeviceLost => "device_lost",
            MeasureFault::DeviceDead => "device_dead",
        }
    }
}

impl std::fmt::Display for MeasureFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureFault::Timeout { timeout_s } => write!(f, "kernel timeout after {timeout_s:.1}s"),
            MeasureFault::LaunchFailure => write!(f, "spurious launch failure"),
            MeasureFault::DeviceLost => write!(f, "device unreachable (transient)"),
            MeasureFault::DeviceDead => write!(f, "device dead"),
        }
    }
}

/// Per-measurement fault probabilities. All rates are independent draws in
/// `[0, 1]`; `device_dead` is a per-measurement hazard, so even small rates
/// kill a device quickly over a long run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRates {
    /// P(kernel hangs until the timeout window expires).
    pub timeout: f64,
    /// P(spurious launch failure).
    pub launch_failure: f64,
    /// P(latency spikes by [`NOISE_SPIKE_FACTOR`] — still a valid sample).
    pub noise_spike: f64,
    /// P(device drops off for [`TRANSIENT_LOSS_SPAN`] requests).
    pub device_lost: f64,
    /// P(device dies permanently).
    pub device_dead: f64,
}

impl FaultRates {
    /// Rates that never fire.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault can fire under these rates.
    #[must_use]
    pub fn any(&self) -> bool {
        self.timeout > 0.0 || self.launch_failure > 0.0 || self.noise_spike > 0.0 || self.device_lost > 0.0 || self.device_dead > 0.0
    }

    /// Checks every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns the offending field name when a rate is outside `[0, 1]`
    /// or not finite.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("timeout", self.timeout),
            ("launch", self.launch_failure),
            ("noise", self.noise_spike),
            ("lost", self.device_lost),
            ("dead", self.device_dead),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(format!("fault rate `{name}` must be in [0, 1], got {value}"));
            }
        }
        Ok(())
    }
}

/// Storage-layer fault injection for the crash-safety chaos tier: crash the
/// process (fail-stop) or tear a write at a chosen journal sequence number.
/// Unlike [`FaultRates`] these are deterministic trigger points, not
/// probabilities — chaos tests sweep the sequence number to kill a run at
/// every trial boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageFaults {
    /// Simulate a process crash immediately *before* appending the journal
    /// record with this sequence number.
    pub crash_at_seq: Option<u64>,
    /// Tear the append of the record with this sequence number (write only
    /// a prefix of the frame), then behave as a crash.
    pub torn_at_seq: Option<u64>,
    /// How many bytes of the torn frame reach the file (clamped to the
    /// frame length).
    pub torn_keep_bytes: Option<u64>,
}

impl StorageFaults {
    /// No storage faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any storage fault is armed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.crash_at_seq.is_some() || self.torn_at_seq.is_some()
    }
}

/// Artifact-file fault injection for the degraded-mode chaos tier: damage
/// a saved artifact (bundle, corpus, log, calibration, spec-DB snapshot)
/// *before* a run loads it, so tests can assert the run completes on a
/// fallback ladder rung instead of aborting. Like [`StorageFaults`] these
/// are deterministic triggers, not probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ArtifactFaults {
    /// XOR `0xFF` into the byte at this offset (clamped to the last byte),
    /// producing a checksum mismatch on an enveloped artifact.
    pub corrupt_at_byte: Option<u64>,
    /// Keep only this many leading bytes of the file.
    pub truncate_at_byte: Option<u64>,
    /// Rewrite the envelope header's schema version to `v+1`, leaving the
    /// payload and its CRC intact — pure schema drift. A file without a
    /// parseable envelope header is left untouched.
    pub version_bump: bool,
    /// Remove the file entirely.
    pub delete: bool,
}

impl ArtifactFaults {
    /// No artifact faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any artifact fault is armed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.corrupt_at_byte.is_some() || self.truncate_at_byte.is_some() || self.version_bump || self.delete
    }

    /// Applies the armed faults to the file at `path` (atomic replace, so
    /// the damaged artifact is itself a well-formed file on disk). A
    /// missing file is a no-op — there is nothing left to damage — and
    /// `delete` wins over the byte-level faults.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from reading or rewriting the file.
    pub fn apply(&self, path: &std::path::Path) -> std::io::Result<()> {
        if !self.any() {
            return Ok(());
        }
        if self.delete {
            return match std::fs::remove_file(path) {
                Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
                _ => Ok(()),
            };
        }
        let mut bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        if let Some(keep) = self.truncate_at_byte {
            bytes.truncate(usize::try_from(keep).unwrap_or(usize::MAX).min(bytes.len()));
        }
        if let Some(at) = self.corrupt_at_byte {
            if !bytes.is_empty() {
                let at = usize::try_from(at).unwrap_or(usize::MAX).min(bytes.len() - 1);
                bytes[at] ^= 0xFF;
            }
        }
        if self.version_bump {
            if let Ok(header) = glimpse_durable::envelope::sniff(&bytes) {
                let old = format!("{} {} v{} ", glimpse_durable::envelope::MAGIC, header.kind, header.schema);
                let new = format!("{} {} v{} ", glimpse_durable::envelope::MAGIC, header.kind, header.schema + 1);
                if bytes.starts_with(old.as_bytes()) {
                    let mut bumped = new.into_bytes();
                    bumped.extend_from_slice(&bytes[old.len()..]);
                    bytes = bumped;
                }
            }
        }
        glimpse_durable::atomic_write(path, &bytes)
    }
}

/// A reproducible description of which faults a fleet suffers: one seed,
/// fleet-wide default rates, and optional per-device overrides.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every injector derived from this plan.
    pub seed: u64,
    /// Rates for devices without an override.
    pub default_rates: FaultRates,
    /// Per-device overrides keyed by device name.
    #[allow(clippy::disallowed_types)]
    pub per_device: HashMap<String, FaultRates>,
    /// Storage-layer (journal) fault triggers; `None` means none armed.
    /// Kept optional so journals written before this field existed still
    /// deserialize.
    pub storage: Option<StorageFaults>,
    /// Pool health-management thresholds; `None` means
    /// [`PoolPolicy::default`]. Optional for the same backward-compatibility
    /// reason as `storage`.
    pub pool: Option<PoolPolicy>,
    /// Artifact-file fault triggers; `None` means none armed. Optional for
    /// the same backward-compatibility reason as `storage`.
    pub artifact: Option<ArtifactFaults>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Uniform rates across the fleet.
    #[must_use]
    #[allow(clippy::disallowed_types)]
    pub fn uniform(seed: u64, rates: FaultRates) -> Self {
        Self {
            seed,
            default_rates: rates,
            per_device: HashMap::new(),
            storage: None,
            pool: None,
            artifact: None,
        }
    }

    /// Arms the artifact-fault triggers (chaos tests; see
    /// [`ArtifactFaults`]).
    #[must_use]
    pub fn with_artifact_faults(mut self, artifact: ArtifactFaults) -> Self {
        self.artifact = Some(artifact);
        self
    }

    /// Artifact-fault triggers in effect (defaults to none armed).
    #[must_use]
    pub fn artifact_faults(&self) -> ArtifactFaults {
        self.artifact.unwrap_or_default()
    }

    /// Arms the storage-fault triggers (chaos tests; see [`StorageFaults`]).
    #[must_use]
    pub fn with_storage_faults(mut self, storage: StorageFaults) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Storage-fault triggers in effect (defaults to none armed).
    #[must_use]
    pub fn storage_faults(&self) -> StorageFaults {
        self.storage.unwrap_or_default()
    }

    /// Sets the pool health-management thresholds (see [`PoolPolicy`]).
    #[must_use]
    pub fn with_pool_policy(mut self, policy: PoolPolicy) -> Self {
        self.pool = Some(policy);
        self
    }

    /// Pool thresholds in effect (defaults to [`PoolPolicy::default`]).
    #[must_use]
    pub fn pool_policy(&self) -> PoolPolicy {
        self.pool.unwrap_or_default()
    }

    /// Marks `device` as dead from the first measurement on.
    #[must_use]
    pub fn with_dead_device(mut self, device: &str) -> Self {
        self.per_device.insert(
            device.to_string(),
            FaultRates {
                device_dead: 1.0,
                ..FaultRates::none()
            },
        );
        self
    }

    /// Overrides the rates for one device.
    #[must_use]
    pub fn with_device_rates(mut self, device: &str, rates: FaultRates) -> Self {
        self.per_device.insert(device.to_string(), rates);
        self
    }

    /// Rates in effect for `device`.
    #[must_use]
    pub fn rates_for(&self, device: &str) -> FaultRates {
        self.per_device.get(device).copied().unwrap_or(self.default_rates)
    }

    /// Whether this plan can inject anything anywhere.
    #[must_use]
    pub fn any(&self) -> bool {
        self.default_rates.any() || self.per_device.values().any(FaultRates::any)
    }

    /// Parses a CLI rate spec like `timeout=0.1,launch=0.05,noise=0.1,lost=0.02,dead=0.01`
    /// into a uniform plan with seed 0 (set the seed separately). Storage
    /// triggers use integer sequence numbers: `crash_at=12`, `torn_at=12`,
    /// `torn_keep=7`. Artifact triggers damage a saved artifact before it
    /// is loaded: `artifact_corrupt_at=<byte>`, `artifact_truncate_at=<byte>`,
    /// `artifact_version_bump=1`, `artifact_delete=1`.
    /// A key of the form `kind@device` overrides one rate
    /// for one device — `dead@RTX 2080 Ti=1.0` kills that board while the
    /// rest of the fleet keeps the fleet-wide rates. Per-device overrides
    /// start from the fleet-wide rates regardless of where they appear in
    /// the spec, so `dead@X=1.0,timeout=0.1` and `timeout=0.1,dead@X=1.0`
    /// mean the same plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad key, value, or range.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut rates = FaultRates::none();
        let mut storage = StorageFaults::none();
        let mut artifact = ArtifactFaults::none();
        // (device, kind, rate), applied after the fleet-wide pass so the
        // override base never depends on key order within the spec.
        let mut overrides: Vec<(String, String, f64)> = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec `{part}`: expected key=rate"))?;
            let key = key.trim();
            let value = value.trim();
            if let "crash_at" | "torn_at" | "torn_keep" = key {
                let seq: u64 = value
                    .parse()
                    .map_err(|_| format!("bad value `{value}` for `{key}`: expected a sequence number"))?;
                match key {
                    "crash_at" => storage.crash_at_seq = Some(seq),
                    "torn_at" => storage.torn_at_seq = Some(seq),
                    _ => storage.torn_keep_bytes = Some(seq),
                }
                continue;
            }
            if let "artifact_corrupt_at" | "artifact_truncate_at" | "artifact_version_bump" | "artifact_delete" = key {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("bad value `{value}` for `{key}`: expected an integer"))?;
                match key {
                    "artifact_corrupt_at" => artifact.corrupt_at_byte = Some(n),
                    "artifact_truncate_at" => artifact.truncate_at_byte = Some(n),
                    "artifact_version_bump" => artifact.version_bump = n != 0,
                    _ => artifact.delete = n != 0,
                }
                continue;
            }
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("bad fault rate `{value}` for `{key}`: expected a number"))?;
            if let Some((kind, device)) = key.split_once('@') {
                let device = device.trim();
                if device.is_empty() {
                    return Err(format!("bad fault key `{key}`: expected kind@device"));
                }
                overrides.push((device.to_string(), kind.trim().to_string(), rate));
            } else {
                Self::set_rate(&mut rates, key, rate)?;
            }
        }
        rates.validate()?;
        let mut plan = Self::uniform(0, rates);
        for (device, kind, rate) in overrides {
            let mut device_rates = plan.rates_for(&device);
            Self::set_rate(&mut device_rates, &kind, rate)?;
            device_rates.validate()?;
            plan.per_device.insert(device, device_rates);
        }
        if storage.any() || storage.torn_keep_bytes.is_some() {
            plan.storage = Some(storage);
        }
        if artifact.any() {
            plan.artifact = Some(artifact);
        }
        Ok(plan)
    }

    fn set_rate(rates: &mut FaultRates, kind: &str, rate: f64) -> Result<(), String> {
        match kind {
            "timeout" => rates.timeout = rate,
            "launch" | "launch_failure" => rates.launch_failure = rate,
            "noise" | "noise_spike" => rates.noise_spike = rate,
            "lost" | "device_lost" => rates.device_lost = rate,
            "dead" | "device_dead" => rates.device_dead = rate,
            other => {
                let expected = "timeout, launch, noise, lost, dead, crash_at, torn_at, torn_keep, or artifact_*";
                return Err(format!("unknown fault kind `{other}` (expected {expected})"));
            }
        }
        Ok(())
    }
}

/// What the injector decided for one measurement attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Fail the measurement with this fault.
    Fail(MeasureFault),
    /// Let it run, but multiply the true latency by this factor.
    Inflate(f64),
}

/// Checkpointable snapshot of a [`FaultInjector`] mid-stream. The rates are
/// *not* part of the snapshot — they come from the plan the injector is
/// rebuilt from, so a resumed run must use the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorState {
    /// Raw RNG state of the fault stream.
    pub rng: [u64; 4],
    /// Whether the device had died permanently.
    pub dead: bool,
    /// Requests left in the current transient-loss window.
    pub lost_remaining: u32,
    /// Fault events injected so far.
    pub injected: u64,
}

/// The deterministic per-device fault stream derived from a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: FaultRates,
    rng: StdRng,
    dead: bool,
    lost_remaining: u32,
    injected: u64,
}

impl FaultInjector {
    /// Builds the injector for `device` under `plan`. The stream depends
    /// only on `(plan.seed, device)`, so fleets replay bit-identically.
    #[must_use]
    pub fn for_device(plan: &FaultPlan, device: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in device.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rates: plan.rates_for(device),
            rng: StdRng::seed_from_u64(plan.seed ^ hash),
            dead: false,
            lost_remaining: 0,
            injected: 0,
        }
    }

    /// Whether the device has died permanently.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Number of fault events injected so far (noise spikes included).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Draws the fate of the next measurement attempt. `None` means the
    /// measurement proceeds untouched.
    pub fn next_event(&mut self) -> Option<FaultEvent> {
        if self.dead {
            self.injected += 1;
            return Some(FaultEvent::Fail(MeasureFault::DeviceDead));
        }
        if self.lost_remaining > 0 {
            self.lost_remaining -= 1;
            self.injected += 1;
            return Some(FaultEvent::Fail(MeasureFault::DeviceLost));
        }
        if !self.rates.any() {
            return None;
        }
        // One draw per hazard keeps each rate independently interpretable
        // and the stream length per attempt fixed (replay stability).
        let dead = self.rates.device_dead > 0.0 && self.rng.gen_bool(self.rates.device_dead);
        let lost = self.rates.device_lost > 0.0 && self.rng.gen_bool(self.rates.device_lost);
        let timeout = self.rates.timeout > 0.0 && self.rng.gen_bool(self.rates.timeout);
        let launch = self.rates.launch_failure > 0.0 && self.rng.gen_bool(self.rates.launch_failure);
        let spike = self.rates.noise_spike > 0.0 && self.rng.gen_bool(self.rates.noise_spike);
        if dead {
            self.dead = true;
            self.injected += 1;
            return Some(FaultEvent::Fail(MeasureFault::DeviceDead));
        }
        if lost {
            self.lost_remaining = TRANSIENT_LOSS_SPAN - 1;
            self.injected += 1;
            return Some(FaultEvent::Fail(MeasureFault::DeviceLost));
        }
        if timeout {
            self.injected += 1;
            return Some(FaultEvent::Fail(MeasureFault::Timeout {
                timeout_s: TIMEOUT_WINDOW_S,
            }));
        }
        if launch {
            self.injected += 1;
            return Some(FaultEvent::Fail(MeasureFault::LaunchFailure));
        }
        if spike {
            self.injected += 1;
            return Some(FaultEvent::Inflate(NOISE_SPIKE_FACTOR));
        }
        None
    }

    /// Clears the transient-loss window and revives a dead device. Only
    /// the pool's re-admission probe uses this; faults keep firing per the
    /// rates afterwards.
    pub fn revive(&mut self) {
        self.dead = false;
        self.lost_remaining = 0;
    }

    /// Snapshots the injector for a checkpoint (see [`InjectorState`]).
    #[must_use]
    pub fn state(&self) -> InjectorState {
        InjectorState {
            rng: self.rng.state(),
            dead: self.dead,
            lost_remaining: self.lost_remaining,
            injected: self.injected,
        }
    }

    /// Restores a snapshot taken by [`FaultInjector::state`], resuming the
    /// fault stream bit-identically. The rates stay as constructed.
    pub fn restore_state(&mut self, state: &InjectorState) {
        self.rng = StdRng::from_state(state.rng);
        self.dead = state.dead;
        self.lost_remaining = state.lost_remaining;
        self.injected = state.injected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultRates {
        FaultRates {
            timeout: 0.1,
            launch_failure: 0.1,
            noise_spike: 0.1,
            device_lost: 0.05,
            device_dead: 0.01,
        }
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse("timeout=0.1, launch=0.05,noise=0.2,lost=0.02,dead=0.01").unwrap();
        assert_eq!(plan.default_rates.timeout, 0.1);
        assert_eq!(plan.default_rates.launch_failure, 0.05);
        assert_eq!(plan.default_rates.noise_spike, 0.2);
        assert_eq!(plan.default_rates.device_lost, 0.02);
        assert_eq!(plan.default_rates.device_dead, 0.01);
        assert!(plan.any());
    }

    #[test]
    fn parse_accepts_artifact_triggers() {
        let plan = FaultPlan::parse("artifact_corrupt_at=40,artifact_truncate_at=9").unwrap();
        let faults = plan.artifact_faults();
        assert_eq!(faults.corrupt_at_byte, Some(40));
        assert_eq!(faults.truncate_at_byte, Some(9));
        assert!(!faults.version_bump && !faults.delete);

        let plan = FaultPlan::parse("artifact_version_bump=1,artifact_delete=1,timeout=0.1").unwrap();
        assert!(plan.artifact_faults().version_bump);
        assert!(plan.artifact_faults().delete);
        assert_eq!(plan.default_rates.timeout, 0.1);

        assert_eq!(FaultPlan::parse("timeout=0.1").unwrap().artifact, None);
        assert!(FaultPlan::parse("artifact_corrupt_at=soon").is_err());
    }

    #[test]
    fn artifact_faults_damage_files_as_armed() {
        let dir = std::env::temp_dir().join(format!("glimpse-artifact-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        let spec = glimpse_durable::envelope::EnvelopeSpec {
            kind: "spec-db",
            schema: 1,
        };
        let seal = |p: &std::path::Path| glimpse_durable::envelope::write_envelope(p, spec, b"payload-bytes").unwrap();

        seal(&path);
        let clean = std::fs::read(&path).unwrap();
        ArtifactFaults {
            corrupt_at_byte: Some(clean.len() as u64 - 1),
            ..ArtifactFaults::none()
        }
        .apply(&path)
        .unwrap();
        let corrupted = std::fs::read(&path).unwrap();
        assert_eq!(corrupted.len(), clean.len());
        assert_ne!(corrupted, clean);

        seal(&path);
        ArtifactFaults {
            truncate_at_byte: Some(10),
            ..ArtifactFaults::none()
        }
        .apply(&path)
        .unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 10);

        seal(&path);
        ArtifactFaults {
            version_bump: true,
            ..ArtifactFaults::none()
        }
        .apply(&path)
        .unwrap();
        let bumped = glimpse_durable::envelope::sniff(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(bumped.schema, 2);
        // Payload CRC stays valid: the damage is pure schema drift.
        assert!(matches!(
            glimpse_durable::envelope::verify_file(&path, spec),
            glimpse_durable::envelope::Integrity::SchemaDrift { .. }
        ));

        seal(&path);
        ArtifactFaults {
            delete: true,
            ..ArtifactFaults::none()
        }
        .apply(&path)
        .unwrap();
        assert!(!path.exists());
        // Re-applying to the now-missing file is a no-op, not an error.
        ArtifactFaults {
            delete: true,
            corrupt_at_byte: Some(0),
            ..ArtifactFaults::none()
        }
        .apply(&path)
        .unwrap();
        ArtifactFaults {
            corrupt_at_byte: Some(0),
            ..ArtifactFaults::none()
        }
        .apply(&path)
        .unwrap();
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("timeout").is_err());
        assert!(FaultPlan::parse("warp=0.1").is_err());
        assert!(FaultPlan::parse("timeout=eleven").is_err());
        assert!(FaultPlan::parse("timeout=1.5").is_err());
        assert!(FaultPlan::parse("timeout=-0.1").is_err());
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut injector = FaultInjector::for_device(&FaultPlan::none(), "Titan Xp");
        for _ in 0..10_000 {
            assert_eq!(injector.next_event(), None);
        }
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn streams_replay_bit_identically() {
        let plan = FaultPlan::uniform(42, chaotic());
        let mut a = FaultInjector::for_device(&plan, "Titan Xp");
        let mut b = FaultInjector::for_device(&plan, "Titan Xp");
        for _ in 0..5_000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn streams_differ_across_devices_and_seeds() {
        let plan = FaultPlan::uniform(42, chaotic());
        let other_seed = FaultPlan::uniform(43, chaotic());
        let mut a = FaultInjector::for_device(&plan, "Titan Xp");
        let mut b = FaultInjector::for_device(&plan, "RTX 3090");
        let mut c = FaultInjector::for_device(&other_seed, "Titan Xp");
        let events_a: Vec<_> = (0..500).map(|_| a.next_event()).collect();
        let events_b: Vec<_> = (0..500).map(|_| b.next_event()).collect();
        let events_c: Vec<_> = (0..500).map(|_| c.next_event()).collect();
        assert_ne!(events_a, events_b);
        assert_ne!(events_a, events_c);
    }

    #[test]
    fn dead_stays_dead_until_revived() {
        let plan = FaultPlan::none().with_dead_device("Titan Xp");
        let mut injector = FaultInjector::for_device(&plan, "Titan Xp");
        for _ in 0..10 {
            assert_eq!(injector.next_event(), Some(FaultEvent::Fail(MeasureFault::DeviceDead)));
        }
        assert!(injector.is_dead());
        injector.revive();
        // dead rate is 1.0, so the next draw kills it again immediately.
        assert_eq!(injector.next_event(), Some(FaultEvent::Fail(MeasureFault::DeviceDead)));
    }

    #[test]
    fn transient_loss_swallows_a_window_then_recovers() {
        let rates = FaultRates {
            device_lost: 1.0,
            ..FaultRates::none()
        };
        let mut injector = FaultInjector::for_device(&FaultPlan::uniform(7, rates), "GTX 1080");
        for _ in 0..TRANSIENT_LOSS_SPAN {
            assert_eq!(injector.next_event(), Some(FaultEvent::Fail(MeasureFault::DeviceLost)));
        }
        assert!(!injector.is_dead(), "transient loss must not kill the device");
    }

    #[test]
    fn rates_control_frequency_roughly() {
        let rates = FaultRates {
            timeout: 0.2,
            ..FaultRates::none()
        };
        let mut injector = FaultInjector::for_device(&FaultPlan::uniform(3, rates), "RTX 3090");
        let n = 20_000;
        let fired = (0..n).filter(|_| injector.next_event().is_some()).count();
        let rate = fired as f64 / f64::from(n);
        assert!((rate - 0.2).abs() < 0.02, "timeout rate {rate} far from 0.2");
    }

    #[test]
    fn fault_costs_and_retryability() {
        assert!(MeasureFault::Timeout {
            timeout_s: TIMEOUT_WINDOW_S
        }
        .is_retryable());
        assert!(MeasureFault::LaunchFailure.is_retryable());
        assert!(MeasureFault::DeviceLost.is_retryable());
        assert!(!MeasureFault::DeviceDead.is_retryable());
        assert_eq!(MeasureFault::Timeout { timeout_s: 10.0 }.cost_s(), 10.0);
        assert!(MeasureFault::LaunchFailure.cost_s() > 0.0);
    }

    #[test]
    fn plan_serde_roundtrip() {
        let plan = FaultPlan::uniform(9, chaotic()).with_dead_device("GTX 1080");
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let armed = plan.with_storage_faults(StorageFaults {
            crash_at_seq: Some(12),
            torn_at_seq: None,
            torn_keep_bytes: Some(7),
        });
        let json = serde_json::to_string(&armed).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, armed);
    }

    #[test]
    fn parse_accepts_per_device_overrides() {
        let plan = FaultPlan::parse("timeout=0.1, dead@RTX 2080 Ti=1.0, noise@Titan Xp=0.3").unwrap();
        // Fleet-wide rates stay on unlisted devices.
        assert_eq!(plan.rates_for("GTX 1080").timeout, 0.1);
        assert_eq!(plan.rates_for("GTX 1080").device_dead, 0.0);
        // Overrides start from the fleet-wide rates, not from zero.
        let dead = plan.rates_for("RTX 2080 Ti");
        assert_eq!(dead.device_dead, 1.0);
        assert_eq!(dead.timeout, 0.1);
        let noisy = plan.rates_for("Titan Xp");
        assert_eq!(noisy.noise_spike, 0.3);
        assert_eq!(noisy.timeout, 0.1);
    }

    #[test]
    fn per_device_overrides_are_order_independent() {
        let a = FaultPlan::parse("dead@RTX 2080 Ti=1.0,timeout=0.1").unwrap();
        let b = FaultPlan::parse("timeout=0.1,dead@RTX 2080 Ti=1.0").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rates_for("RTX 2080 Ti").timeout, 0.1);
    }

    #[test]
    fn parse_rejects_bad_per_device_overrides() {
        assert!(FaultPlan::parse("warp@Titan Xp=0.1").is_err());
        assert!(FaultPlan::parse("dead@=1.0").is_err());
        assert!(FaultPlan::parse("dead@Titan Xp=1.5").is_err());
    }

    #[test]
    fn pool_policy_rides_the_plan() {
        let plan = FaultPlan::none();
        assert!(plan.pool.is_none());
        assert_eq!(plan.pool_policy(), crate::pool::PoolPolicy::default());
        let custom = crate::pool::PoolPolicy {
            quarantine_threshold: 1,
            probe_limit: 2,
            probe_cost_s: 0.25,
        };
        let plan = plan.with_pool_policy(custom);
        assert_eq!(plan.pool_policy(), custom);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_accepts_storage_trigger_keys() {
        let plan = FaultPlan::parse("timeout=0.1,crash_at=12").unwrap();
        assert_eq!(plan.storage_faults().crash_at_seq, Some(12));
        assert_eq!(plan.storage_faults().torn_at_seq, None);
        let plan = FaultPlan::parse("torn_at=5,torn_keep=9").unwrap();
        assert_eq!(plan.storage_faults().torn_at_seq, Some(5));
        assert_eq!(plan.storage_faults().torn_keep_bytes, Some(9));
        assert!(FaultPlan::parse("crash_at=soon").is_err());
        assert!(FaultPlan::parse("").unwrap().storage.is_none());
    }

    #[test]
    fn injector_state_resumes_the_fault_stream_bit_identically() {
        let plan = FaultPlan::uniform(42, chaotic());
        let mut live = FaultInjector::for_device(&plan, "Titan Xp");
        for _ in 0..137 {
            let _ = live.next_event();
        }
        let state = live.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: InjectorState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut resumed = FaultInjector::for_device(&plan, "Titan Xp");
        resumed.restore_state(&back);
        for _ in 0..500 {
            assert_eq!(resumed.next_event(), live.next_event());
        }
        assert_eq!(resumed.injected(), live.injected());
    }
}
