//! Calibration utilities: estimating the measurement channel's noise and
//! overhead constants from observed traces.
//!
//! Real auto-tuning pipelines estimate their measurement noise to size
//! repeat counts and early-stopping thresholds. These estimators recover
//! the simulator's own constants from the outside — used by tests to pin
//! the contract (σ ≈ 3 %, log-normal) and available to downstream users
//! who swap in their own measurement channels.

use crate::measure::{Measurer, Outcome};
use glimpse_durable::envelope::{self, EnvelopeSpec, Integrity};
use glimpse_space::{Config, SearchSpace};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Noise statistics of repeated measurements of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseEstimate {
    /// Sample mean latency (seconds).
    pub mean_latency_s: f64,
    /// Relative standard deviation of the log-latencies (the log-normal σ,
    /// shrunk by the measurer's internal repeat-averaging).
    pub log_sigma: f64,
    /// Number of repeats used.
    pub samples: usize,
}

/// Measures `config` `n` times and estimates the channel's noise.
///
/// # Panics
///
/// Panics if `n < 2` or the configuration is invalid on this channel.
#[must_use]
pub fn estimate_noise(measurer: &mut Measurer, space: &SearchSpace, config: &Config, n: usize) -> NoiseEstimate {
    assert!(n >= 2, "need at least two repeats");
    let mut logs = Vec::with_capacity(n);
    let mut sum = 0.0;
    for _ in 0..n {
        match measurer.measure(space, config).outcome {
            Outcome::Valid { latency_s, .. } => {
                logs.push(latency_s.ln());
                sum += latency_s;
            }
            Outcome::Invalid(reason) => panic!("cannot calibrate on an invalid configuration ({reason})"),
            // Calibration wants clean repeats; skip the lost sample rather
            // than fold a timeout window into the noise estimate.
            Outcome::Faulted(_) => continue,
        }
    }
    let kept = logs.len();
    assert!(kept >= 2, "faults left fewer than two clean samples");
    let mean_log = logs.iter().sum::<f64>() / kept as f64;
    let var = logs.iter().map(|l| (l - mean_log).powi(2)).sum::<f64>() / (kept - 1) as f64;
    NoiseEstimate {
        mean_latency_s: sum / kept as f64,
        log_sigma: var.sqrt(),
        samples: kept,
    }
}

/// Envelope identity of a persisted calibration snapshot.
pub const CALIBRATION_ENVELOPE: EnvelopeSpec = EnvelopeSpec {
    kind: "calibration",
    schema: 1,
};

/// Why a calibration snapshot failed to load (total over arbitrary bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationLoadError {
    /// The envelope did not verify (missing, truncated, checksum, drift).
    Damaged(Integrity),
    /// The envelope verified but the payload is not a noise estimate.
    Undecodable {
        /// Decoder message.
        detail: String,
    },
}

impl fmt::Display for CalibrationLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationLoadError::Damaged(verdict) => write!(f, "calibration snapshot damaged: {verdict}"),
            CalibrationLoadError::Undecodable { detail } => write!(f, "calibration snapshot undecodable: {detail}"),
        }
    }
}

impl std::error::Error for CalibrationLoadError {}

/// Persists a noise estimate inside the artifact envelope, so a campaign
/// can pin the calibration it sized its repeat counts against.
///
/// # Errors
///
/// Returns any I/O error from writing `path`.
pub fn save_estimate(path: &Path, estimate: &NoiseEstimate) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(estimate).map_err(std::io::Error::other)?;
    envelope::write_envelope(path, CALIBRATION_ENVELOPE, text.as_bytes())
}

/// Loads a noise estimate persisted by [`save_estimate`], verifying the
/// envelope first.
///
/// # Errors
///
/// [`CalibrationLoadError::Damaged`] when the envelope does not verify,
/// [`CalibrationLoadError::Undecodable`] when the payload is not a noise
/// estimate.
pub fn load_estimate(path: &Path) -> Result<NoiseEstimate, CalibrationLoadError> {
    let payload = envelope::read_envelope(path, CALIBRATION_ENVELOPE).map_err(CalibrationLoadError::Damaged)?;
    let text = std::str::from_utf8(&payload).map_err(|e| CalibrationLoadError::Undecodable { detail: e.to_string() })?;
    serde_json::from_str(text).map_err(|e| CalibrationLoadError::Undecodable { detail: e.to_string() })
}

/// Estimates the per-measurement overhead (seconds) by differencing the
/// channel clock against the measured run times.
#[must_use]
pub fn estimate_overhead(measurer: &mut Measurer, space: &SearchSpace, configs: &[Config]) -> f64 {
    let start = measurer.elapsed_gpu_seconds();
    let mut run_time = 0.0;
    let mut counted = 0usize;
    for config in configs {
        if let Outcome::Valid { latency_s, .. } = measurer.measure(space, config).outcome {
            run_time += latency_s * f64::from(crate::measure::REPEATS);
            counted += 1;
        }
    }
    if counted == 0 {
        return 0.0;
    }
    (measurer.elapsed_gpu_seconds() - start - run_time) / counted as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{NOISE_SIGMA, REPEATS, VALID_OVERHEAD_S};
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn valid_config(measurer: &Measurer, space: &SearchSpace) -> Config {
        let mut rng = StdRng::seed_from_u64(1);
        loop {
            let c = space.sample_uniform(&mut rng);
            if measurer.model().latency_s(space, &c).is_some() {
                return c;
            }
        }
    }

    #[test]
    fn recovered_sigma_matches_the_declared_channel_noise() {
        let gpu = database::find("RTX 2080 Ti").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let mut measurer = Measurer::new(gpu, 3);
        let config = valid_config(&measurer, &space);
        let estimate = estimate_noise(&mut measurer, &space, &config, 400);
        // Each reported latency averages REPEATS runs, so the observable
        // sigma is NOISE_SIGMA / sqrt(REPEATS).
        let expected = NOISE_SIGMA / f64::from(REPEATS).sqrt();
        assert!(
            (estimate.log_sigma - expected).abs() < 0.4 * expected,
            "sigma {} vs expected {expected}",
            estimate.log_sigma
        );
        assert_eq!(estimate.samples, 400);
    }

    #[test]
    fn recovered_overhead_matches_the_declared_constant() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let mut measurer = Measurer::new(gpu, 5);
        let config = valid_config(&measurer, &space);
        let configs = vec![config; 20];
        let overhead = estimate_overhead(&mut measurer, &space, &configs);
        assert!((overhead - VALID_OVERHEAD_S).abs() < 1e-6, "overhead {overhead}");
    }

    #[test]
    fn calibration_snapshot_round_trips_and_damage_is_typed() {
        let estimate = NoiseEstimate {
            mean_latency_s: 1.5e-3,
            log_sigma: 0.03,
            samples: 20,
        };
        let dir = std::env::temp_dir().join(format!("glimpse-calibration-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calibration.json");
        save_estimate(&path, &estimate).unwrap();
        assert_eq!(load_estimate(&path).unwrap(), estimate);

        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        glimpse_durable::atomic_write(&path, &bytes).unwrap();
        assert!(matches!(
            load_estimate(&path).unwrap_err(),
            CalibrationLoadError::Damaged(Integrity::ChecksumMismatch { .. })
        ));
        assert_eq!(
            load_estimate(&dir.join("absent.json")).unwrap_err(),
            CalibrationLoadError::Damaged(Integrity::Missing)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "cannot calibrate on an invalid configuration")]
    fn calibration_rejects_invalid_configs() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let mut measurer = Measurer::new(gpu, 7);
        // Find an invalid config.
        let mut rng = StdRng::seed_from_u64(2);
        let config = loop {
            let c = space.sample_uniform(&mut rng);
            if measurer.model().latency_s(&space, &c).is_none() {
                break c;
            }
        };
        let _ = estimate_noise(&mut measurer, &space, &config, 5);
    }
}
