//! Calibration utilities: estimating the measurement channel's noise and
//! overhead constants from observed traces.
//!
//! Real auto-tuning pipelines estimate their measurement noise to size
//! repeat counts and early-stopping thresholds. These estimators recover
//! the simulator's own constants from the outside — used by tests to pin
//! the contract (σ ≈ 3 %, log-normal) and available to downstream users
//! who swap in their own measurement channels.

use crate::measure::{Measurer, Outcome};
use glimpse_space::{Config, SearchSpace};

/// Noise statistics of repeated measurements of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEstimate {
    /// Sample mean latency (seconds).
    pub mean_latency_s: f64,
    /// Relative standard deviation of the log-latencies (the log-normal σ,
    /// shrunk by the measurer's internal repeat-averaging).
    pub log_sigma: f64,
    /// Number of repeats used.
    pub samples: usize,
}

/// Measures `config` `n` times and estimates the channel's noise.
///
/// # Panics
///
/// Panics if `n < 2` or the configuration is invalid on this channel.
#[must_use]
pub fn estimate_noise(measurer: &mut Measurer, space: &SearchSpace, config: &Config, n: usize) -> NoiseEstimate {
    assert!(n >= 2, "need at least two repeats");
    let mut logs = Vec::with_capacity(n);
    let mut sum = 0.0;
    for _ in 0..n {
        match measurer.measure(space, config).outcome {
            Outcome::Valid { latency_s, .. } => {
                logs.push(latency_s.ln());
                sum += latency_s;
            }
            Outcome::Invalid(reason) => panic!("cannot calibrate on an invalid configuration ({reason})"),
            // Calibration wants clean repeats; skip the lost sample rather
            // than fold a timeout window into the noise estimate.
            Outcome::Faulted(_) => continue,
        }
    }
    let kept = logs.len();
    assert!(kept >= 2, "faults left fewer than two clean samples");
    let mean_log = logs.iter().sum::<f64>() / kept as f64;
    let var = logs.iter().map(|l| (l - mean_log).powi(2)).sum::<f64>() / (kept - 1) as f64;
    NoiseEstimate {
        mean_latency_s: sum / kept as f64,
        log_sigma: var.sqrt(),
        samples: kept,
    }
}

/// Estimates the per-measurement overhead (seconds) by differencing the
/// channel clock against the measured run times.
#[must_use]
pub fn estimate_overhead(measurer: &mut Measurer, space: &SearchSpace, configs: &[Config]) -> f64 {
    let start = measurer.elapsed_gpu_seconds();
    let mut run_time = 0.0;
    let mut counted = 0usize;
    for config in configs {
        if let Outcome::Valid { latency_s, .. } = measurer.measure(space, config).outcome {
            run_time += latency_s * f64::from(crate::measure::REPEATS);
            counted += 1;
        }
    }
    if counted == 0 {
        return 0.0;
    }
    (measurer.elapsed_gpu_seconds() - start - run_time) / counted as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{NOISE_SIGMA, REPEATS, VALID_OVERHEAD_S};
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn valid_config(measurer: &Measurer, space: &SearchSpace) -> Config {
        let mut rng = StdRng::seed_from_u64(1);
        loop {
            let c = space.sample_uniform(&mut rng);
            if measurer.model().latency_s(space, &c).is_some() {
                return c;
            }
        }
    }

    #[test]
    fn recovered_sigma_matches_the_declared_channel_noise() {
        let gpu = database::find("RTX 2080 Ti").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let mut measurer = Measurer::new(gpu, 3);
        let config = valid_config(&measurer, &space);
        let estimate = estimate_noise(&mut measurer, &space, &config, 400);
        // Each reported latency averages REPEATS runs, so the observable
        // sigma is NOISE_SIGMA / sqrt(REPEATS).
        let expected = NOISE_SIGMA / f64::from(REPEATS).sqrt();
        assert!(
            (estimate.log_sigma - expected).abs() < 0.4 * expected,
            "sigma {} vs expected {expected}",
            estimate.log_sigma
        );
        assert_eq!(estimate.samples, 400);
    }

    #[test]
    fn recovered_overhead_matches_the_declared_constant() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let mut measurer = Measurer::new(gpu, 5);
        let config = valid_config(&measurer, &space);
        let configs = vec![config; 20];
        let overhead = estimate_overhead(&mut measurer, &space, &configs);
        assert!((overhead - VALID_OVERHEAD_S).abs() < 1e-6, "overhead {overhead}");
    }

    #[test]
    #[should_panic(expected = "cannot calibrate on an invalid configuration")]
    fn calibration_rejects_invalid_configs() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let mut measurer = Measurer::new(gpu, 7);
        // Find an invalid config.
        let mut rng = StdRng::seed_from_u64(2);
        let config = loop {
            let c = space.sample_uniform(&mut rng);
            if measurer.model().latency_s(&space, &c).is_none() {
                break c;
            }
        };
        let _ = estimate_noise(&mut measurer, &space, &config, 5);
    }
}
