//! Analytical GPU performance simulator.
//!
//! The paper measures candidate binaries on real GPUs over RPC; this crate is
//! that oracle's stand-in. It prices a lowered kernel
//! ([`glimpse_space::KernelShape`]) on a GPU data sheet
//! ([`glimpse_gpu_spec::GpuSpec`]) with an occupancy-aware roofline model
//! ([`model::PerfModel`]) whose efficiency terms are all derived from
//! data-sheet quantities — so *different GPUs have different optima over a
//! similar-looking space*, the property Fig. 1 of the paper demonstrates and
//! Glimpse's Blueprint exploits.
//!
//! Hard resource violations (thread/shared-memory/register limits,
//! [`validity`]) make a configuration **invalid**, reproducing the ~10 %
//! invalid-measurement rate §4.3 reports for TVM's spaces. The
//! [`measure::Measurer`] adds seeded log-normal noise and debits a simulated
//! clock per measurement, which is what the paper's "GPU hours" columns count.
//!
//! # Examples
//!
//! ```
//! use glimpse_gpu_spec::database;
//! use glimpse_sim::measure::Measurer;
//! use glimpse_space::templates;
//! use glimpse_tensor_prog::Conv2dSpec;
//! use rand::SeedableRng;
//!
//! let gpu = database::find("Titan Xp").unwrap();
//! let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
//! let mut measurer = Measurer::new(gpu.clone(), 42);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = space.sample_uniform(&mut rng);
//! let result = measurer.measure(&space, &config);
//! assert!(measurer.elapsed_gpu_seconds() > 0.0);
//! # let _ = result;
//! ```

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod fault;
pub mod measure;
pub mod model;
pub mod pool;
pub mod retry;
pub mod trace;
pub mod validity;

pub use fault::{ArtifactFaults, FaultPlan, FaultRates, InjectorState, MeasureFault, StorageFaults};
pub use measure::{MeasureResult, Measurer, MeasurerState, Outcome};
pub use model::PerfModel;
pub use pool::{DeviceError, DevicePool, DeviceStatus, PoolPolicy, PoolSummary};
pub use retry::{measure_with_retry, RetriedMeasure, RetryPolicy};
pub use validity::InvalidReason;
