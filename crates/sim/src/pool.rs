//! A fleet of simulated GPUs driven in parallel.
//!
//! The paper tunes "multiple generations of GPUs connected via RPC"
//! (§4, Table 1). [`DevicePool`] reproduces that setup: one worker thread
//! per GPU, each owning its own [`Measurer`], with results collected in
//! device order. Simulated GPU time stays per-device (the paper's GPU-hour
//! totals are per-target sums), while wall-clock time of the *harness*
//! shrinks with the fleet size.

use crate::measure::Measurer;
use glimpse_gpu_spec::GpuSpec;
use parking_lot::Mutex;

/// A set of simulated GPUs addressable by index.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<Mutex<Measurer>>,
    names: Vec<String>,
}

impl DevicePool {
    /// Creates a pool with one measurement channel per GPU. Each device's
    /// noise stream is derived from `seed` and its index.
    #[must_use]
    pub fn new(gpus: &[GpuSpec], seed: u64) -> Self {
        let devices = gpus
            .iter()
            .enumerate()
            .map(|(i, g)| Mutex::new(Measurer::new(g.clone(), seed.wrapping_add(i as u64 * 0x9E37_79B9))))
            .collect();
        let names = gpus.iter().map(|g| g.name.clone()).collect();
        Self { devices, names }
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device names in index order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Runs `job` once per device, in parallel, returning results in device
    /// order. `job` gets exclusive access to that device's [`Measurer`].
    ///
    /// # Panics
    ///
    /// Propagates panics from `job`.
    pub fn run_all<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Measurer) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = (0..self.devices.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (slot, (index, device)) in out.iter_mut().zip(self.devices.iter().enumerate()) {
                let job = &job;
                scope.spawn(move |_| {
                    let mut measurer = device.lock();
                    *slot = Some(job(index, &mut measurer));
                });
            }
        })
        .expect("device worker panicked");
        out.into_iter().map(|v| v.expect("worker filled slot")).collect()
    }

    /// Total simulated GPU seconds across all devices.
    #[must_use]
    pub fn total_gpu_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.lock().elapsed_gpu_seconds()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> DevicePool {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        DevicePool::new(&gpus, 5)
    }

    #[test]
    fn pool_has_table1_devices() {
        let p = pool();
        assert_eq!(p.len(), 4);
        assert_eq!(p.names()[0], "Titan Xp");
        assert!(!p.is_empty());
    }

    #[test]
    fn run_all_returns_in_device_order() {
        let p = pool();
        let names = p.run_all(|_, m| m.gpu().name.clone());
        assert_eq!(names, p.names());
    }

    #[test]
    fn parallel_measurements_accumulate_per_device_time() {
        let p = pool();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let counts = p.run_all(|i, m| {
            let mut rng = StdRng::seed_from_u64(i as u64);
            for _ in 0..5 {
                let c = space.sample_uniform(&mut rng);
                m.measure(&space, &c);
            }
            m.valid_count() + m.invalid_count()
        });
        assert!(counts.iter().all(|c| *c == 5));
        assert!(p.total_gpu_seconds() > 0.0);
    }

    #[test]
    fn different_devices_rank_configs_differently_sometimes() {
        // Weak sanity check of hardware-dependence through the pool API.
        let p = pool();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let bests = p.run_all(|i, m| m.oracle_best(&space, 2000, 100 + i as u64).1);
        // All four GPUs should find a decent optimum, and they should not
        // all be identical numbers.
        assert!(bests.iter().all(|b| *b > 100.0));
        let first = bests[0];
        assert!(bests.iter().any(|b| (b - first).abs() > 1.0));
    }
}
