//! A fleet of simulated GPUs driven in parallel, with per-device health.
//!
//! The paper tunes "multiple generations of GPUs connected via RPC"
//! (§4, Table 1). [`DevicePool`] reproduces that setup: one worker thread
//! per GPU, each owning its own [`Measurer`], with results collected in
//! device order. Simulated GPU time stays per-device (the paper's GPU-hour
//! totals are per-target sums), while wall-clock time of the *harness*
//! shrinks with the fleet size.
//!
//! Fleets fail, so the pool also tracks health: a device whose jobs keep
//! coming back all-faulted is **quarantined** after
//! [`PoolPolicy::quarantine_threshold`] consecutive bad rounds, quarantined
//! devices are **probed** before each round and re-admitted when the probe
//! answers, and a device whose worker panics or whose injector declares it
//! dead is retired permanently. A degraded fleet keeps running on the
//! survivors; [`DevicePool::summary`] reports who is in what state. The
//! thresholds are a [`PoolPolicy`] carried on the [`FaultPlan`], so chaos
//! experiments can tighten or loosen them per campaign.

use crate::fault::FaultPlan;
use crate::measure::Measurer;
use glimpse_gpu_spec::GpuSpec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Health-management knobs of a [`DevicePool`]. Carried on the
/// [`FaultPlan`] (`--pool-policy` on the CLI); [`PoolPolicy::default`]
/// reproduces the historical hard-coded behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolPolicy {
    /// Consecutive all-faulted rounds before a device is quarantined.
    pub quarantine_threshold: u32,
    /// Failed re-admission probes before a quarantined device is retired.
    pub probe_limit: u32,
    /// Simulated seconds one re-admission probe costs.
    pub probe_cost_s: f64,
}

impl Default for PoolPolicy {
    fn default() -> Self {
        Self {
            quarantine_threshold: 3,
            probe_limit: 5,
            probe_cost_s: 0.5,
        }
    }
}

impl PoolPolicy {
    /// Parses a CLI spec like `quarantine=3,probes=5,probe_cost=0.5`.
    /// Omitted keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad key, value, or range.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut policy = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad pool policy `{part}`: expected key=value"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "quarantine" | "quarantine_threshold" => {
                    policy.quarantine_threshold = value
                        .parse()
                        .map_err(|_| format!("bad value `{value}` for `{key}`: expected a count"))?;
                }
                "probes" | "probe_limit" => {
                    policy.probe_limit = value
                        .parse()
                        .map_err(|_| format!("bad value `{value}` for `{key}`: expected a count"))?;
                }
                "probe_cost" | "probe_cost_s" => {
                    policy.probe_cost_s = value
                        .parse()
                        .map_err(|_| format!("bad value `{value}` for `{key}`: expected seconds"))?;
                }
                other => {
                    return Err(format!(
                        "unknown pool policy key `{other}` (expected quarantine, probes, probe_cost)"
                    ))
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    /// Checks the thresholds are usable: counts at least 1, probe cost a
    /// finite non-negative number of seconds.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.quarantine_threshold == 0 {
            return Err("pool policy `quarantine` must be at least 1".to_string());
        }
        if self.probe_limit == 0 {
            return Err("pool policy `probes` must be at least 1".to_string());
        }
        if !self.probe_cost_s.is_finite() || self.probe_cost_s < 0.0 {
            return Err(format!(
                "pool policy `probe_cost` must be finite and >= 0, got {}",
                self.probe_cost_s
            ));
        }
        Ok(())
    }
}

/// Lifecycle state of one pooled device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceStatus {
    /// Serving jobs.
    Healthy,
    /// Sidelined after consecutive failures; probed before each round.
    Quarantined,
    /// Permanently retired (worker panic, dead injector, or probes
    /// exhausted). Never probed again.
    Dead,
}

/// Why a device produced no result for a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device is quarantined and its probe failed again.
    Quarantined,
    /// The device is permanently dead.
    Dead,
    /// The worker panicked while running the job; the payload's message.
    Panicked(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Quarantined => write!(f, "device quarantined"),
            DeviceError::Dead => write!(f, "device dead"),
            DeviceError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

#[derive(Debug, Clone)]
struct HealthRecord {
    status: DeviceStatus,
    consecutive_failures: u32,
    failed_probes: u32,
    quarantines: u64,
    last_error: Option<String>,
}

impl HealthRecord {
    fn new() -> Self {
        Self {
            status: DeviceStatus::Healthy,
            consecutive_failures: 0,
            failed_probes: 0,
            quarantines: 0,
            last_error: None,
        }
    }
}

/// Per-device health and accounting snapshot.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Device name.
    pub name: String,
    /// Current lifecycle state.
    pub status: DeviceStatus,
    /// Valid measurements served.
    pub valid: u64,
    /// Invalid (resource-violation) measurements served.
    pub invalid: u64,
    /// Measurements lost to faults.
    pub faults: u64,
    /// Simulated GPU seconds consumed.
    pub gpu_seconds: f64,
    /// Times this device entered quarantine.
    pub quarantines: u64,
    /// Most recent failure description, if any.
    pub last_error: Option<String>,
}

/// Fleet-wide health snapshot from [`DevicePool::summary`].
#[derive(Debug, Clone)]
pub struct PoolSummary {
    /// One report per device, in device order.
    pub devices: Vec<DeviceReport>,
}

impl PoolSummary {
    /// Names of devices currently able to serve jobs.
    #[must_use]
    pub fn healthy(&self) -> Vec<&str> {
        self.devices
            .iter()
            .filter(|d| d.status == DeviceStatus::Healthy)
            .map(|d| d.name.as_str())
            .collect()
    }

    /// Names of quarantined devices.
    #[must_use]
    pub fn quarantined(&self) -> Vec<&str> {
        self.devices
            .iter()
            .filter(|d| d.status == DeviceStatus::Quarantined)
            .map(|d| d.name.as_str())
            .collect()
    }

    /// Names of permanently retired devices.
    #[must_use]
    pub fn dead(&self) -> Vec<&str> {
        self.devices
            .iter()
            .filter(|d| d.status == DeviceStatus::Dead)
            .map(|d| d.name.as_str())
            .collect()
    }
}

impl std::fmt::Display for PoolSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.devices {
            writeln!(
                f,
                "{:<16} {:?}: {} valid, {} invalid, {} faults, {:.1} GPU-s{}",
                d.name,
                d.status,
                d.valid,
                d.invalid,
                d.faults,
                d.gpu_seconds,
                d.last_error.as_deref().map(|e| format!(" (last error: {e})")).unwrap_or_default()
            )?;
        }
        Ok(())
    }
}

/// A set of simulated GPUs addressable by index.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<Mutex<Measurer>>,
    health: Vec<Mutex<HealthRecord>>,
    names: Vec<String>,
    policy: PoolPolicy,
}

impl DevicePool {
    /// Creates a pool with one measurement channel per GPU. Each device's
    /// noise stream is derived from `seed` and its index.
    #[must_use]
    pub fn new(gpus: &[GpuSpec], seed: u64) -> Self {
        Self::with_faults(gpus, seed, &FaultPlan::none())
    }

    /// Creates a pool whose devices inject faults per `plan`.
    #[must_use]
    pub fn with_faults(gpus: &[GpuSpec], seed: u64, plan: &FaultPlan) -> Self {
        let devices = gpus
            .iter()
            .enumerate()
            .map(|(i, g)| Mutex::new(Measurer::with_faults(g.clone(), seed.wrapping_add(i as u64 * 0x9E37_79B9), plan)))
            .collect();
        let health = gpus.iter().map(|_| Mutex::new(HealthRecord::new())).collect();
        let names = gpus.iter().map(|g| g.name.clone()).collect();
        Self {
            devices,
            health,
            names,
            policy: plan.pool_policy(),
        }
    }

    /// Health-management thresholds in effect for this pool.
    #[must_use]
    pub fn policy(&self) -> PoolPolicy {
        self.policy
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device names in index order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Runs `job` once per serviceable device, in parallel, returning
    /// per-device results in device order. `job` gets exclusive access to
    /// that device's [`Measurer`].
    ///
    /// A worker panic is caught and reported as
    /// [`DeviceError::Panicked`] for that device only — the rest of the
    /// fleet completes normally and the panicking device is retired.
    /// Quarantined devices are probed first and re-admitted when the probe
    /// answers; dead devices are skipped outright.
    pub fn run_all<T, F>(&self, job: F) -> Vec<Result<T, DeviceError>>
    where
        T: Send,
        F: Fn(usize, &mut Measurer) -> T + Sync,
    {
        let mut out: Vec<Option<Result<T, DeviceError>>> = (0..self.devices.len()).map(|_| None).collect();
        let policy = self.policy;
        let result = crossbeam::thread::scope(|scope| {
            for (slot, (index, device)) in out.iter_mut().zip(self.devices.iter().enumerate()) {
                let job = &job;
                let health = &self.health[index];
                scope.spawn(move |_| {
                    *slot = Some(Self::run_one(job, index, device, health, policy));
                });
            }
        });
        debug_assert!(result.is_ok(), "worker panics are caught per device");
        out.into_iter()
            .map(|v| v.unwrap_or(Err(DeviceError::Panicked("worker never reported".to_string()))))
            .collect()
    }

    /// Runs `job` on the single device at `index`, with the same admission
    /// control, probing, and health accounting as [`DevicePool::run_all`].
    /// This is the reassignment path: a supervisor moving an orphaned cell
    /// onto a surviving device addresses that device directly.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn run_on<T, F>(&self, index: usize, job: F) -> Result<T, DeviceError>
    where
        F: Fn(usize, &mut Measurer) -> T + Sync,
    {
        Self::run_one(&job, index, &self.devices[index], &self.health[index], self.policy)
    }

    fn run_one<T, F>(
        job: &F,
        index: usize,
        device: &Mutex<Measurer>,
        health: &Mutex<HealthRecord>,
        policy: PoolPolicy,
    ) -> Result<T, DeviceError>
    where
        F: Fn(usize, &mut Measurer) -> T + Sync,
    {
        // Admission control under the health lock.
        {
            let mut record = health.lock();
            match record.status {
                DeviceStatus::Dead => return Err(DeviceError::Dead),
                DeviceStatus::Quarantined => {
                    let mut measurer = device.lock();
                    if Self::probe(&mut measurer, policy) {
                        record.status = DeviceStatus::Healthy;
                        record.consecutive_failures = 0;
                        record.failed_probes = 0;
                    } else {
                        record.failed_probes += 1;
                        if record.failed_probes >= policy.probe_limit {
                            record.status = DeviceStatus::Dead;
                            record.last_error = Some("probe limit exhausted".to_string());
                            return Err(DeviceError::Dead);
                        }
                        return Err(DeviceError::Quarantined);
                    }
                }
                DeviceStatus::Healthy => {}
            }
        }

        let mut measurer = device.lock();
        let valid_before = measurer.valid_count();
        let faults_before = measurer.fault_count();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index, &mut measurer)));
        match outcome {
            Ok(value) => {
                let served = measurer.valid_count() > valid_before;
                let faulted = measurer.fault_count() > faults_before;
                let device_dead = measurer.is_device_dead();
                drop(measurer);
                let mut record = health.lock();
                if device_dead {
                    // The injector declared permanent death mid-job;
                    // quarantine rather than retire — the probe path gets
                    // to confirm (and a revived device can return).
                    record.status = DeviceStatus::Quarantined;
                    record.quarantines += 1;
                    record.consecutive_failures = 0;
                    record.last_error = Some("device reported dead".to_string());
                } else if faulted && !served {
                    record.consecutive_failures += 1;
                    record.last_error = Some("all measurements faulted".to_string());
                    if record.consecutive_failures >= policy.quarantine_threshold {
                        record.status = DeviceStatus::Quarantined;
                        record.quarantines += 1;
                        record.consecutive_failures = 0;
                    }
                } else if served {
                    record.consecutive_failures = 0;
                }
                Ok(value)
            }
            Err(payload) => {
                drop(measurer);
                let msg = panic_message(&payload);
                let mut record = health.lock();
                record.status = DeviceStatus::Dead;
                record.last_error = Some(msg.clone());
                Err(DeviceError::Panicked(msg))
            }
        }
    }

    /// One re-admission probe: charges [`PoolPolicy::probe_cost_s`] and
    /// asks the device for a sign of life.
    fn probe(measurer: &mut Measurer, policy: PoolPolicy) -> bool {
        measurer.charge(policy.probe_cost_s);
        if measurer.is_device_dead() {
            return false;
        }
        true
    }

    /// Current health of one device.
    #[must_use]
    pub fn status(&self, index: usize) -> DeviceStatus {
        self.health[index].lock().status
    }

    /// Fleet-wide health and accounting snapshot.
    #[must_use]
    pub fn summary(&self) -> PoolSummary {
        let devices = self
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let measurer = self.devices[i].lock();
                let record = self.health[i].lock();
                DeviceReport {
                    name: name.clone(),
                    status: record.status,
                    valid: measurer.valid_count(),
                    invalid: measurer.invalid_count(),
                    faults: measurer.fault_count(),
                    gpu_seconds: measurer.elapsed_gpu_seconds(),
                    quarantines: record.quarantines,
                    last_error: record.last_error.clone(),
                }
            })
            .collect();
        PoolSummary { devices }
    }

    /// Total simulated GPU seconds across all devices.
    #[must_use]
    pub fn total_gpu_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.lock().elapsed_gpu_seconds()).sum()
    }
}

fn panic_message(payload: &crossbeam::thread::Payload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRates};
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> DevicePool {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        DevicePool::new(&gpus, 5)
    }

    fn space() -> glimpse_space::SearchSpace {
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
    }

    /// A config that actually runs on `gpu` (kernel faults only strike
    /// configurations that pass the resource check).
    fn valid_config_for(gpu: &glimpse_gpu_spec::GpuSpec, space: &glimpse_space::SearchSpace) -> glimpse_space::Config {
        let model = crate::model::PerfModel::new(gpu.clone());
        let mut rng = StdRng::seed_from_u64(13);
        loop {
            let c = space.sample_uniform(&mut rng);
            if model.latency_s(space, &c).is_some() {
                return c;
            }
        }
    }

    #[test]
    fn pool_has_table1_devices() {
        let p = pool();
        assert_eq!(p.len(), 4);
        assert_eq!(p.names()[0], "Titan Xp");
        assert!(!p.is_empty());
    }

    #[test]
    fn run_all_returns_in_device_order() {
        let p = pool();
        let names: Vec<String> = p.run_all(|_, m| m.gpu().name.clone()).into_iter().map(Result::unwrap).collect();
        assert_eq!(names, p.names());
    }

    #[test]
    fn parallel_measurements_accumulate_per_device_time() {
        let p = pool();
        let space = space();
        let counts = p.run_all(|i, m| {
            let mut rng = StdRng::seed_from_u64(i as u64);
            for _ in 0..5 {
                let c = space.sample_uniform(&mut rng);
                m.measure(&space, &c);
            }
            m.valid_count() + m.invalid_count()
        });
        assert!(counts.iter().all(|c| *c.as_ref().unwrap() == 5));
        assert!(p.total_gpu_seconds() > 0.0);
    }

    #[test]
    fn different_devices_rank_configs_differently_sometimes() {
        // Weak sanity check of hardware-dependence through the pool API.
        let p = pool();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let bests: Vec<f64> = p
            .run_all(|i, m| m.oracle_best(&space, 2000, 100 + i as u64).unwrap().1)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        // All four GPUs should find a decent optimum, and they should not
        // all be identical numbers.
        assert!(bests.iter().all(|b| *b > 100.0));
        let first = bests[0];
        assert!(bests.iter().any(|b| (b - first).abs() > 1.0));
    }

    #[test]
    fn worker_panic_degrades_only_that_device() {
        let p = pool();
        let results = p.run_all(|i, m| {
            assert!(i != 2, "injected worker crash");
            m.gpu().name.clone()
        });
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert!(matches!(r, Err(DeviceError::Panicked(_))), "expected panic error, got {r:?}");
            } else {
                assert!(r.is_ok(), "survivor {i} failed: {r:?}");
            }
        }
        assert_eq!(p.status(2), DeviceStatus::Dead);
        // The dead worker stays dead on the next round; survivors serve.
        let again = p.run_all(|_, m| m.gpu().name.clone());
        assert!(matches!(again[2], Err(DeviceError::Dead)));
        assert!(again[0].is_ok() && again[1].is_ok() && again[3].is_ok());
        let summary = p.summary();
        assert_eq!(summary.dead(), vec!["RTX 2080 Ti"]);
        assert_eq!(summary.healthy().len(), 3);
    }

    #[test]
    fn permanently_dead_device_is_quarantined_and_fleet_completes() {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        let dead_name = gpus[1].name.clone();
        let plan = FaultPlan::none().with_dead_device(&dead_name);
        let p = DevicePool::with_faults(&gpus, 5, &plan);
        let space = space();

        let mut survivor_rounds = 0;
        for round in 0..8 {
            let results = p.run_all(|i, m| {
                let mut rng = StdRng::seed_from_u64(round * 31 + i as u64);
                for _ in 0..4 {
                    let c = space.sample_uniform(&mut rng);
                    m.measure(&space, &c);
                }
                m.valid_count()
            });
            survivor_rounds += results.iter().enumerate().filter(|(i, r)| *i != 1 && r.is_ok()).count();
        }
        // Survivors answered every round.
        assert_eq!(survivor_rounds, 3 * 8);
        let summary = p.summary();
        let report = &summary.devices[1];
        assert_eq!(report.name, dead_name);
        assert_ne!(report.status, DeviceStatus::Healthy, "dead device must leave the healthy set");
        assert!(report.quarantines >= 1, "death must be visible as a quarantine in the summary");
        assert!(summary.healthy().len() == 3);
        // Survivors actually measured.
        for (i, d) in summary.devices.iter().enumerate() {
            if i != 1 {
                assert!(d.valid > 0, "{} served nothing", d.name);
            }
        }
    }

    #[test]
    fn quarantine_after_consecutive_faulted_rounds_then_probe_readmission() {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        let flaky = gpus[0].name.clone();
        // launch_failure=1.0: every measurement faults, but the device
        // itself stays reachable, so the probe re-admits it.
        let plan = FaultPlan::none().with_device_rates(
            &flaky,
            FaultRates {
                launch_failure: 1.0,
                ..FaultRates::none()
            },
        );
        let p = DevicePool::with_faults(&gpus, 5, &plan);
        let space = space();
        let config = valid_config_for(&gpus[0], &space);

        for _ in 0..p.policy().quarantine_threshold {
            let results = p.run_all(|_, m| {
                m.measure(&space, &config);
            });
            assert!(results.iter().all(Result::is_ok));
        }
        assert_eq!(p.status(0), DeviceStatus::Quarantined);
        assert!(p.summary().quarantined().contains(&flaky.as_str()));

        // Next round: the probe answers (device is reachable), so the
        // device is re-admitted and runs the job again.
        let results = p.run_all(|_, m| {
            m.measure(&space, &config);
        });
        assert!(results[0].is_ok(), "probe should re-admit a reachable device");
        assert_eq!(p.status(0), DeviceStatus::Healthy);
    }

    #[test]
    fn probe_charges_simulated_time() {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        let plan = FaultPlan::none().with_device_rates(
            &gpus[0].name,
            FaultRates {
                launch_failure: 1.0,
                ..FaultRates::none()
            },
        );
        let p = DevicePool::with_faults(&gpus, 5, &plan);
        let space = space();
        let config = valid_config_for(&gpus[0], &space);
        for _ in 0..p.policy().quarantine_threshold {
            p.run_all(|_, m| {
                m.measure(&space, &config);
            });
        }
        let before = p.summary().devices[0].gpu_seconds;
        p.run_all(|_, _m| {});
        let after = p.summary().devices[0].gpu_seconds;
        assert!(after >= before + p.policy().probe_cost_s - 1e-9, "probe must debit the clock");
    }

    #[test]
    fn policy_parse_accepts_the_documented_grammar() {
        let policy = PoolPolicy::parse("quarantine=2, probes=7,probe_cost=1.25").unwrap();
        assert_eq!(policy.quarantine_threshold, 2);
        assert_eq!(policy.probe_limit, 7);
        assert_eq!(policy.probe_cost_s, 1.25);
        // Omitted keys keep their defaults; an empty spec is the default.
        assert_eq!(PoolPolicy::parse("probes=9").unwrap().quarantine_threshold, 3);
        assert_eq!(PoolPolicy::parse("").unwrap(), PoolPolicy::default());
    }

    #[test]
    fn policy_parse_rejects_bad_specs() {
        assert!(PoolPolicy::parse("quarantine").is_err());
        assert!(PoolPolicy::parse("patience=3").is_err());
        assert!(PoolPolicy::parse("quarantine=0").is_err());
        assert!(PoolPolicy::parse("probes=0").is_err());
        assert!(PoolPolicy::parse("probes=many").is_err());
        assert!(PoolPolicy::parse("probe_cost=-1").is_err());
        assert!(PoolPolicy::parse("probe_cost=inf").is_err());
    }

    #[test]
    fn custom_quarantine_threshold_changes_admission() {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        let flaky = gpus[0].name.clone();
        let plan = FaultPlan::none()
            .with_device_rates(
                &flaky,
                FaultRates {
                    launch_failure: 1.0,
                    ..FaultRates::none()
                },
            )
            .with_pool_policy(PoolPolicy {
                quarantine_threshold: 1,
                ..PoolPolicy::default()
            });
        let p = DevicePool::with_faults(&gpus, 5, &plan);
        assert_eq!(p.policy().quarantine_threshold, 1);
        let space = space();
        let config = valid_config_for(&gpus[0], &space);
        // One all-faulted round suffices under threshold 1 (default is 3).
        p.run_all(|_, m| {
            m.measure(&space, &config);
        });
        assert_eq!(p.status(0), DeviceStatus::Quarantined);
    }

    #[test]
    fn run_on_serves_one_device_with_admission_control() {
        let gpus: Vec<_> = database::evaluation_gpus().into_iter().cloned().collect();
        let plan = FaultPlan::none().with_dead_device(&gpus[1].name);
        let p = DevicePool::with_faults(&gpus, 5, &plan);
        let space = space();

        // A healthy device serves the job and keeps its accounting.
        let name = p.run_on(0, |_, m| m.gpu().name.clone()).unwrap();
        assert_eq!(name, gpus[0].name);
        let served = p
            .run_on(0, |_, m| {
                let config = valid_config_for(m.gpu(), &space);
                m.measure(&space, &config);
                m.valid_count() + m.invalid_count()
            })
            .unwrap();
        assert_eq!(served, 1);

        // A retired device refuses jobs through the same admission gate.
        let results = p.run_all(|_, m| {
            let mut rng = StdRng::seed_from_u64(3);
            let c = space.sample_uniform(&mut rng);
            m.measure(&space, &c);
        });
        assert!(results[1].is_ok(), "first round quarantines, not refuses");
        assert_eq!(p.status(1), DeviceStatus::Quarantined);
        // Probes keep failing (dead rate 1.0) until the device retires.
        for _ in 0..p.policy().probe_limit {
            let _ = p.run_on(1, |_, _m| {});
        }
        assert_eq!(p.status(1), DeviceStatus::Dead);
        assert!(matches!(p.run_on(1, |_, _m| {}), Err(DeviceError::Dead)));
    }
}
