//! Measurement traces: record, cache, and replay hardware measurements.
//!
//! Real tuning runs persist every measurement (TVM's tuning logs) both for
//! transfer learning and so that re-runs never pay for a configuration
//! twice. [`TraceCache`] gives the simulator the same property: a
//! memoizing layer over a [`Measurer`] keyed by configuration, with hit
//! accounting. Replaying a hit costs no simulated GPU time — exactly like
//! looking up a log entry instead of launching a kernel.

use crate::measure::{MeasureResult, Measurer, Outcome};
use glimpse_space::{Config, SearchSpace};
use serde::{Deserialize, Serialize, Value};
// Memo cache keyed by config indices; every read is a point lookup and the
// serializer sorts entries, so hash order never reaches any output (D2 does
// not apply).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// A memoizing measurement layer for one (GPU, task) pair.
#[derive(Debug, Clone, Default)]
pub struct TraceCache {
    #[allow(clippy::disallowed_types)]
    entries: HashMap<Vec<usize>, Outcome>,
    hits: u64,
    misses: u64,
}

// Hand-written serde: the entry map is serialized as a key-sorted pair
// list because JSON maps require string keys.
impl Serialize for TraceCache {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(&Vec<usize>, &Outcome)> = self.entries.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let entries: Vec<Value> = pairs
            .into_iter()
            .map(|(key, outcome)| Value::Array(vec![key.to_value(), outcome.to_value()]))
            .collect();
        Value::Object(vec![
            ("entries".to_string(), Value::Array(entries)),
            ("hits".to_string(), self.hits.to_value()),
            ("misses".to_string(), self.misses.to_value()),
        ])
    }
}

impl Deserialize for TraceCache {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let pairs: Vec<(Vec<usize>, Outcome)> = serde::__field(value, "entries", "TraceCache")?;
        Ok(Self {
            entries: pairs.into_iter().collect(),
            hits: serde::__field(value, "hits", "TraceCache")?,
            misses: serde::__field(value, "misses", "TraceCache")?,
        })
    }
}

impl TraceCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures through the cache: a repeated configuration replays the
    /// recorded outcome at zero simulated cost.
    pub fn measure(&mut self, measurer: &mut Measurer, space: &SearchSpace, config: &Config) -> MeasureResult {
        let key = config.indices().to_vec();
        if let Some(outcome) = self.entries.get(&key) {
            self.hits += 1;
            return MeasureResult {
                config: config.clone(),
                outcome: *outcome,
                cost_s: 0.0,
            };
        }
        self.misses += 1;
        let result = measurer.measure(space, config);
        self.entries.insert(key, result.outcome);
        result
    }

    /// Number of cached outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (real measurements) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Recorded outcome for a configuration, if present.
    #[must_use]
    pub fn lookup(&self, config: &Config) -> Option<&Outcome> {
        self.entries.get(config.indices())
    }

    /// Pre-seeds the cache from recorded `(config, outcome)` pairs (e.g. a
    /// previous run's journal).
    pub fn preload<I: IntoIterator<Item = (Config, Outcome)>>(&mut self, records: I) {
        for (config, outcome) in records {
            self.entries.insert(config.indices().to_vec(), outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Measurer, SearchSpace) {
        let gpu = database::find("RTX 2070 Super").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        (Measurer::new(gpu, 7), space)
    }

    #[test]
    fn repeat_measurements_cost_nothing() {
        let (mut measurer, space) = setup();
        let mut cache = TraceCache::new();
        let mut rng = StdRng::seed_from_u64(1);
        let config = space.sample_uniform(&mut rng);
        let first = cache.measure(&mut measurer, &space, &config);
        let clock_after_first = measurer.elapsed_gpu_seconds();
        let second = cache.measure(&mut measurer, &space, &config);
        assert_eq!(measurer.elapsed_gpu_seconds(), clock_after_first, "hit must not advance the clock");
        assert_eq!(second.cost_s, 0.0);
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_configs_are_distinct_entries() {
        let (mut measurer, space) = setup();
        let mut cache = TraceCache::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let config = space.sample_uniform(&mut rng);
            cache.measure(&mut measurer, &space, &config);
        }
        assert_eq!(cache.len(), 10);
        assert!(!cache.is_empty());
    }

    #[test]
    fn preload_replays_prior_runs() {
        let (mut measurer, space) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let config = space.sample_uniform(&mut rng);
        let result = measurer.measure(&space, &config);

        let mut cache = TraceCache::new();
        cache.preload([(config.clone(), result.outcome)]);
        let clock = measurer.elapsed_gpu_seconds();
        let replay = cache.measure(&mut measurer, &space, &config);
        assert_eq!(replay.outcome, result.outcome);
        assert_eq!(measurer.elapsed_gpu_seconds(), clock);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lookup_finds_only_recorded_configs() {
        let (mut measurer, space) = setup();
        let mut cache = TraceCache::new();
        let mut rng = StdRng::seed_from_u64(4);
        let a = space.sample_uniform(&mut rng);
        let b = space.sample_uniform(&mut rng);
        cache.measure(&mut measurer, &space, &a);
        assert!(cache.lookup(&a).is_some());
        assert!(cache.lookup(&b).is_none());
    }

    #[test]
    fn serde_roundtrip_preserves_entries() {
        let (mut measurer, space) = setup();
        let mut cache = TraceCache::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let config = space.sample_uniform(&mut rng);
            cache.measure(&mut measurer, &space, &config);
        }
        let json = serde_json::to_string(&cache).unwrap();
        let back: TraceCache = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), cache.len());
    }
}
