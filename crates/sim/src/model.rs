//! The analytical latency model.
//!
//! A kernel's latency is the roofline maximum of a compute estimate and a
//! memory estimate, each degraded by efficiency terms derived *only* from
//! data-sheet quantities and the kernel shape:
//!
//! * **occupancy & latency hiding** — resident blocks per SM are limited by
//!   the thread, shared-memory, register, and block limits; the resulting
//!   warp parallelism feeds a saturating latency-hiding curve whose knee
//!   depends on the device clock (higher-clocked parts need more in-flight
//!   warps to cover the same DRAM latency).
//! * **warp quantization** — threads-per-block not a multiple of 32 waste
//!   lanes.
//! * **memory coalescing** — driven by the `threadIdx.x` extent and the
//!   per-thread innermost extent, with a generation-dependent sensitivity
//!   (Pascal is least forgiving).
//! * **wave quantization** — grids that don't fill an integer number of
//!   waves leave SMs idle in the tail.
//! * **unrolling** — `auto_unroll_max_step` buys issue efficiency until the
//!   unrolled body overflows a generation-dependent instruction-cache
//!   budget.
//! * **L2 reuse** — staged traffic beyond the compulsory bytes is absorbed
//!   by L2 in proportion to how much of the working set fits.
//!
//! Because every coefficient is a function of the [`GpuSpec`], the *same*
//! configuration lands at different efficiencies on different GPUs, and the
//! argmax of the space moves between devices — the paper's Fig. 1.

use glimpse_gpu_spec::{Generation, GpuSpec};
use glimpse_space::{Config, KernelShape, SearchSpace};
use glimpse_tensor_prog::TemplateKind;
use serde::{Deserialize, Serialize};

/// Decomposed latency estimate, for inspection and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Compute-bound time in seconds.
    pub compute_s: f64,
    /// Memory-bound time in seconds.
    pub memory_s: f64,
    /// Fixed launch overhead in seconds.
    pub launch_s: f64,
    /// Achieved occupancy (resident threads / max threads per SM).
    pub occupancy: f64,
    /// Latency-hiding efficiency in (0, 1].
    pub hiding: f64,
    /// Warp-quantization efficiency in (0, 1].
    pub warp_eff: f64,
    /// Coalescing efficiency in (0, 1].
    pub coalesce: f64,
    /// Wave/tail efficiency in (0, 1].
    pub wave_eff: f64,
    /// Unroll gain (may exceed 1).
    pub unroll_gain: f64,
    /// Shared-memory bank-conflict efficiency in (0, 1].
    pub bank_eff: f64,
    /// Effective DRAM traffic in bytes.
    pub traffic_bytes: f64,
}

impl LatencyBreakdown {
    /// Total modeled latency in seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.compute_s.max(self.memory_s) + self.launch_s
    }
}

/// The analytical performance model for one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    gpu: GpuSpec,
}

/// Fixed kernel-launch overhead (driver + runtime), seconds.
const LAUNCH_OVERHEAD_S: f64 = 5.0e-6;

/// Fraction of peak FP32 a perfectly tuned direct template can reach (CUDA
/// cores only, no tensor cores — matches TVM fp32 templates).
fn arch_base(template: TemplateKind) -> f64 {
    match template {
        TemplateKind::Conv2dDirect => 0.38,
        TemplateKind::Conv2dWinograd => 0.30,
        TemplateKind::Dense => 0.55,
    }
}

impl PerfModel {
    /// Builds the model for a GPU.
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        Self { gpu }
    }

    /// The GPU this model prices kernels for.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Resident blocks per SM under all four occupancy limits. At least 1
    /// for any configuration that passes [`crate::validity::check`].
    #[must_use]
    pub fn blocks_per_sm(&self, shape: &KernelShape) -> u64 {
        let gpu = &self.gpu;
        let by_threads = u64::from(gpu.max_threads_per_sm) / shape.threads_per_block.max(1);
        let by_smem = gpu
            .shared_mem_per_sm_bytes()
            .checked_div(shape.shared_bytes)
            .unwrap_or(u64::from(gpu.max_blocks_per_sm));
        let by_regs = if shape.regs_per_block() == 0 {
            u64::from(gpu.max_blocks_per_sm)
        } else {
            u64::from(gpu.registers_per_sm) / shape.regs_per_block()
        };
        by_threads.min(by_smem).min(by_regs).min(u64::from(gpu.max_blocks_per_sm)).max(1)
    }

    /// Full latency decomposition for a lowered kernel with effective FLOPs
    /// `eff_flops` (algorithm-adjusted) under `template`.
    #[must_use]
    pub fn breakdown(&self, template: TemplateKind, eff_flops: f64, compulsory_bytes: f64, shape: &KernelShape) -> LatencyBreakdown {
        let gpu = &self.gpu;
        let blocks_per_sm = self.blocks_per_sm(shape) as f64;
        let resident_threads = blocks_per_sm * shape.threads_per_block as f64;
        let occupancy = (resident_threads / f64::from(gpu.max_threads_per_sm)).min(1.0);

        // Latency hiding: higher clocks need more parallelism to cover DRAM
        // latency; per-thread ILP (independent output accumulators) helps.
        let clock_ratio = gpu.boost_clock_mhz / 1600.0;
        let k_lat = 0.10 + 0.12 * clock_ratio;
        let ilp = 1.0 + 0.30 * (shape.work_per_thread as f64).ln_1p();
        let parallelism = occupancy * ilp;
        let hiding = ((parallelism / (parallelism + k_lat)) * (1.0 + k_lat)).min(1.0);

        // Warp quantization.
        let warps = shape.threads_per_block.div_ceil(u64::from(gpu.warp_size));
        let warp_eff = shape.threads_per_block as f64 / (warps * u64::from(gpu.warp_size)) as f64;

        // Coalescing: contiguous lanes per global transaction.
        let span = (shape.tx as f64) * f64::from(shape.inner_x.min(2));
        let sensitivity = match gpu.generation {
            Generation::Pascal => 0.85,
            Generation::Turing => 0.65,
            Generation::Ampere => 0.55,
        };
        let coalesce = (span / f64::from(gpu.warp_size)).min(1.0).powf(sensitivity).max(0.22);

        // Wave quantization / SM fill.
        let capacity = blocks_per_sm * f64::from(gpu.sm_count);
        let waves = (shape.blocks as f64 / capacity).ceil().max(1.0);
        let wave_eff = (shape.blocks as f64 / (waves * capacity)).min(1.0);

        // Unrolling: issue-rate gain until the unrolled body blows the
        // instruction cache (budget grows with newer generations).
        let icache_budget = match gpu.generation {
            Generation::Pascal => 2048.0,
            Generation::Turing => 4096.0,
            Generation::Ampere => 8192.0,
        };
        let body = shape.work_per_thread as f64 * f64::from(shape.reduce_tile);
        let mut unroll_gain = match shape.unroll_steps {
            0 => 1.0,
            s if s >= 512 => 1.10,
            _ => 1.05,
        };
        if shape.explicit_unroll {
            if body * f64::from(shape.unroll_steps.max(1)).min(body) > icache_budget {
                unroll_gain *= 0.88;
            } else {
                unroll_gain *= 1.03;
            }
        }

        // Shared-memory bank conflicts: the per-warp access stride across
        // the staged tile decides which of the 32 banks collide. This is a
        // high-frequency function of the *exact* split factors (mod-32
        // residues), which is exactly why real TVM spaces are rugged and
        // their optima sparsely distributed (§2.1) — smooth surrogates
        // cannot extrapolate it and must measure.
        let stride = (shape.tx * shape.inner_x.max(1)) % gpu.warp_size;
        let conflict_scale = match gpu.generation {
            Generation::Pascal => 1.0,
            Generation::Turing => 0.8,
            Generation::Ampere => 0.65,
        };
        let bank_eff = if stride == 0 {
            1.0
        } else if stride.is_multiple_of(16) {
            1.0 - 0.22 * conflict_scale
        } else if stride.is_multiple_of(8) {
            1.0 - 0.15 * conflict_scale
        } else if stride.is_multiple_of(2) {
            1.0 - 0.08 * conflict_scale
        } else {
            1.0 - 0.03 * conflict_scale
        };

        // Compute side.
        let compute_eff = arch_base(template) * hiding * warp_eff * wave_eff * unroll_gain * bank_eff;
        let compute_s = eff_flops / (gpu.fp32_gflops * 1e9 * compute_eff.max(1e-4));

        // Memory side: staged traffic beyond compulsory is absorbed by L2 in
        // proportion to how much of the layer's working set fits.
        let raw = (shape.blocks as f64 * shape.block_load_bytes).max(compulsory_bytes);
        let l2_bytes = f64::from(self.gpu.l2_cache_kib) * 1024.0;
        let l2_leak = (1.0 - l2_bytes / compulsory_bytes.max(1.0)).clamp(0.05, 1.0);
        let traffic_bytes = compulsory_bytes + (raw - compulsory_bytes) * l2_leak + shape.output_bytes;
        // Partition camping: grids whose block count is a multiple of the
        // DRAM partition count hammer the same channels in lockstep —
        // another exact-residue effect invisible to log-scale features.
        let partitions = u64::from(gpu.mem_bus_bits / 64).max(1);
        let camping = if shape.blocks.is_multiple_of(partitions) { 0.86 } else { 1.0 };
        let mem_eff = 0.78 * coalesce * camping;
        let memory_s = traffic_bytes / (gpu.mem_bandwidth_gb_s * 1e9 * mem_eff);

        LatencyBreakdown {
            compute_s,
            memory_s,
            launch_s: LAUNCH_OVERHEAD_S,
            occupancy,
            hiding,
            warp_eff,
            coalesce,
            wave_eff,
            unroll_gain,
            bank_eff,
            traffic_bytes,
        }
    }

    /// Estimated energy (joules) of one kernel execution: board power
    /// scaled by how compute-saturated the kernel is. Memory-bound or
    /// poorly occupied kernels draw closer to the ~35 % idle/static floor
    /// typical of these boards; fully compute-bound kernels approach TDP.
    #[must_use]
    pub fn energy_j(&self, breakdown: &LatencyBreakdown) -> f64 {
        let total = breakdown.total_s();
        if total <= 0.0 {
            return 0.0;
        }
        let compute_saturation = (breakdown.compute_s / total).clamp(0.0, 1.0) * breakdown.occupancy;
        let power_w = self.gpu.tdp_w * (0.35 + 0.65 * compute_saturation);
        power_w * total
    }

    /// Noise-free latency (seconds) of `config` in `space`, or `None` if the
    /// configuration is invalid on this GPU.
    #[must_use]
    pub fn latency_s(&self, space: &SearchSpace, config: &Config) -> Option<f64> {
        let shape = space.kernel_shape(config);
        crate::validity::check(&self.gpu, &shape).ok()?;
        let eff_flops = space.op().effective_flops(space.template());
        let compulsory = space.op().compulsory_bytes();
        Some(self.breakdown(space.template(), eff_flops, compulsory, &shape).total_s())
    }

    /// Noise-free throughput in GFLOPS (direct-algorithm FLOP count, the
    /// convention of the paper's Fig. 4), or `None` if invalid.
    #[must_use]
    pub fn throughput_gflops(&self, space: &SearchSpace, config: &Config) -> Option<f64> {
        self.latency_s(space, config).map(|t| space.op().flops() / t / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::{Conv2dSpec, DenseSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv_space() -> SearchSpace {
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
    }

    fn best_of(model: &PerfModel, space: &SearchSpace, n: usize, seed: u64) -> (Config, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<(Config, f64)> = None;
        for _ in 0..n {
            let c = space.sample_uniform(&mut rng);
            if let Some(g) = model.throughput_gflops(space, &c) {
                if best.as_ref().is_none_or(|(_, b)| g > *b) {
                    best = Some((c, g));
                }
            }
        }
        best.expect("at least one valid sample")
    }

    #[test]
    fn good_configs_reach_realistic_gflops() {
        // Fig. 4's y-axes top out around 3000-4000 GFLOPS for conv layers.
        let model = PerfModel::new(database::find("Titan Xp").unwrap().clone());
        let space = conv_space();
        let (_, best) = best_of(&model, &space, 3000, 1);
        assert!(best > 1000.0 && best < 8000.0, "best {best} GFLOPS");
    }

    #[test]
    fn faster_gpu_is_faster_at_its_best() {
        let space = conv_space();
        let titan = PerfModel::new(database::find("Titan Xp").unwrap().clone());
        let ampere = PerfModel::new(database::find("RTX 3090").unwrap().clone());
        let (_, titan_best) = best_of(&titan, &space, 2000, 2);
        let (_, ampere_best) = best_of(&ampere, &space, 2000, 2);
        assert!(ampere_best > titan_best, "3090 {ampere_best} <= Titan {titan_best}");
    }

    #[test]
    fn optimal_config_does_not_transfer_across_gpus() {
        // The Fig. 1 property: transplanting the argmax between GPUs loses
        // performance relative to the target's own argmax.
        let space = conv_space();
        let titan = PerfModel::new(database::find("Titan Xp").unwrap().clone());
        let ti = PerfModel::new(database::find("RTX 2080 Ti").unwrap().clone());
        let (titan_cfg, _) = best_of(&titan, &space, 6000, 3);
        let (ti_cfg, ti_best) = best_of(&ti, &space, 6000, 3);
        if titan_cfg != ti_cfg {
            let transplanted = ti.throughput_gflops(&space, &titan_cfg);
            // The transplanted config may even be invalid; if valid it must
            // not beat the native best.
            if let Some(t) = transplanted {
                assert!(t <= ti_best * 1.0001, "transplant {t} vs native {ti_best}");
            }
        }
    }

    #[test]
    fn dense_batch1_is_memory_bound() {
        let model = PerfModel::new(database::find("RTX 2080 Ti").unwrap().clone());
        let space = templates::dense_space(&DenseSpec::new(1, 4096, 4096));
        // Poorly configured kernels can be compute-bound (e.g. one thread);
        // a *well-tuned* batch-1 dense layer must be memory-bound.
        let (best_cfg, _) = best_of(&model, &space, 2000, 4);
        let shape = space.kernel_shape(&best_cfg);
        let b = model.breakdown(space.template(), space.op().flops(), space.op().compulsory_bytes(), &shape);
        assert!(b.memory_s > b.compute_s, "well-tuned dense should be memory-bound");
    }

    #[test]
    fn occupancy_limits_respected() {
        let model = PerfModel::new(database::find("RTX 2070 Super").unwrap().clone());
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let c = space.sample_uniform(&mut rng);
            let shape = space.kernel_shape(&c);
            let bps = model.blocks_per_sm(&shape);
            assert!(bps >= 1 && bps <= u64::from(model.gpu().max_blocks_per_sm));
        }
    }

    #[test]
    fn latency_is_positive_and_finite_for_valid_configs() {
        let model = PerfModel::new(database::find("GTX 1080").unwrap().clone());
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen_valid = false;
        for _ in 0..500 {
            let c = space.sample_uniform(&mut rng);
            if let Some(t) = model.latency_s(&space, &c) {
                assert!(t.is_finite() && t > 0.0);
                seen_valid = true;
            }
        }
        assert!(seen_valid);
    }

    #[test]
    fn breakdown_total_matches_roofline() {
        let model = PerfModel::new(database::find("Titan Xp").unwrap().clone());
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(7);
        let c = loop {
            let c = space.sample_uniform(&mut rng);
            if model.latency_s(&space, &c).is_some() {
                break c;
            }
        };
        let shape = space.kernel_shape(&c);
        let b = model.breakdown(
            space.template(),
            space.op().effective_flops(space.template()),
            space.op().compulsory_bytes(),
            &shape,
        );
        assert!((b.total_s() - (b.compute_s.max(b.memory_s) + b.launch_s)).abs() < 1e-15);
        assert!(b.occupancy > 0.0 && b.occupancy <= 1.0);
        assert!(b.warp_eff > 0.0 && b.warp_eff <= 1.0);
        assert!(b.wave_eff > 0.0 && b.wave_eff <= 1.0);
    }

    #[test]
    fn model_is_deterministic() {
        let model = PerfModel::new(database::find("RTX 3090").unwrap().clone());
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(8);
        let c = space.sample_uniform(&mut rng);
        assert_eq!(model.latency_s(&space, &c), model.latency_s(&space, &c));
    }

    #[test]
    fn energy_scales_with_latency_and_saturation() {
        let model = PerfModel::new(database::find("RTX 2080 Ti").unwrap().clone());
        let space = conv_space();
        let (cfg, _) = best_of(&model, &space, 1000, 21);
        let shape = space.kernel_shape(&cfg);
        let b = model.breakdown(
            space.template(),
            space.op().effective_flops(space.template()),
            space.op().compulsory_bytes(),
            &shape,
        );
        let e = model.energy_j(&b);
        assert!(e > 0.0 && e.is_finite());
        // Energy is bounded by TDP x latency and above the static floor.
        assert!(e <= model.gpu().tdp_w * b.total_s() * 1.0001);
        assert!(e >= 0.35 * model.gpu().tdp_w * b.total_s() * 0.9999);
    }
}
