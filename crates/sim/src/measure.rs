//! The measurement harness: noisy evaluations with simulated-time accounting.
//!
//! Every call to [`Measurer::measure`] stands in for the paper's full
//! compile → upload-over-RPC → run-n-times → average pipeline. It debits a
//! simulated GPU clock: valid configurations pay compilation + transfer +
//! repeated runs, invalid ones pay compilation + the failed launch. The
//! accumulated clock is what Table 2's "ΣGPU Search (GPU Hours)" reports.

use crate::fault::{FaultEvent, FaultInjector, FaultPlan, InjectorState, MeasureFault};
use crate::model::PerfModel;
use crate::validity::{self, InvalidReason};
use glimpse_gpu_spec::GpuSpec;
use glimpse_space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulated seconds charged per measured configuration on top of the run
/// time (compile, transfer, launch pipeline). Calibrated so AutoTVM-scale
/// budgets land in the paper's "tens of GPU hours" regime.
pub const VALID_OVERHEAD_S: f64 = 3.5;
/// Simulated seconds charged for a configuration that fails at launch.
pub const INVALID_OVERHEAD_S: f64 = 1.2;
/// Number of timed repetitions averaged per valid measurement.
pub const REPEATS: u32 = 3;
/// Relative measurement noise (log-normal σ).
pub const NOISE_SIGMA: f64 = 0.03;

/// Outcome of one hardware measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The kernel ran; noisy averaged latency and derived throughput.
    Valid {
        /// Measured latency in seconds.
        latency_s: f64,
        /// Throughput in GFLOPS (direct-algorithm FLOPs / latency).
        gflops: f64,
    },
    /// The launch failed with a resource violation.
    Invalid(InvalidReason),
    /// The measurement failed for reasons unrelated to the configuration
    /// (hang, flaky launch, unreachable or dead device). Unlike `Invalid`,
    /// this says nothing about the config — it must never train a surrogate.
    Faulted(MeasureFault),
}

impl Outcome {
    /// Throughput if valid.
    #[must_use]
    pub fn gflops(&self) -> Option<f64> {
        match self {
            Outcome::Valid { gflops, .. } => Some(*gflops),
            Outcome::Invalid(_) | Outcome::Faulted(_) => None,
        }
    }

    /// Whether the measurement succeeded.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        matches!(self, Outcome::Valid { .. })
    }

    /// Whether the measurement failed due to an injected/infrastructure
    /// fault rather than the configuration itself.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self, Outcome::Faulted(_))
    }

    /// The fault, if this outcome is one.
    #[must_use]
    pub fn fault(&self) -> Option<MeasureFault> {
        match self {
            Outcome::Faulted(fault) => Some(*fault),
            _ => None,
        }
    }
}

/// One measurement record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureResult {
    /// The measured configuration.
    pub config: Config,
    /// What happened.
    pub outcome: Outcome,
    /// Simulated GPU seconds this measurement cost.
    pub cost_s: f64,
}

/// Checkpointable snapshot of a [`Measurer`] between measurements. Journals
/// embed one per trial record so a crashed run resumes with the clock,
/// counters, noise stream, and fault stream exactly where they stopped.
/// The perf model and fault rates are *not* in the snapshot — they are
/// rebuilt from `(gpu, fault plan)`, which must match the original run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurerState {
    /// Simulated GPU seconds consumed so far.
    pub clock_s: f64,
    /// Valid measurements performed.
    pub valid_count: u64,
    /// Invalid measurements performed.
    pub invalid_count: u64,
    /// Measurements lost to injected faults.
    pub fault_count: u64,
    /// Raw state of the measurement-noise RNG.
    pub rng: [u64; 4],
    /// Fault-injector snapshot, when a plan is installed.
    pub injector: Option<InjectorState>,
}

/// A measurement channel to one (simulated) GPU.
#[derive(Debug, Clone)]
pub struct Measurer {
    model: PerfModel,
    rng: StdRng,
    clock_s: f64,
    valid_count: u64,
    invalid_count: u64,
    fault_count: u64,
    injector: Option<FaultInjector>,
}

impl Measurer {
    /// Opens a measurement channel to `gpu` with a deterministic noise seed.
    #[must_use]
    pub fn new(gpu: GpuSpec, seed: u64) -> Self {
        Self {
            model: PerfModel::new(gpu),
            rng: StdRng::seed_from_u64(seed),
            clock_s: 0.0,
            valid_count: 0,
            invalid_count: 0,
            fault_count: 0,
            injector: None,
        }
    }

    /// Opens a channel that injects faults per `plan` (no-op plan → clean
    /// channel identical to [`Measurer::new`]).
    #[must_use]
    pub fn with_faults(gpu: GpuSpec, seed: u64, plan: &FaultPlan) -> Self {
        let mut measurer = Self::new(gpu, seed);
        measurer.set_fault_plan(plan);
        measurer
    }

    /// Installs (or, with an empty plan, removes) fault injection. The
    /// injector stream depends only on `(plan.seed, gpu name)`.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        let name = self.gpu().name.clone();
        self.injector = plan.rates_for(&name).any().then(|| FaultInjector::for_device(plan, &name));
    }

    /// The underlying noise-free model.
    #[must_use]
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// The GPU behind this channel.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        self.model.gpu()
    }

    /// Total simulated GPU seconds consumed so far.
    #[must_use]
    pub fn elapsed_gpu_seconds(&self) -> f64 {
        self.clock_s
    }

    /// Number of valid measurements performed.
    #[must_use]
    pub fn valid_count(&self) -> u64 {
        self.valid_count
    }

    /// Number of invalid (failed) measurements performed.
    #[must_use]
    pub fn invalid_count(&self) -> u64 {
        self.invalid_count
    }

    /// Number of measurements lost to injected faults.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.fault_count
    }

    /// Whether the simulated device has died permanently.
    #[must_use]
    pub fn is_device_dead(&self) -> bool {
        self.injector.as_ref().is_some_and(FaultInjector::is_dead)
    }

    /// Revives a dead device (the pool's re-admission probe on a false
    /// positive). Faults keep firing per the plan afterwards.
    pub fn revive_device(&mut self) {
        if let Some(injector) = &mut self.injector {
            injector.revive();
        }
    }

    /// Debits simulated GPU seconds outside a measurement (retry backoff,
    /// probe traffic). Saturates at zero for negative amounts.
    pub fn charge(&mut self, seconds: f64) {
        self.clock_s += seconds.max(0.0);
    }

    /// Snapshots the channel for a checkpoint (see [`MeasurerState`]).
    #[must_use]
    pub fn state(&self) -> MeasurerState {
        MeasurerState {
            clock_s: self.clock_s,
            valid_count: self.valid_count,
            invalid_count: self.invalid_count,
            fault_count: self.fault_count,
            rng: self.rng.state(),
            injector: self.injector.as_ref().map(FaultInjector::state),
        }
    }

    /// Restores a snapshot taken by [`Measurer::state`] onto a channel
    /// built with the same `(gpu, seed, plan)`; measurement and fault
    /// streams then continue bit-identically from the snapshot point.
    pub fn restore_state(&mut self, state: &MeasurerState) {
        self.clock_s = state.clock_s;
        self.valid_count = state.valid_count;
        self.invalid_count = state.invalid_count;
        self.fault_count = state.fault_count;
        self.rng = StdRng::from_state(state.rng);
        if let (Some(injector), Some(snapshot)) = (self.injector.as_mut(), state.injector.as_ref()) {
            injector.restore_state(snapshot);
        }
    }

    /// Measures one configuration, debiting the simulated clock.
    ///
    /// With a fault plan installed, the injector is consulted once per
    /// call: device-level faults (dead/lost) preempt everything, kernel
    /// faults (timeout, spurious launch failure) only strike configurations
    /// that would otherwise run, and a noise spike inflates the latency of
    /// an otherwise-valid sample. A timeout debits the full timeout window.
    pub fn measure(&mut self, space: &SearchSpace, config: &Config) -> MeasureResult {
        let event = self.injector.as_mut().and_then(FaultInjector::next_event);

        // Device-level faults fire before the config is even compiled.
        if let Some(FaultEvent::Fail(fault @ (MeasureFault::DeviceDead | MeasureFault::DeviceLost))) = event {
            return self.faulted(config, fault);
        }

        let shape = space.kernel_shape(config);
        match validity::check(self.gpu(), &shape) {
            Err(reason) => {
                // An invalid config fails at the resource check; a drawn
                // kernel fault has nothing left to strike.
                self.invalid_count += 1;
                self.clock_s += INVALID_OVERHEAD_S;
                MeasureResult {
                    config: config.clone(),
                    outcome: Outcome::Invalid(reason),
                    cost_s: INVALID_OVERHEAD_S,
                }
            }
            Ok(()) => match event {
                Some(FaultEvent::Fail(fault)) => self.faulted(config, fault),
                Some(FaultEvent::Inflate(factor)) => self.run_kernel(space, config, factor),
                None => self.run_kernel(space, config, 1.0),
            },
        }
    }

    /// Records a faulted measurement, charging the fault's cost.
    fn faulted(&mut self, config: &Config, fault: MeasureFault) -> MeasureResult {
        let cost_s = fault.cost_s();
        self.fault_count += 1;
        self.clock_s += cost_s;
        MeasureResult {
            config: config.clone(),
            outcome: Outcome::Faulted(fault),
            cost_s,
        }
    }

    /// The successful-measurement path; `inflation` models a noise spike.
    fn run_kernel(&mut self, space: &SearchSpace, config: &Config, inflation: f64) -> MeasureResult {
        // The validity rules admitted this launch, so the model should score
        // it; if the two ever disagree, record an invalid measurement
        // instead of panicking mid-run.
        let Some(base_latency) = self.model.latency_s(space, config) else {
            self.invalid_count += 1;
            self.clock_s += INVALID_OVERHEAD_S;
            return MeasureResult {
                config: config.clone(),
                outcome: Outcome::Invalid(InvalidReason::ModelRejected),
                cost_s: INVALID_OVERHEAD_S,
            };
        };
        let true_latency = base_latency * inflation;
        // Average of REPEATS noisy runs (log-normal multiplicative noise).
        let mut sum = 0.0;
        for _ in 0..REPEATS {
            let z = standard_normal(&mut self.rng);
            sum += true_latency * (NOISE_SIGMA * z).exp();
        }
        let latency_s = sum / f64::from(REPEATS);
        let gflops = space.op().flops() / latency_s / 1e9;
        let cost_s = VALID_OVERHEAD_S + f64::from(REPEATS) * latency_s;
        self.valid_count += 1;
        self.clock_s += cost_s;
        MeasureResult {
            config: config.clone(),
            outcome: Outcome::Valid { latency_s, gflops },
            cost_s,
        }
    }

    /// Measures a batch in submission order.
    pub fn measure_batch(&mut self, space: &SearchSpace, configs: &[Config]) -> Vec<MeasureResult> {
        configs.iter().map(|c| self.measure(space, c)).collect()
    }

    /// Noise-free oracle: the best configuration among `n` uniform samples,
    /// or `None` when every sample was invalid. Used by the harness as the
    /// "near-exhaustive optimum" for Fig. 1 and as the normalizer for
    /// output-code quality. Costs no simulated time.
    #[must_use]
    pub fn oracle_best(&self, space: &SearchSpace, n: usize, seed: u64) -> Option<(Config, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<(Config, f64)> = None;
        for _ in 0..n {
            let c = space.sample_uniform(&mut rng);
            if let Some(g) = self.model.throughput_gflops(space, &c) {
                if best.as_ref().is_none_or(|(_, b)| g > *b) {
                    best = Some((c, g));
                }
            }
        }
        best
    }
}

/// Standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;

    fn setup() -> (Measurer, SearchSpace) {
        let gpu = database::find("RTX 2070 Super").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        (Measurer::new(gpu, 7), space)
    }

    #[test]
    fn clock_advances_per_measurement() {
        let (mut m, space) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.elapsed_gpu_seconds(), 0.0);
        for _ in 0..10 {
            let c = space.sample_uniform(&mut rng);
            m.measure(&space, &c);
        }
        assert!(m.elapsed_gpu_seconds() >= 10.0 * INVALID_OVERHEAD_S - 1e-9);
        assert_eq!(m.valid_count() + m.invalid_count(), 10);
    }

    #[test]
    fn invalid_measurements_cost_less() {
        let (mut m, space) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut valid_cost = None;
        let mut invalid_cost = None;
        while valid_cost.is_none() || invalid_cost.is_none() {
            let c = space.sample_uniform(&mut rng);
            let r = m.measure(&space, &c);
            match r.outcome {
                Outcome::Valid { .. } => valid_cost = Some(r.cost_s),
                Outcome::Invalid(_) => invalid_cost = Some(r.cost_s),
                Outcome::Faulted(fault) => panic!("clean channel injected {fault}"),
            }
        }
        assert!(invalid_cost.unwrap() < valid_cost.unwrap());
    }

    #[test]
    fn noise_is_small_and_unbiased() {
        let (mut m, space) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        // Find one valid config, measure it many times.
        let config = loop {
            let c = space.sample_uniform(&mut rng);
            if m.model().latency_s(&space, &c).is_some() {
                break c;
            }
        };
        let truth = m.model().latency_s(&space, &config).unwrap();
        let mut sum = 0.0;
        let n = 200;
        for _ in 0..n {
            if let Outcome::Valid { latency_s, .. } = m.measure(&space, &config).outcome {
                sum += latency_s;
                assert!((latency_s / truth - 1.0).abs() < 0.15, "noise too large");
            } else {
                panic!("config became invalid");
            }
        }
        let mean = sum / f64::from(n);
        assert!((mean / truth - 1.0).abs() < 0.01, "bias {}", mean / truth - 1.0);
    }

    #[test]
    fn measurements_are_deterministic_given_seed() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let c = space.sample_uniform(&mut rng);
        let run = || {
            let mut m = Measurer::new(gpu.clone(), 99);
            m.measure(&space, &c).outcome
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oracle_best_is_at_least_as_good_as_any_sample() {
        let (m, space) = setup();
        let (_, best) = m.oracle_best(&space, 500, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let c = space.sample_uniform(&mut rng);
            if let Some(g) = m.model().throughput_gflops(&space, &c) {
                assert!(g <= best + 1e-9);
            }
        }
    }

    #[test]
    fn state_snapshot_resumes_measurements_bit_identically() {
        use crate::fault::{FaultPlan, FaultRates};
        let gpu = database::find("Titan Xp").unwrap().clone();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let plan = FaultPlan::uniform(
            21,
            FaultRates {
                timeout: 0.1,
                noise_spike: 0.2,
                ..FaultRates::none()
            },
        );
        let mut rng = StdRng::seed_from_u64(6);
        let configs: Vec<_> = (0..60).map(|_| space.sample_uniform(&mut rng)).collect();
        let mut live = Measurer::with_faults(gpu.clone(), 99, &plan);
        for c in &configs[..30] {
            live.measure(&space, c);
        }
        let state = live.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: MeasurerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut resumed = Measurer::with_faults(gpu, 99, &plan);
        resumed.restore_state(&back);
        assert_eq!(resumed.elapsed_gpu_seconds(), live.elapsed_gpu_seconds());
        for c in &configs[30..] {
            assert_eq!(resumed.measure(&space, c), live.measure(&space, c));
        }
        assert_eq!(resumed.state(), live.state());
    }

    #[test]
    fn batch_preserves_order_and_counts() {
        let (mut m, space) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let configs: Vec<_> = (0..8).map(|_| space.sample_uniform(&mut rng)).collect();
        let results = m.measure_batch(&space, &configs);
        assert_eq!(results.len(), 8);
        for (r, c) in results.iter().zip(&configs) {
            assert_eq!(&r.config, c);
        }
    }
}
