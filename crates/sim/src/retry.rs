//! Bounded retry with simulated-clock backoff.
//!
//! Real harnesses (TVM's RPC runner among them) retry flaky measurements a
//! few times with increasing delays before journaling a failure. The same
//! policy here keeps transient faults (spurious launch failures, brief
//! device loss) from polluting tuning journals, while every attempt and
//! every backoff second is debited to the simulated GPU clock — retries
//! are not free, so they show up in the GPU-hour accounting exactly like
//! the wasted wall-clock they stand in for.

use crate::measure::{MeasureResult, Measurer};
use glimpse_space::{Config, SearchSpace};
use serde::{Deserialize, Serialize};

/// Retry schedule for faulted measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Simulated seconds slept before the first retry.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_s: 0.5,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff slept before retry number `retry` (1-based).
    #[must_use]
    pub fn backoff_s(&self, retry: u32) -> f64 {
        self.base_backoff_s * self.backoff_factor.powi(retry.saturating_sub(1) as i32)
    }
}

/// The result of a retried measurement: the final outcome plus how much
/// the whole attempt chain cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedMeasure {
    /// The last attempt's result, with `cost_s` covering **all** attempts
    /// and backoff, so budget accounting sees the true spend.
    pub result: MeasureResult,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
}

/// Measures `config`, retrying retryable faults per `policy`.
///
/// Invalid configurations are not retried — a resource violation is
/// deterministic. A dead device is not retried either. Each retry first
/// charges the backoff to the measurer's simulated clock.
pub fn measure_with_retry(measurer: &mut Measurer, space: &SearchSpace, config: &Config, policy: &RetryPolicy) -> RetriedMeasure {
    let attempts_allowed = policy.max_attempts.max(1);
    let mut total_cost_s = 0.0;
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut result = measurer.measure(space, config);
        total_cost_s += result.cost_s;
        let retryable = result.outcome.fault().is_some_and(|f| f.is_retryable());
        if retryable && attempts < attempts_allowed {
            let backoff = policy.backoff_s(attempts);
            measurer.charge(backoff);
            total_cost_s += backoff;
            continue;
        }
        result.cost_s = total_cost_s;
        return RetriedMeasure { result, attempts };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultRates, MeasureFault, LAUNCH_FAILURE_COST_S};
    use crate::measure::Outcome;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> glimpse_space::SearchSpace {
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
    }

    fn valid_config(measurer: &Measurer, space: &glimpse_space::SearchSpace) -> Config {
        let mut rng = StdRng::seed_from_u64(11);
        loop {
            let c = space.sample_uniform(&mut rng);
            if measurer.model().latency_s(space, &c).is_some() {
                return c;
            }
        }
    }

    #[test]
    fn clean_channel_needs_one_attempt() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let mut m = Measurer::new(gpu, 1);
        let space = space();
        let c = valid_config(&m, &space);
        let retried = measure_with_retry(&mut m, &space, &c, &RetryPolicy::default());
        assert_eq!(retried.attempts, 1);
        assert!(retried.result.outcome.is_valid());
    }

    #[test]
    fn persistent_launch_failures_exhaust_attempts_and_charge_backoff() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let rates = FaultRates {
            launch_failure: 1.0,
            ..FaultRates::none()
        };
        let mut m = Measurer::with_faults(gpu, 1, &FaultPlan::uniform(5, rates));
        let space = space();
        let c = valid_config(&m, &space);
        let policy = RetryPolicy::default();
        let retried = measure_with_retry(&mut m, &space, &c, &policy);
        assert_eq!(retried.attempts, policy.max_attempts);
        assert_eq!(retried.result.outcome, Outcome::Faulted(MeasureFault::LaunchFailure));
        let expected = 3.0 * LAUNCH_FAILURE_COST_S + policy.backoff_s(1) + policy.backoff_s(2);
        assert!(
            (retried.result.cost_s - expected).abs() < 1e-9,
            "cost {} != {expected}",
            retried.result.cost_s
        );
        assert!((m.elapsed_gpu_seconds() - expected).abs() < 1e-9, "clock must absorb backoff");
    }

    #[test]
    fn dead_device_is_not_retried() {
        let gpu = database::find("Titan Xp").unwrap().clone();
        let plan = FaultPlan::none().with_dead_device("Titan Xp");
        let mut m = Measurer::with_faults(gpu, 1, &plan);
        let space = space();
        let c = valid_config(&m, &space);
        let retried = measure_with_retry(&mut m, &space, &c, &RetryPolicy::default());
        assert_eq!(retried.attempts, 1);
        assert_eq!(retried.result.outcome, Outcome::Faulted(MeasureFault::DeviceDead));
    }

    #[test]
    fn transient_loss_recovers_within_the_attempt_budget() {
        // A lost device swallows TRANSIENT_LOSS_SPAN requests; with enough
        // attempts the retry loop rides it out and still gets a number.
        let gpu = database::find("Titan Xp").unwrap().clone();
        let rates = FaultRates {
            device_lost: 0.4,
            ..FaultRates::none()
        };
        let mut m = Measurer::with_faults(gpu, 1, &FaultPlan::uniform(21, rates));
        let space = space();
        let c = valid_config(&m, &space);
        let policy = RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        };
        let mut recovered = 0;
        for _ in 0..50 {
            let retried = measure_with_retry(&mut m, &space, &c, &policy);
            if retried.attempts > 1 && retried.result.outcome.is_valid() {
                recovered += 1;
            }
        }
        assert!(recovered > 0, "no retried measurement ever recovered");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_s: 0.5,
            backoff_factor: 2.0,
        };
        assert_eq!(policy.backoff_s(1), 0.5);
        assert_eq!(policy.backoff_s(2), 1.0);
        assert_eq!(policy.backoff_s(3), 2.0);
    }
}
