//! Hard validity rules: the resource limits a CUDA launch must satisfy.
//!
//! §4.3: "There is an intrinsic issue of the search space provided by TVM
//! where there exists numerous invalid configurations leading to large delays
//! in compilation speed and waste in GPU hours." These are exactly the
//! configurations that violate the launch limits below — they compile, get
//! shipped to the device, and fail at launch, wasting measurement time.

use glimpse_gpu_spec::GpuSpec;
use glimpse_space::KernelShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum registers per thread the compiler will allocate before the
/// launch becomes unbuildable (CUDA architectural limit).
pub const MAX_REGS_PER_THREAD: u64 = 255;

/// Why a configuration is invalid on a given GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvalidReason {
    /// `threads_per_block` exceeds the device's block limit.
    TooManyThreads,
    /// Block shared-memory allocation exceeds the per-block limit.
    SharedMemExceeded,
    /// Per-thread register demand exceeds the architectural cap.
    RegistersPerThreadExceeded,
    /// One block's register demand exceeds the SM register file.
    RegisterFileExceeded,
    /// The performance model vetoed a launch the resource checks admitted
    /// (model/validity disagreement — surfaced instead of panicking).
    ModelRejected,
}

impl InvalidReason {
    /// All reasons, for exhaustive reporting.
    pub const ALL: [InvalidReason; 5] = [
        InvalidReason::TooManyThreads,
        InvalidReason::SharedMemExceeded,
        InvalidReason::RegistersPerThreadExceeded,
        InvalidReason::RegisterFileExceeded,
        InvalidReason::ModelRejected,
    ];
}

impl fmt::Display for InvalidReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            InvalidReason::TooManyThreads => "threads per block exceed device limit",
            InvalidReason::SharedMemExceeded => "shared memory exceeds per-block limit",
            InvalidReason::RegistersPerThreadExceeded => "registers per thread exceed 255",
            InvalidReason::RegisterFileExceeded => "block registers exceed SM register file",
            InvalidReason::ModelRejected => "performance model rejected the launch",
        };
        f.write_str(text)
    }
}

/// Checks a kernel shape against a GPU's launch limits.
///
/// # Errors
///
/// Returns the first violated limit, in the order the CUDA driver would
/// reject them (threads, shared memory, registers).
pub fn check(gpu: &GpuSpec, shape: &KernelShape) -> Result<(), InvalidReason> {
    if shape.threads_per_block > u64::from(gpu.max_threads_per_block) {
        return Err(InvalidReason::TooManyThreads);
    }
    if shape.shared_bytes > gpu.max_shared_mem_per_block_bytes() {
        return Err(InvalidReason::SharedMemExceeded);
    }
    if shape.regs_per_thread > MAX_REGS_PER_THREAD {
        return Err(InvalidReason::RegistersPerThreadExceeded);
    }
    if shape.regs_per_block() > u64::from(gpu.registers_per_sm) {
        return Err(InvalidReason::RegisterFileExceeded);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_gpu_spec::database;
    use glimpse_space::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shape_with(threads: u64, shared: u64, regs: u64) -> KernelShape {
        KernelShape {
            threads_per_block: threads,
            vthreads: 1,
            blocks: 10,
            shared_bytes: shared,
            regs_per_thread: regs,
            work_per_thread: 4,
            inner_x: 2,
            tx: 32,
            reduce_tile: 4,
            reduce_len: 64,
            unroll_steps: 0,
            explicit_unroll: false,
            block_load_bytes: 1024.0,
            output_bytes: 4096.0,
        }
    }

    #[test]
    fn accepts_modest_kernel() {
        let gpu = database::find("Titan Xp").unwrap();
        assert!(check(gpu, &shape_with(256, 16 * 1024, 64)).is_ok());
    }

    #[test]
    fn rejects_each_limit() {
        let gpu = database::find("RTX 2070 Super").unwrap();
        assert_eq!(check(gpu, &shape_with(2048, 1024, 32)), Err(InvalidReason::TooManyThreads));
        assert_eq!(check(gpu, &shape_with(256, 128 * 1024, 32)), Err(InvalidReason::SharedMemExceeded));
        assert_eq!(
            check(gpu, &shape_with(256, 1024, 300)),
            Err(InvalidReason::RegistersPerThreadExceeded)
        );
        assert_eq!(check(gpu, &shape_with(1024, 1024, 200)), Err(InvalidReason::RegisterFileExceeded));
    }

    #[test]
    fn limits_differ_across_generations() {
        // 64 KiB of block shared memory is valid on Turing (64) and Ampere
        // (100) but not on Pascal (48): the very same config flips validity
        // across GPUs, the hardware-dependence Glimpse's sampler learns.
        let shape = shape_with(256, 64 * 1024, 64);
        assert!(check(database::find("RTX 2070 Super").unwrap(), &shape).is_ok());
        assert!(check(database::find("RTX 3090").unwrap(), &shape).is_ok());
        assert_eq!(
            check(database::find("Titan Xp").unwrap(), &shape),
            Err(InvalidReason::SharedMemExceeded)
        );
    }

    #[test]
    fn uniform_sampling_yields_meaningful_invalid_fraction() {
        // §4.3 reports roughly 10% invalid measurements in current
        // compilers; raw uniform sampling is noisier — just check the
        // invalid set is substantial but not dominant.
        let gpu = database::find("RTX 2080 Ti").unwrap();
        let space = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let mut rng = StdRng::seed_from_u64(1);
        let total = 2000;
        let invalid = (0..total)
            .filter(|_| {
                let c = space.sample_uniform(&mut rng);
                check(gpu, &space.kernel_shape(&c)).is_err()
            })
            .count();
        let frac = invalid as f64 / total as f64;
        assert!(frac > 0.05 && frac < 0.9, "invalid fraction {frac}");
    }

    #[test]
    fn display_is_informative() {
        for reason in InvalidReason::ALL {
            assert!(!reason.to_string().is_empty());
        }
    }
}
