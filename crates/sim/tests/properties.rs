//! Property tests for the performance model's physical invariants: the
//! simulator can be synthetic, but it must not be *unphysical*, or the
//! tuners would learn artifacts instead of schedules.

use glimpse_gpu_spec::{database, GpuSpec};
use glimpse_sim::{validity, PerfModel};
use glimpse_space::templates;
use glimpse_tensor_prog::{models, Conv2dSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn conv_space() -> glimpse_space::SearchSpace {
    templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn throughput_never_exceeds_peak(seed in 0u64..1000, gpu_idx in 0usize..24) {
        let gpu = &database::all()[gpu_idx];
        let model = PerfModel::new(gpu.clone());
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        if let Some(latency) = model.latency_s(&space, &config) {
            // Effective (algorithm) FLOPs per second cannot beat the ALUs.
            let eff = space.op().effective_flops(space.template());
            prop_assert!(eff / latency <= gpu.fp32_gflops * 1e9 * 1.0001);
        }
    }

    #[test]
    fn more_bandwidth_never_hurts(seed in 0u64..500) {
        let base = database::find("RTX 2070 Super").unwrap().clone();
        let mut fat = base.clone();
        fat.mem_bandwidth_gb_s *= 2.0;
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        let a = PerfModel::new(base).latency_s(&space, &config);
        let b = PerfModel::new(fat).latency_s(&space, &config);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!(b <= a * 1.0001, "doubling bandwidth slowed the kernel: {a} -> {b}");
        }
    }

    #[test]
    fn higher_clock_never_hurts_compute(seed in 0u64..500) {
        let base = database::find("GTX 1080").unwrap().clone();
        let mut fast = base.clone();
        fast.boost_clock_mhz *= 1.2;
        fast.fp32_gflops *= 1.2;
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        let shape = space.kernel_shape(&config);
        if validity::check(&base, &shape).is_err() {
            return Ok(());
        }
        let slow_model = PerfModel::new(base);
        let fast_model = PerfModel::new(fast);
        let eff = space.op().effective_flops(space.template());
        let bytes = space.op().compulsory_bytes();
        let a = slow_model.breakdown(space.template(), eff, bytes, &shape);
        let b = fast_model.breakdown(space.template(), eff, bytes, &shape);
        // Compute side must not regress; the memory side is clock-free.
        // (The latency-hiding knee shifts with clock, but its normalization
        // keeps the product bounded by the raw clock gain.)
        prop_assert!(b.compute_s <= a.compute_s * 1.05, "compute {} -> {}", a.compute_s, b.compute_s);
    }

    #[test]
    fn validity_is_monotone_in_limits(seed in 0u64..500) {
        // A config valid on a small GPU stays valid on a strictly roomier one.
        let small = database::find("RTX 2070 Super").unwrap(); // Turing: 64 KiB blocks
        let big = database::find("RTX 3090").unwrap(); // Ampere: 100 KiB blocks, more threads/SM
        let space = conv_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        let shape = space.kernel_shape(&config);
        if validity::check(small, &shape).is_ok() {
            prop_assert!(validity::check(big, &shape).is_ok(), "roomier GPU rejected a valid config");
        }
    }
}

#[test]
fn every_task_has_reachable_valid_configs_on_every_evaluation_gpu() {
    for gpu in database::evaluation_gpus() {
        let model = PerfModel::new(gpu.clone());
        for dnn in models::evaluation_models() {
            for task in dnn.tasks() {
                let space = templates::space_for_task(task);
                let mut rng = StdRng::seed_from_u64(1);
                let found = (0..4000).any(|_| {
                    let c = space.sample_uniform(&mut rng);
                    model.throughput_gflops(&space, &c).is_some()
                });
                assert!(found, "{} has no valid config in 4000 samples on {}", task, gpu.name);
            }
        }
    }
}

#[test]
fn oracle_ranking_is_stable_across_noise_seeds() {
    // The measurement noise must not reorder clearly different configs.
    let gpu: &GpuSpec = database::find("Titan Xp").unwrap();
    let space = conv_space();
    let model = PerfModel::new(gpu.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let mut configs = Vec::new();
    while configs.len() < 2 {
        let c = space.sample_uniform(&mut rng);
        if model.throughput_gflops(&space, &c).is_some() {
            configs.push(c);
        }
    }
    let (a, b) = (&configs[0], &configs[1]);
    let ga = model.throughput_gflops(&space, a).unwrap();
    let gb = model.throughput_gflops(&space, b).unwrap();
    // Only check when the gap is far beyond the 3% noise.
    if (ga - gb).abs() / ga.max(gb) > 0.3 {
        for seed in 0..20 {
            let mut m = glimpse_sim::Measurer::new(gpu.clone(), seed);
            let ra = m.measure(&space, a).outcome.gflops().unwrap();
            let rb = m.measure(&space, b).outcome.gflops().unwrap();
            assert_eq!(ra > rb, ga > gb, "noise reordered well-separated configs");
        }
    }
}
