//! `glimpse` — command-line interface to the Glimpse reproduction.
//!
//! ```text
//! glimpse gpus                      list the data-sheet database
//! glimpse models                    list the model zoo and task counts
//! glimpse blueprint <gpu>           embed a GPU and explain the embedding
//! glimpse sheet <file>              parse a textual data sheet
//! glimpse sweep                     Blueprint size vs information loss
//! glimpse doctor <dir>              verify artifact envelopes, print health
//! glimpse tune <model> <gpu> [opts] tune a model (or one task) on a GPU
//!   --tuner <glimpse|autotvm|chameleon|dgp|random|genetic>   (default glimpse)
//!   --budget <n>                    measurements per task     (default 128)
//!   --task <i>                      tune only task i
//!   --artifacts <path>              load/store meta-trained artifacts
//!   --full-training                 full-size offline training (slow)
//!   --fault-plan <spec>             inject measurement faults
//!   --fault-seed <n>                fault stream seed
//!   --threads <n>                   search worker threads (0 = auto)
//! glimpse experiment <model> [opts] tune one task across a device fleet
//! ```

#![forbid(unsafe_code)]

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gpus") => commands::gpus(),
        Some("models") => commands::models(),
        Some("blueprint") => commands::blueprint(&args[1..]),
        Some("sheet") => commands::sheet(&args[1..]),
        Some("sweep") => commands::sweep(),
        Some("doctor") => commands::doctor(&args[1..]),
        Some("tune") => commands::tune(&args[1..]),
        Some("experiment") => commands::experiment(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `glimpse help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
