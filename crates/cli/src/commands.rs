//! Implementations of the `glimpse` subcommands.

use glimpse_core::artifacts::{GlimpseArtifacts, TrainingOptions, ARTIFACTS_ENVELOPE};
use glimpse_core::blueprint::BlueprintCodec;
use glimpse_core::corpus::CORPUS_ENVELOPE;
use glimpse_core::explain;
use glimpse_core::health::{cause_of, ResolvedArtifacts};
use glimpse_core::tuner::{GlimpseConfig, GlimpseTuner};
use glimpse_durable::atomic_write;
use glimpse_durable::envelope::{self, EnvelopeSpec, Integrity};
use glimpse_gpu_spec::{database, datasheet, snapshot, GpuSpec};
use glimpse_mlkit::parallel;
use glimpse_sim::calibrate::CALIBRATION_ENVELOPE;
use glimpse_sim::{DeviceError, DevicePool, DeviceStatus, FaultPlan, Measurer, PoolPolicy};
use glimpse_space::logfmt::TUNING_LOG_ENVELOPE;
use glimpse_space::{templates, SearchSpace};
use glimpse_supervise::{signal, Abandonment, CancelToken, CellReport, CellStatus, DegradationReport, HealthReport, Heartbeat, Watchdog};
use glimpse_tensor_prog::{models, Task, TemplateKind};
use glimpse_tuners::autotvm::AutoTvmTuner;
use glimpse_tuners::chameleon::ChameleonTuner;
use glimpse_tuners::dgp::DgpTuner;
use glimpse_tuners::genetic::GeneticTuner;
use glimpse_tuners::random::RandomTuner;
use glimpse_tuners::{run_supervised, Budget, CheckpointSpec, RunControl, SupervisedOutcome, TuneContext, Tuner, TuningOutcome};
use std::path::{Path, PathBuf};

/// Usage text for `glimpse help`.
pub const USAGE: &str = "\
glimpse — hardware-aware neural compilation (DAC'22 reproduction)

  glimpse gpus                      list the data-sheet database
  glimpse models                    list the model zoo and task counts
  glimpse blueprint <gpu>           embed a GPU and explain the embedding
  glimpse sheet <file>              parse a textual data sheet
  glimpse sweep                     Blueprint size vs information loss (Fig. 8)
  glimpse doctor <dir>              verify every artifact envelope under a
                                    directory and print the component health
                                    table; nonzero exit on any damage
  glimpse tune <model> <gpu> [opts] tune a model (or one task) on a GPU
    --tuner <glimpse|autotvm|chameleon|dgp|random|genetic>   default: glimpse
    --budget <n>                    measurements per task      default: 128
    --task <i>                      tune only task i
    --artifacts <path>              load/store meta-trained artifacts
    --full-training                 full-size offline training (slow)
  glimpse experiment <model> [opts] tune one task across a device fleet,
                                    reassigning cells off dead devices
    --task <i>                      task to tune               default: 0
    --tuner <autotvm|chameleon|dgp|random|genetic>            default: autotvm
    --budget <n>                    measurements per device    default: 64
    --gpus <a,b,c>                  fleet (default: the 4 evaluation GPUs)

  options shared by tune and experiment:
    --fault-plan <spec>             inject measurement faults, e.g.
                                    timeout=0.1,launch=0.05,lost=0.02,dead=0.01;
                                    kind@device=rate overrides one device,
                                    e.g. 'dead@RTX 2080 Ti=1.0'; artifact
                                    faults damage the saved artifact bundle
                                    before loading: artifact_corrupt_at=N,
                                    artifact_truncate_at=N,
                                    artifact_version_bump=1, artifact_delete=1
                                    (the run then completes degraded on the
                                    fallback ladders, never aborts)
    --fault-seed <n>                fault stream seed          default: 0
    --pool-policy <spec>            fleet health thresholds, e.g.
                                    quarantine=3,probes=5,probe_cost=0.5
    --threads <n>                   search worker threads (0 = auto); also
                                    via GLIMPSE_THREADS       default: auto
    --checkpoint-dir <dir>          journal every trial for crash-safe resume
    --resume                        continue an interrupted run from <dir>
                                    (completed cells are not re-measured)
    --deadline-s <s>                per-cell cap on simulated GPU seconds;
                                    over-deadline cells degrade, not fail
    --max-wall-s <s>                campaign-wide simulated-second budget
    --stall-timeout-s <s>           real-wall-clock watchdog: cancel the
                                    campaign when no trial completes for <s>
                                    seconds (0 = off)          default: off
    --report <path>                 where to write degradation.json
                                    default: <checkpoint-dir>/degradation.json

Results are bit-identical for a fixed seed at any --threads value, and a
checkpointed run resumed after a crash replays to the same result. SIGINT or
SIGTERM stops at the next trial boundary, flushes the journal and snapshot,
writes the degradation report, and exits 0 with a resume command; a second
signal hard-exits immediately.
";

/// `glimpse gpus`
pub fn gpus() -> Result<(), String> {
    println!(
        "{:<18} {:<16} {:>5} {:>7} {:>10} {:>9} {:>7}",
        "name", "generation", "SMs", "cores", "GFLOPS", "GB/s", "TDP W"
    );
    for gpu in database::all() {
        println!(
            "{:<18} {:<16} {:>5} {:>7} {:>10.0} {:>9.0} {:>7.0}",
            gpu.name,
            format!("{} ({})", gpu.generation, gpu.sm_arch),
            gpu.sm_count,
            gpu.total_cores(),
            gpu.fp32_gflops,
            gpu.mem_bandwidth_gb_s,
            gpu.tdp_w
        );
    }
    Ok(())
}

/// `glimpse models`
pub fn models() -> Result<(), String> {
    let mut all = models::evaluation_models();
    all.extend(models::extended_models());
    for model in all {
        let conv = model.tasks().iter().filter(|t| t.template == TemplateKind::Conv2dDirect).count();
        let wino = model.tasks().iter().filter(|t| t.template == TemplateKind::Conv2dWinograd).count();
        let dense = model.tasks().iter().filter(|t| t.template == TemplateKind::Dense).count();
        println!(
            "{:<16} {:>2} tasks ({conv} conv2d, {wino} winograd, {dense} dense), {:>6.2} GFLOP/inference",
            model.name(),
            model.tasks().len(),
            model.total_flops() / 1e9
        );
        for task in model.tasks() {
            println!("    L{:<3} [{}] {}", task.id.index, task.template, task.op);
        }
    }
    Ok(())
}

fn find_gpu(name: &str) -> Result<&'static GpuSpec, String> {
    database::find(name).ok_or_else(|| format!("unknown GPU {name:?}; `glimpse gpus` lists the database"))
}

/// `glimpse blueprint <gpu>`
pub fn blueprint(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("usage: glimpse blueprint <gpu>")?;
    let gpu = find_gpu(name)?;
    let population: Vec<&GpuSpec> = database::training_gpus(&gpu.name);
    let k = BlueprintCodec::recommended_components(&population);
    let codec = BlueprintCodec::fit(&population, k).map_err(|e| e.to_string())?;
    let bp = codec.encode(gpu);
    println!("{bp}");
    println!(
        "values: {:?}",
        bp.values.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    let decoded = codec.decode(&bp);
    println!("\ndecoded data sheet (leave-one-out codec, {} components):", k);
    for name in glimpse_gpu_spec::features::FEATURE_NAMES {
        let truth = glimpse_gpu_spec::FeatureVector::from_spec(gpu).get(name).unwrap_or(0.0);
        let dec = decoded.get(name).unwrap_or(0.0);
        println!("  {name:<24} sheet {truth:>12.1}   decoded {dec:>12.1}");
    }
    // Prior sensitivity via a quickly trained artifact set.
    println!("\ntraining fast artifacts for sensitivity analysis ...");
    let artifacts = GlimpseArtifacts::train_with(&population, TrainingOptions::fast(), 42).map_err(|e| e.to_string())?;
    let space = templates::conv2d_direct_space(&glimpse_tensor_prog::Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
    let report = explain::explain(
        &artifacts.codec,
        artifacts.prior(space.template()),
        &space,
        &artifacts.encode(gpu),
        0.5,
    );
    println!("prior sensitivity per embedding dimension (3x3 conv template):");
    for dim in report.ranked() {
        let features: Vec<String> = dim.top_features.iter().map(|(n, _)| n.clone()).collect();
        println!(
            "  dim {:<2} TV {:.4}  loads on: {}",
            dim.dim,
            dim.prior_sensitivity,
            features.join(", ")
        );
    }
    Ok(())
}

/// `glimpse sheet <file>`
pub fn sheet(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: glimpse sheet <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = datasheet::parse_sheet(&text).map_err(|e| e.to_string())?;
    println!("parsed: {spec}");
    let population: Vec<&GpuSpec> = database::all().iter().collect();
    let k = BlueprintCodec::recommended_components(&population);
    let codec = BlueprintCodec::fit(&population, k).map_err(|e| e.to_string())?;
    let bp = codec.encode(&spec);
    println!(
        "blueprint ({} components): {:?}",
        k,
        bp.values.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    Ok(())
}

/// `glimpse sweep`
pub fn sweep() -> Result<(), String> {
    let population: Vec<&GpuSpec> = database::all().iter().collect();
    println!("{:<12} {:>8} {:>14} {:>15}", "components", "size", "RMSE (z)", "variance lost");
    for point in BlueprintCodec::sweep(&population) {
        println!(
            "{:<12} {:>7.1}% {:>14.4} {:>14.2}%",
            point.components,
            point.size_fraction * 100.0,
            point.rmse,
            (1.0 - point.explained_variance) * 100.0
        );
    }
    println!("recommended: {} components", BlueprintCodec::recommended_components(&population));
    Ok(())
}

#[derive(Debug)]
struct TuneOptions {
    model: String,
    gpu: String,
    tuner: String,
    budget: usize,
    task: Option<usize>,
    artifacts_path: Option<PathBuf>,
    full_training: bool,
    run: RunSettings,
}

/// Parses a `--threads` value (`0` = auto-detect).
fn parse_threads_flag(value: &str) -> Result<usize, String> {
    value.trim().parse().map_err(|_| "--threads must be a non-negative integer".into())
}

/// Parses a seconds-valued flag: a finite, non-negative number.
fn parse_seconds_flag(flag: &str, value: &str) -> Result<f64, String> {
    let seconds: f64 = value.trim().parse().map_err(|_| format!("{flag} must be a number of seconds"))?;
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(format!("{flag} must be finite and >= 0, got {seconds}"));
    }
    Ok(seconds)
}

/// The supervision and fault-injection flags `tune` and `experiment` share,
/// collected during parsing. [`SharedRunFlags::finish`] validates the
/// combination — including the "--resume requires --checkpoint-dir" rule —
/// exactly once for both subcommands.
#[derive(Debug, Default)]
struct SharedRunFlags {
    fault_spec: Option<String>,
    fault_seed: Option<String>,
    pool_policy: Option<String>,
    threads: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    deadline_s: Option<f64>,
    max_wall_s: Option<f64>,
    stall_timeout_s: Option<f64>,
    report: Option<PathBuf>,
}

impl SharedRunFlags {
    /// Consumes `arg` (pulling its value from `it`) when it is one of the
    /// shared flags. `Ok(false)` means the flag belongs to the subcommand.
    fn try_parse(&mut self, arg: &str, it: &mut std::slice::Iter<'_, String>) -> Result<bool, String> {
        match arg {
            "--fault-plan" => self.fault_spec = Some(it.next().ok_or("--fault-plan needs a value")?.clone()),
            "--fault-seed" => self.fault_seed = Some(it.next().ok_or("--fault-seed needs a value")?.clone()),
            "--pool-policy" => self.pool_policy = Some(it.next().ok_or("--pool-policy needs a value")?.clone()),
            "--threads" => self.threads = Some(parse_threads_flag(it.next().ok_or("--threads needs a value")?)?),
            "--checkpoint-dir" => {
                self.checkpoint_dir = Some(PathBuf::from(it.next().ok_or("--checkpoint-dir needs a value")?));
            }
            "--resume" => self.resume = true,
            "--deadline-s" => {
                self.deadline_s = Some(parse_seconds_flag("--deadline-s", it.next().ok_or("--deadline-s needs a value")?)?);
            }
            "--max-wall-s" => {
                self.max_wall_s = Some(parse_seconds_flag("--max-wall-s", it.next().ok_or("--max-wall-s needs a value")?)?);
            }
            "--stall-timeout-s" => {
                self.stall_timeout_s = Some(parse_seconds_flag(
                    "--stall-timeout-s",
                    it.next().ok_or("--stall-timeout-s needs a value")?,
                )?);
            }
            "--report" => self.report = Some(PathBuf::from(it.next().ok_or("--report needs a value")?)),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Validates the flag combination and folds the fault and pool specs
    /// into one [`FaultPlan`].
    fn finish(self) -> Result<RunSettings, String> {
        if self.resume && self.checkpoint_dir.is_none() {
            return Err("--resume requires --checkpoint-dir".into());
        }
        let mut faults = parse_fault_flags(self.fault_spec.as_deref(), self.fault_seed.as_deref())?;
        if let Some(spec) = &self.pool_policy {
            faults = faults.with_pool_policy(PoolPolicy::parse(spec)?);
        }
        Ok(RunSettings {
            faults,
            threads: self.threads,
            checkpoint_dir: self.checkpoint_dir,
            resume: self.resume,
            deadline_s: self.deadline_s,
            max_wall_s: self.max_wall_s,
            stall_timeout_s: self.stall_timeout_s,
            report: self.report,
        })
    }
}

/// Validated shared settings for one supervised campaign.
#[derive(Debug)]
struct RunSettings {
    faults: FaultPlan,
    threads: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    deadline_s: Option<f64>,
    max_wall_s: Option<f64>,
    stall_timeout_s: Option<f64>,
    report: Option<PathBuf>,
}

/// Campaign-level supervision: the process-wide signal token, the shared
/// heartbeat the cells beat on every consumed trial, and (when
/// `--stall-timeout-s` is set) the real-wall-clock watchdog that trips the
/// token when the heartbeat goes flat.
struct Supervisor {
    interrupt: CancelToken,
    heartbeat: Heartbeat,
    _watchdog: Option<Watchdog>,
}

impl Supervisor {
    /// Installs the signal handlers and arms the watchdog.
    fn start(settings: &RunSettings) -> Self {
        let interrupt = signal::install();
        let heartbeat = Heartbeat::new();
        let watchdog = settings
            .stall_timeout_s
            .filter(|s| *s > 0.0)
            .map(|s| Watchdog::spawn(heartbeat.clone(), interrupt.clone(), std::time::Duration::from_secs_f64(s)));
        Self {
            interrupt,
            heartbeat,
            _watchdog: watchdog,
        }
    }

    /// Builds one cell's [`RunControl`]: fresh per-cell token, campaign
    /// interrupt forwarded in, deadlines from the settings with the wall
    /// budget reduced by what earlier cells already spent.
    fn control(&self, settings: &RunSettings, wall_spent_s: f64) -> RunControl {
        RunControl::none()
            .interrupted_by(self.interrupt.clone())
            .heartbeat(self.heartbeat.clone())
            .deadline_s(settings.deadline_s)
            .wall_deadline_s(settings.max_wall_s.map(|w| (w - wall_spent_s).max(0.0)))
    }
}

/// Settles a cell that ran without a journal into the same typed
/// [`SupervisedOutcome`] the checkpointed path reports.
fn settle_unjournaled(control: &RunControl, outcome: TuningOutcome, device_dead: bool) -> SupervisedOutcome {
    let deadline_slack_s = [control.deadline_s, control.wall_deadline_s]
        .into_iter()
        .flatten()
        .reduce(f64::min)
        .map(|tightest| tightest - outcome.gpu_seconds);
    let component_fallback = outcome.health.as_ref().is_some_and(HealthReport::any_degraded);
    SupervisedOutcome {
        status: CellStatus::settle_with_health(control.cancel.reason(), device_dead, component_fallback),
        deadline_slack_s,
        outcome,
    }
}

/// One degradation-report row for a finished cell.
fn cell_report(cell: String, device: &str, supervised: &SupervisedOutcome, quarantines: u64) -> CellReport {
    CellReport {
        cell,
        device: device.to_owned(),
        status: supervised.status.clone(),
        measurements: supervised.outcome.measurements,
        faults_absorbed: supervised.outcome.faulted_measurements,
        retries: supervised.outcome.retried_attempts,
        quarantines,
        gpu_seconds: supervised.outcome.gpu_seconds,
        best_gflops: supervised.outcome.best_gflops,
        deadline_slack_s: supervised.deadline_slack_s,
        health: supervised.outcome.health.clone(),
    }
}

/// A row for a cell that never ran (shutdown before its turn, or a device
/// that refused every job).
fn empty_cell_report(cell: String, device: &str, status: CellStatus) -> CellReport {
    CellReport {
        cell,
        device: device.to_owned(),
        status,
        measurements: 0,
        faults_absorbed: 0,
        retries: 0,
        quarantines: 0,
        gpu_seconds: 0.0,
        best_gflops: 0.0,
        deadline_slack_s: None,
        health: None,
    }
}

/// Short human-readable status label for the result tables.
fn status_label(status: &CellStatus) -> String {
    match status {
        CellStatus::Complete => "complete".into(),
        CellStatus::Degraded(d) => format!("degraded: {d:?}"),
        CellStatus::Abandoned(a) => format!("abandoned: {a:?}"),
        CellStatus::Reassigned { to } => format!("reassigned to {to}"),
        CellStatus::NotStarted => "not started".into(),
    }
}

/// Writes `degradation.json`, prints the campaign verdict, and prints the
/// resume command when a degraded campaign left resumable journals behind.
fn finish_campaign(report: &DegradationReport, settings: &RunSettings, resume_hint: &str) -> Result<(), String> {
    let dest = settings
        .report
        .clone()
        .or_else(|| settings.checkpoint_dir.as_ref().map(|d| d.join("degradation.json")));
    if let Some(path) = &dest {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        atomic_write(path, report.to_json().as_bytes()).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("degradation report: {}", path.display());
    }
    if !report.all_complete() {
        let incomplete = report.cells.iter().filter(|c| !c.status.is_complete()).count();
        eprintln!("campaign degraded: {incomplete} of {} cells did not complete", report.cells.len());
        if settings.checkpoint_dir.is_some() {
            eprintln!("resume with: {resume_hint}");
        }
    }
    Ok(())
}

/// Installs the worker-count override for the search hot paths. Results are
/// bit-identical at any thread count, so this only changes wall-clock time.
fn apply_threads(threads: Option<usize>) {
    if let Some(n) = threads {
        parallel::set_default_threads(n);
    }
}

/// Parses `--fault-plan`/`--fault-seed` values into a plan (seed applied
/// after the rate spec so flag order doesn't matter).
fn parse_fault_flags(spec: Option<&str>, seed: Option<&str>) -> Result<FaultPlan, String> {
    let mut plan = match spec {
        Some(s) => FaultPlan::parse(s)?,
        None => FaultPlan::none(),
    };
    if let Some(s) = seed {
        plan.seed = s.parse().map_err(|_| "--fault-seed must be an integer")?;
    }
    Ok(plan)
}

fn parse_tune_options(args: &[String]) -> Result<TuneOptions, String> {
    let mut positional = Vec::new();
    let mut shared = SharedRunFlags::default();
    let mut tuner = "glimpse".to_owned();
    let mut budget = 128usize;
    let mut task = None;
    let mut artifacts_path = None;
    let mut full_training = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if shared.try_parse(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--tuner" => tuner = it.next().ok_or("--tuner needs a value")?.clone(),
            "--budget" => {
                budget = it
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|_| "--budget must be an integer")?;
            }
            "--task" => {
                task = Some(
                    it.next()
                        .ok_or("--task needs a value")?
                        .parse()
                        .map_err(|_| "--task must be an integer")?,
                );
            }
            "--artifacts" => artifacts_path = Some(PathBuf::from(it.next().ok_or("--artifacts needs a value")?)),
            "--full-training" => full_training = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() != 2 {
        return Err("usage: glimpse tune <model> <gpu> [options]".into());
    }
    Ok(TuneOptions {
        model: positional[0].clone(),
        gpu: positional[1].clone(),
        tuner,
        budget,
        task,
        artifacts_path,
        full_training,
        run: shared.finish()?,
    })
}

/// Resolves the Glimpse artifact bundle for a tune run. A damaged, drifted,
/// or missing bundle never aborts the campaign: the load degrades into a
/// fallback [`HealthReport`] and the tuner runs its ladders. Armed artifact
/// faults (chaos testing) are applied to the saved bundle before it is read
/// back, and suppress retraining so the injected damage is what gets loaded.
fn obtain_artifacts(gpu: &GpuSpec, options: &TuneOptions) -> Result<ResolvedArtifacts, String> {
    if let Some(path) = &options.artifacts_path {
        let faults = options.run.faults.artifact_faults();
        if faults.any() {
            faults
                .apply(path)
                .map_err(|e| format!("injecting artifact faults into {}: {e}", path.display()))?;
            eprintln!("artifact faults applied to {}", path.display());
        }
        if path.exists() || faults.any() {
            eprintln!("loading artifacts from {}", path.display());
            let resolved = ResolvedArtifacts::load(path);
            if resolved.health.any_degraded() {
                eprintln!(
                    "artifact bundle at {} is unusable; running fallbacks for: {}",
                    path.display(),
                    resolved.health.degraded_names().join(", ")
                );
            }
            return Ok(resolved);
        }
    }
    let training = if options.full_training {
        TrainingOptions::default()
    } else {
        TrainingOptions::fast()
    };
    eprintln!(
        "meta-training artifacts (leave-one-out{}) ...",
        if options.full_training { ", full size" } else { ", fast preset" }
    );
    let population = database::training_gpus(&gpu.name);
    let artifacts = GlimpseArtifacts::train_with(&population, training, 42).map_err(|e| e.to_string())?;
    if let Some(path) = &options.artifacts_path {
        artifacts.save(path).map_err(|e| e.to_string())?;
        eprintln!("saved artifacts to {}", path.display());
    }
    Ok(ResolvedArtifacts::healthy(artifacts))
}

/// `glimpse tune <model> <gpu> [options]`
pub fn tune(args: &[String]) -> Result<(), String> {
    let options = parse_tune_options(args)?;
    apply_threads(options.run.threads);
    let gpu = find_gpu(&options.gpu)?;
    let model = models::find(&options.model).ok_or_else(|| format!("unknown model {:?}; `glimpse models` lists the zoo", options.model))?;
    let needs_artifacts = options.tuner == "glimpse";
    let artifacts = if needs_artifacts {
        Some(obtain_artifacts(gpu, &options)?)
    } else {
        None
    };
    // The resolved ladder rungs go into every cell's journal header, so a
    // --resume under a different degradation state is a typed refusal.
    let rungs: Vec<(String, u8)> = artifacts.as_ref().map(|r| r.health.rung_fingerprint()).unwrap_or_default();

    let tasks: Vec<usize> = match options.task {
        Some(i) if i < model.tasks().len() => vec![i],
        Some(i) => return Err(format!("task {i} out of range (model has {} tasks)", model.tasks().len())),
        None => (0..model.tasks().len()).collect(),
    };

    if options.run.faults.any() {
        eprintln!(
            "injecting faults (seed {}): {:?}",
            options.run.faults.seed,
            options.run.faults.rates_for(&gpu.name)
        );
    }
    let supervisor = Supervisor::start(&options.run);
    let mut report = DegradationReport::new(format!("tune {} on {}", options.model, options.gpu));
    println!(
        "{:<5} {:<16} {:>10} {:>8} {:>9} {:>8} {:>11}  status",
        "task", "template", "GFLOPS", "meas.", "invalid", "faulted", "GPU seconds"
    );
    let mut total_s = 0.0;
    for i in tasks {
        let task = &model.tasks()[i];
        let cell_name = format!("task{i}");
        if supervisor.interrupt.is_cancelled() {
            // Shutdown landed before this cell's turn: record it untouched
            // so the resume command knows what is left.
            report.push(empty_cell_report(cell_name, &gpu.name, CellStatus::NotStarted));
            continue;
        }
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::with_faults(gpu.clone(), 7, &options.run.faults);
        let budget = Budget::measurements(options.budget);
        let control = supervisor.control(&options.run, total_s);
        let supervised = if let Some(root) = &options.run.checkpoint_dir {
            let cell = root.join(&cell_name);
            let spec = CheckpointSpec::new(&cell)
                .resuming(options.run.resume)
                .with_storage(options.run.faults.storage_faults())
                .with_faults(options.run.faults.seed, options.run.faults.rates_for(&gpu.name))
                .with_rungs(&rungs);
            let mut tuner = build_tuner(&options.tuner, artifacts.as_ref(), gpu)?;
            run_supervised(&mut *tuner, &spec, task, &space, &mut measurer, budget, 7, &control).map_err(|e| e.to_string())?
        } else {
            let ctx = TuneContext::new(task, &space, &mut measurer, budget, 7).with_control(control.clone());
            let outcome = run_tuner(&options.tuner, artifacts.as_ref(), gpu, ctx)?;
            settle_unjournaled(&control, outcome, measurer.is_device_dead())
        };
        total_s += supervised.outcome.gpu_seconds;
        println!(
            "L{:<4} {:<16} {:>10.0} {:>8} {:>9} {:>8} {:>11.1}  {}",
            i,
            task.template.to_string(),
            supervised.outcome.best_gflops,
            supervised.outcome.measurements,
            supervised.outcome.invalid_measurements,
            supervised.outcome.faulted_measurements,
            supervised.outcome.gpu_seconds,
            status_label(&supervised.status)
        );
        if let Some(best) = &supervised.outcome.best_config {
            println!("      {}", space.describe(best));
        }
        if measurer.is_device_dead() {
            eprintln!("device {} died during task {i}; remaining tasks will report no kernels", gpu.name);
        }
        report.push(cell_report(cell_name, &gpu.name, &supervised, 0));
    }
    println!("\ntotal simulated GPU time: {:.1} s ({:.2} h)", total_s, total_s / 3600.0);
    let resume_hint = match &options.run.checkpoint_dir {
        Some(dir) => {
            let mut hint = format!(
                "glimpse tune {} {:?} --tuner {} --budget {} --checkpoint-dir {:?} --resume",
                options.model,
                options.gpu,
                options.tuner,
                options.budget,
                dir.display().to_string()
            );
            if let Some(i) = options.task {
                hint.push_str(&format!(" --task {i}"));
            }
            hint
        }
        None => String::new(),
    };
    finish_campaign(&report, &options.run, &resume_hint)
}

fn build_tuner<'a>(tuner: &str, artifacts: Option<&'a ResolvedArtifacts>, gpu: &'a GpuSpec) -> Result<Box<dyn Tuner + 'a>, String> {
    Ok(match tuner {
        "glimpse" => {
            let resolved = artifacts.ok_or("the glimpse tuner needs resolved artifacts")?;
            Box::new(GlimpseTuner::from_resolved(resolved, gpu, GlimpseConfig::default()))
        }
        "autotvm" => Box::new(AutoTvmTuner::new()),
        "chameleon" => Box::new(ChameleonTuner::new()),
        "dgp" => Box::new(DgpTuner::new()),
        "random" => Box::new(RandomTuner::new()),
        "genetic" => Box::new(GeneticTuner::new()),
        other => return Err(format!("unknown tuner {other:?}")),
    })
}

fn run_tuner(tuner: &str, artifacts: Option<&ResolvedArtifacts>, gpu: &GpuSpec, ctx: TuneContext<'_>) -> Result<TuningOutcome, String> {
    Ok(build_tuner(tuner, artifacts, gpu)?.tune(ctx))
}

/// Every envelope spec the current build writes; doctor verifies each file
/// against the spec its own header names.
const KNOWN_ENVELOPES: [EnvelopeSpec; 5] = [
    ARTIFACTS_ENVELOPE,
    CORPUS_ENVELOPE,
    TUNING_LOG_ENVELOPE,
    CALIBRATION_ENVELOPE,
    snapshot::SPEC_DB_ENVELOPE,
];

/// Recursively lists every regular file under `dir`.
fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_files(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether `bytes` claim to be an artifact envelope: either the header
/// sniffs, or the leading bytes are a prefix of the magic token (a file
/// truncated inside its own header still gets diagnosed, while journals,
/// reports, and other JSON are skipped).
fn looks_enveloped(bytes: &[u8]) -> bool {
    if envelope::sniff(bytes).is_ok() {
        return true;
    }
    let take = bytes.len().min(envelope::MAGIC.len());
    !bytes.is_empty() && bytes[..take] == envelope::MAGIC.as_bytes()[..take]
}

/// Diagnoses one enveloped file: the `kind vN` label from its header (or a
/// placeholder when the header itself is gone) and the integrity verdict
/// against the spec that kind implies.
fn diagnose_envelope(path: &Path, bytes: &[u8]) -> (String, Integrity) {
    match envelope::sniff(bytes) {
        Ok(header) => {
            let label = header.label();
            let verdict = match KNOWN_ENVELOPES.iter().find(|spec| spec.kind == header.kind) {
                Some(spec) if spec.kind == ARTIFACTS_ENVELOPE.kind => GlimpseArtifacts::verify(path),
                Some(spec) if spec.kind == snapshot::SPEC_DB_ENVELOPE.kind => snapshot::verify_snapshot(path),
                Some(spec) => envelope::verify_file(path, *spec),
                None => Integrity::SchemaDrift {
                    found: label.clone(),
                    expected: "a known glimpse artifact kind".into(),
                },
            };
            (label, verdict)
        }
        Err(verdict) => ("unidentified".into(), verdict),
    }
}

/// Prints the component health table a bundle verdict resolves to, one row
/// per learned component with its ladder rung and cause.
fn print_health_table(verdict: &Integrity) {
    let health = if verdict.is_intact() {
        HealthReport::healthy()
    } else {
        HealthReport::all_degraded(&cause_of(verdict))
    };
    println!("\n{:<18} {:>4}  {:<26} cause", "component", "rung", "mode");
    for row in &health.components {
        println!(
            "{:<18} {:>4}  {:<26} {}",
            row.component.name(),
            row.rung,
            row.rung_label(),
            row.health.cause().map_or_else(|| "-".into(), ToString::to_string)
        );
    }
}

/// `glimpse doctor <dir>` — walks a directory, verifies every artifact
/// envelope against its own header's kind, prints the per-component health
/// table the artifact bundle resolves to, and returns an error (nonzero
/// exit, via `main`) when any artifact is not intact.
pub fn doctor(args: &[String]) -> Result<(), String> {
    let root = PathBuf::from(args.first().ok_or("usage: glimpse doctor <dir>")?);
    if !root.is_dir() {
        return Err(format!("{} is not a directory", root.display()));
    }
    let mut files = Vec::new();
    collect_files(&root, &mut files)?;
    files.sort();
    let mut scanned = 0usize;
    let mut damaged = 0usize;
    let mut bundle_verdict: Option<Integrity> = None;
    println!("{:<44} {:<18} verdict", "artifact", "envelope");
    for path in &files {
        let shown = path.strip_prefix(&root).unwrap_or(path);
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                scanned += 1;
                damaged += 1;
                println!(
                    "{:<44} {:<18} {}",
                    shown.display(),
                    "unreadable",
                    Integrity::Unreadable { detail: e.to_string() }
                );
                continue;
            }
        };
        if !looks_enveloped(&bytes) {
            continue;
        }
        let (label, verdict) = diagnose_envelope(path, &bytes);
        scanned += 1;
        if !verdict.is_intact() {
            damaged += 1;
        }
        // The component table reflects the worst artifacts-bundle verdict.
        if label.starts_with(ARTIFACTS_ENVELOPE.kind) && bundle_verdict.as_ref().is_none_or(Integrity::is_intact) {
            bundle_verdict = Some(verdict.clone());
        }
        println!("{:<44} {:<18} {}", shown.display(), label, verdict);
    }
    if scanned == 0 {
        println!("(no artifact envelopes found)");
    }
    if let Some(verdict) = &bundle_verdict {
        print_health_table(verdict);
    }
    if damaged > 0 {
        return Err(format!(
            "doctor: {damaged} of {scanned} artifact(s) damaged under {}",
            root.display()
        ));
    }
    println!("\ndoctor: all {scanned} artifact(s) intact under {}", root.display());
    Ok(())
}

#[derive(Debug)]
struct ExperimentOptions {
    model: String,
    tuner: String,
    budget: usize,
    task: usize,
    gpus: Vec<String>,
    run: RunSettings,
}

fn parse_experiment_options(args: &[String]) -> Result<ExperimentOptions, String> {
    let mut positional = Vec::new();
    let mut shared = SharedRunFlags::default();
    let mut tuner = "autotvm".to_owned();
    let mut budget = 64usize;
    let mut task = 0usize;
    let mut gpus: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if shared.try_parse(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--tuner" => tuner = it.next().ok_or("--tuner needs a value")?.clone(),
            "--budget" => {
                budget = it
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|_| "--budget must be an integer")?;
            }
            "--task" => {
                task = it
                    .next()
                    .ok_or("--task needs a value")?
                    .parse()
                    .map_err(|_| "--task must be an integer")?;
            }
            "--gpus" => {
                gpus = it
                    .next()
                    .ok_or("--gpus needs a value")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() != 1 {
        return Err("usage: glimpse experiment <model> [options]".into());
    }
    if gpus.is_empty() {
        gpus = database::EVALUATION_GPUS.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok(ExperimentOptions {
        model: positional[0].clone(),
        tuner,
        budget,
        task,
        gpus,
        run: shared.finish()?,
    })
}

/// Runs one fleet cell — the pass-1 assignment or a reassigned retry — on
/// the device whose [`Measurer`] is handed in by the pool.
#[allow(clippy::too_many_arguments)]
fn run_experiment_cell(
    options: &ExperimentOptions,
    supervisor: &Supervisor,
    task: &Task,
    space: &SearchSpace,
    measurer: &mut Measurer,
    gpu: &GpuSpec,
    cell_name: &str,
    seed: u64,
) -> Result<SupervisedOutcome, String> {
    let budget = Budget::measurements(options.budget);
    let control = supervisor.control(&options.run, 0.0);
    if let Some(root) = &options.run.checkpoint_dir {
        let cell = root.join(cell_name);
        let spec = CheckpointSpec::new(&cell)
            .resuming(options.run.resume)
            .with_storage(options.run.faults.storage_faults())
            .with_faults(options.run.faults.seed, options.run.faults.rates_for(&gpu.name));
        let mut tuner = build_tuner(&options.tuner, None, gpu)?;
        run_supervised(&mut *tuner, &spec, task, space, measurer, budget, seed, &control).map_err(|e| e.to_string())
    } else {
        let ctx = TuneContext::new(task, space, measurer, budget, seed).with_control(control.clone());
        let outcome = run_tuner(&options.tuner, None, gpu, ctx)?;
        Ok(settle_unjournaled(&control, outcome, measurer.is_device_dead()))
    }
}

/// One result-table row for a fleet cell.
fn print_experiment_row(device: &str, supervised: &SupervisedOutcome) {
    println!(
        "{:<18} {:>10.0} {:>8} {:>9} {:>8} {:>11.1}  {}",
        device,
        supervised.outcome.best_gflops,
        supervised.outcome.measurements,
        supervised.outcome.invalid_measurements,
        supervised.outcome.faulted_measurements,
        supervised.outcome.gpu_seconds,
        status_label(&supervised.status)
    );
}

/// `glimpse experiment <model> [options]` — tunes one task on every device
/// of a fleet through a [`DevicePool`], surviving faulted or dead devices.
/// Cells orphaned by a dead device are reassigned to the first healthy
/// survivor; every run settles into a typed status in `degradation.json`.
pub fn experiment(args: &[String]) -> Result<(), String> {
    let options = parse_experiment_options(args)?;
    apply_threads(options.run.threads);
    if options.tuner == "glimpse" {
        return Err("the fleet experiment drives baseline tuners; use `glimpse tune` for the glimpse tuner".into());
    }
    let model = models::find(&options.model).ok_or_else(|| format!("unknown model {:?}; `glimpse models` lists the zoo", options.model))?;
    let task = model
        .tasks()
        .get(options.task)
        .ok_or_else(|| format!("task {} out of range (model has {} tasks)", options.task, model.tasks().len()))?;
    let fleet: Vec<GpuSpec> = options.gpus.iter().map(|name| find_gpu(name).cloned()).collect::<Result<_, _>>()?;
    let space = templates::space_for_task(task);
    if options.run.faults.any() {
        eprintln!("injecting faults (seed {})", options.run.faults.seed);
    }

    let supervisor = Supervisor::start(&options.run);
    let pool = DevicePool::with_faults(&fleet, 7, &options.run.faults);
    let cell_names: Vec<String> = fleet.iter().map(|g| g.name.replace(' ', "_")).collect();
    // Pass 1: every device tunes its own cell, in parallel.
    let results = pool.run_all(|index, measurer| {
        run_experiment_cell(
            &options,
            &supervisor,
            task,
            &space,
            measurer,
            &fleet[index],
            &cell_names[index],
            7 + index as u64,
        )
    });

    // Pass 2: cells orphaned by a dead device move to the first healthy
    // survivor. The reassigned cell keeps its original seed (it is the
    // same work item) and journals under `<cell>__on_<survivor>` so the
    // dead device's journal stays intact for a post-mortem or revival.
    let mut moved: Vec<Option<usize>> = vec![None; fleet.len()];
    let mut reassignments: Vec<(usize, usize, Result<SupervisedOutcome, String>)> = Vec::new();
    for index in 0..fleet.len() {
        if supervisor.interrupt.is_cancelled() {
            break;
        }
        let orphaned = matches!(&results[index], Err(DeviceError::Dead | DeviceError::Panicked(_)))
            || matches!(&results[index], Ok(Ok(s)) if s.status == CellStatus::Abandoned(Abandonment::DeviceDead));
        if !orphaned {
            continue;
        }
        let Some(survivor) = (0..fleet.len()).find(|j| *j != index && pool.status(*j) == DeviceStatus::Healthy) else {
            continue;
        };
        let new_cell = format!("{}__on_{}", cell_names[index], cell_names[survivor]);
        eprintln!(
            "reassigning cell {} from dead device {} to {}",
            cell_names[index], fleet[index].name, fleet[survivor].name
        );
        let outcome = pool.run_on(survivor, |_, measurer| {
            run_experiment_cell(
                &options,
                &supervisor,
                task,
                &space,
                measurer,
                &fleet[survivor],
                &new_cell,
                7 + index as u64,
            )
        });
        let flat = match outcome {
            Ok(r) => r,
            Err(e) => Err(e.to_string()),
        };
        moved[index] = Some(survivor);
        reassignments.push((index, survivor, flat));
    }

    println!(
        "task L{} [{}] {} under tuner {:?}",
        task.id.index, task.template, task.op, options.tuner
    );
    println!(
        "{:<18} {:>10} {:>8} {:>9} {:>8} {:>11}  status",
        "device", "GFLOPS", "meas.", "invalid", "faulted", "GPU seconds"
    );
    let summary = pool.summary();
    let mut report = DegradationReport::new(format!("experiment {} task {}", options.model, options.task));
    for (index, result) in results.iter().enumerate() {
        let name = &fleet[index].name;
        let reassigned_status = moved[index].map(|s| CellStatus::Reassigned { to: fleet[s].name.clone() });
        match result {
            Ok(Ok(supervised)) => {
                let mut row = cell_report(cell_names[index].clone(), name, supervised, summary.devices[index].quarantines);
                if let Some(status) = reassigned_status {
                    row.status = status;
                }
                print_experiment_row(name, supervised);
                report.push(row);
            }
            Ok(Err(message)) => {
                println!("{name:<18} tuner error: {message}");
                report.push(empty_cell_report(
                    cell_names[index].clone(),
                    name,
                    reassigned_status.unwrap_or(CellStatus::Abandoned(Abandonment::DeviceUnavailable)),
                ));
            }
            Err(error) => {
                println!("{name:<18} {error}");
                let fallback = match error {
                    DeviceError::Dead | DeviceError::Panicked(_) => CellStatus::Abandoned(Abandonment::DeviceDead),
                    DeviceError::Quarantined => CellStatus::Abandoned(Abandonment::DeviceUnavailable),
                };
                report.push(empty_cell_report(
                    cell_names[index].clone(),
                    name,
                    reassigned_status.unwrap_or(fallback),
                ));
            }
        }
    }
    for (index, survivor, outcome) in &reassignments {
        let new_cell = format!("{}__on_{}", cell_names[*index], cell_names[*survivor]);
        let survivor_name = &fleet[*survivor].name;
        match outcome {
            Ok(supervised) => {
                print_experiment_row(survivor_name, supervised);
                report.push(cell_report(
                    new_cell,
                    survivor_name,
                    supervised,
                    summary.devices[*survivor].quarantines,
                ));
            }
            Err(message) => {
                println!("{survivor_name:<18} reassigned cell failed: {message}");
                report.push(empty_cell_report(
                    new_cell,
                    survivor_name,
                    CellStatus::Abandoned(Abandonment::DeviceUnavailable),
                ));
            }
        }
    }
    println!("\nfleet health:");
    print!("{}", pool.summary());
    let resume_hint = match &options.run.checkpoint_dir {
        Some(dir) => format!(
            "glimpse experiment {} --tuner {} --budget {} --task {} --checkpoint-dir {:?} --resume",
            options.model,
            options.tuner,
            options.budget,
            options.task,
            dir.display().to_string()
        ),
        None => String::new(),
    };
    finish_campaign(&report, &options.run, &resume_hint)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_options_parse_positionals_and_flags() {
        let args: Vec<String> = ["resnet18", "RTX 3090", "--tuner", "autotvm", "--budget", "64", "--task", "3"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.model, "resnet18");
        assert_eq!(options.gpu, "RTX 3090");
        assert_eq!(options.tuner, "autotvm");
        assert_eq!(options.budget, 64);
        assert_eq!(options.task, Some(3));
        assert!(!options.full_training);
    }

    #[test]
    fn tune_options_reject_unknown_flags() {
        let args: Vec<String> = ["m", "g", "--frobnicate"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&args).unwrap_err().contains("--frobnicate"));
    }

    #[test]
    fn tune_options_require_two_positionals() {
        let args: Vec<String> = vec!["onlymodel".into()];
        assert!(parse_tune_options(&args).is_err());
    }

    #[test]
    fn gpu_lookup_reports_unknown_names() {
        assert!(find_gpu("RTX 9999").unwrap_err().contains("RTX 9999"));
        assert!(find_gpu("Titan Xp").is_ok());
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for cmd in ["gpus", "models", "blueprint", "sheet", "sweep", "doctor", "tune", "experiment"] {
            assert!(USAGE.contains(cmd), "usage missing {cmd}");
        }
    }

    #[test]
    fn tune_options_parse_fault_flags() {
        let args: Vec<String> = ["m", "g", "--fault-plan", "timeout=0.2,dead=0.01", "--fault-seed", "9"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.run.faults.seed, 9);
        assert!((options.run.faults.default_rates.timeout - 0.2).abs() < 1e-12);
        assert!((options.run.faults.default_rates.device_dead - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bad_fault_plan_is_a_one_line_error() {
        let args: Vec<String> = ["m", "g", "--fault-plan", "timeout=2.0"].iter().map(|s| (*s).to_owned()).collect();
        let err = parse_tune_options(&args).unwrap_err();
        assert!(err.contains("[0, 1]"), "got: {err}");
        assert!(!err.contains('\n'));
    }

    #[test]
    fn tune_options_parse_threads_flag() {
        let args: Vec<String> = ["m", "g", "--threads", "4"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_tune_options(&args).unwrap().run.threads, Some(4));
        let auto: Vec<String> = ["m", "g", "--threads", "0"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_tune_options(&auto).unwrap().run.threads, Some(0));
        let unset: Vec<String> = ["m", "g"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_tune_options(&unset).unwrap().run.threads, None);
    }

    #[test]
    fn threads_flag_rejects_junk() {
        let args: Vec<String> = ["m", "g", "--threads", "lots"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&args).unwrap_err().contains("--threads"));
        let exp: Vec<String> = ["m", "--threads", "-2"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_experiment_options(&exp).unwrap_err().contains("--threads"));
    }

    #[test]
    fn experiment_options_parse_threads_flag() {
        let args: Vec<String> = ["m", "--threads", "8"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_experiment_options(&args).unwrap().run.threads, Some(8));
    }

    #[test]
    fn usage_documents_the_threads_flag() {
        assert!(USAGE.contains("--threads"));
        assert!(USAGE.contains("GLIMPSE_THREADS"));
    }

    #[test]
    fn experiment_options_default_to_the_evaluation_fleet() {
        let args: Vec<String> = vec!["resnet18".into()];
        let options = parse_experiment_options(&args).unwrap();
        assert_eq!(options.gpus.len(), 4);
        assert_eq!(options.tuner, "autotvm");
        assert!(!options.run.faults.any());
    }

    #[test]
    fn checkpoint_flags_parse_on_both_subcommands() {
        let args: Vec<String> = ["m", "g", "--checkpoint-dir", "/tmp/run1", "--resume"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.run.checkpoint_dir, Some(PathBuf::from("/tmp/run1")));
        assert!(options.run.resume);
        let exp: Vec<String> = ["m", "--checkpoint-dir", "/tmp/run2"].iter().map(|s| (*s).to_owned()).collect();
        let options = parse_experiment_options(&exp).unwrap();
        assert_eq!(options.run.checkpoint_dir, Some(PathBuf::from("/tmp/run2")));
        assert!(!options.run.resume);
    }

    #[test]
    fn resume_without_checkpoint_dir_is_refused() {
        let args: Vec<String> = ["m", "g", "--resume"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&args).unwrap_err().contains("--checkpoint-dir"));
        let exp: Vec<String> = ["m", "--resume"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_experiment_options(&exp).unwrap_err().contains("--checkpoint-dir"));
    }

    #[test]
    fn usage_documents_the_checkpoint_flags() {
        assert!(USAGE.contains("--checkpoint-dir"));
        assert!(USAGE.contains("--resume"));
    }

    #[test]
    fn tune_refuses_to_clobber_then_resumes_a_complete_run() {
        let dir = std::env::temp_dir().join("glimpse-cli-checkpoint-test");
        let _ = std::fs::remove_dir_all(&dir);
        let base = [
            "alexnet",
            "Titan Xp",
            "--tuner",
            "random",
            "--budget",
            "6",
            "--task",
            "2",
            "--checkpoint-dir",
        ];
        let args: Vec<String> = base.iter().map(|s| (*s).to_owned()).chain([dir.display().to_string()]).collect();
        tune(&args).unwrap();
        assert!(dir.join("task2").join("complete.json").exists());
        // A second run without --resume must not clobber the journal.
        let err = tune(&args).unwrap_err();
        assert!(err.contains("journal"), "got: {err}");
        // With --resume the completed cell is served from complete.json.
        let resume_args: Vec<String> = args.iter().cloned().chain(["--resume".to_owned()]).collect();
        tune(&resume_args).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn doctor_passes_clean_dirs_and_fails_damaged_ones() {
        let dir = std::env::temp_dir().join("glimpse-cli-doctor-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An intact corpus envelope next to a plain JSON report (skipped).
        envelope::write_envelope(&dir.join("corpus.bin"), CORPUS_ENVELOPE, b"{\"rows\":[]}").unwrap();
        atomic_write(&dir.join("degradation.json"), b"{\"cells\":[]}").unwrap();
        doctor(&[dir.display().to_string()]).unwrap();
        // A flipped payload byte must fail doctor with a damage count.
        let mut bytes = std::fs::read(dir.join("corpus.bin")).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        atomic_write(&dir.join("corpus.bin"), &bytes).unwrap();
        let err = doctor(&[dir.display().to_string()]).unwrap_err();
        assert!(err.contains("damaged"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn doctor_rejects_missing_directories() {
        assert!(doctor(&["/nonexistent/glimpse-doctor".to_owned()]).is_err());
        assert!(doctor(&[]).unwrap_err().contains("usage"));
    }

    #[test]
    fn tune_with_a_lost_artifact_bundle_completes_degraded() {
        let dir = std::env::temp_dir().join("glimpse-cli-artifact-chaos-test");
        let _ = std::fs::remove_dir_all(&dir);
        let artifacts = dir.join("artifacts.json");
        // artifact_delete arms the chaos path: the bundle counts as lost
        // (never retrained), every ladder falls to its rung-1 mode, and the
        // cell still completes — degraded, with the components named.
        let base = [
            "alexnet",
            "Titan Xp",
            "--tuner",
            "glimpse",
            "--budget",
            "6",
            "--task",
            "2",
            "--fault-plan",
            "artifact_delete=1",
            "--artifacts",
        ];
        let args: Vec<String> = base
            .iter()
            .map(|s| (*s).to_owned())
            .chain([
                artifacts.display().to_string(),
                "--checkpoint-dir".to_owned(),
                dir.display().to_string(),
            ])
            .collect();
        tune(&args).unwrap();
        assert!(dir.join("task2").join("complete.json").exists());
        let report = std::fs::read_to_string(dir.join("degradation.json")).unwrap();
        assert!(report.contains("ComponentFallback"), "got: {report}");
        assert!(report.contains("ArtifactMissing"), "got: {report}");
        assert!(report.contains("CostModel"), "got: {report}");
        // Resuming under the same rung set is accepted and stays complete.
        let resume: Vec<String> = args.iter().cloned().chain(["--resume".to_owned()]).collect();
        tune(&resume).unwrap();
        let report = std::fs::read_to_string(dir.join("degradation.json")).unwrap();
        assert!(report.contains("ComponentFallback"), "got: {report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiment_options_parse_gpu_list() {
        let args: Vec<String> = ["vgg16", "--gpus", "Titan Xp, RTX 3090", "--task", "2", "--fault-seed", "5"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_experiment_options(&args).unwrap();
        assert_eq!(options.gpus, vec!["Titan Xp".to_string(), "RTX 3090".to_string()]);
        assert_eq!(options.task, 2);
        assert_eq!(options.run.faults.seed, 5);
    }

    #[test]
    fn supervision_flags_parse_on_both_subcommands() {
        let args: Vec<String> = [
            "m",
            "g",
            "--deadline-s",
            "1.5",
            "--max-wall-s",
            "30",
            "--stall-timeout-s",
            "0",
            "--pool-policy",
            "quarantine=2,probes=4",
            "--report",
            "/tmp/deg.json",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.run.deadline_s, Some(1.5));
        assert_eq!(options.run.max_wall_s, Some(30.0));
        assert_eq!(options.run.stall_timeout_s, Some(0.0));
        assert_eq!(options.run.faults.pool_policy().quarantine_threshold, 2);
        assert_eq!(options.run.faults.pool_policy().probe_limit, 4);
        assert_eq!(options.run.report, Some(PathBuf::from("/tmp/deg.json")));
        let exp: Vec<String> = ["m", "--deadline-s", "2", "--pool-policy", "probe_cost=0.25"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_experiment_options(&exp).unwrap();
        assert_eq!(options.run.deadline_s, Some(2.0));
        assert!((options.run.faults.pool_policy().probe_cost_s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn supervision_flags_reject_junk() {
        let bad_deadline: Vec<String> = ["m", "g", "--deadline-s", "soon"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&bad_deadline).unwrap_err().contains("--deadline-s"));
        let negative: Vec<String> = ["m", "g", "--max-wall-s", "-3"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&negative).unwrap_err().contains("--max-wall-s"));
        let bad_policy: Vec<String> = ["m", "--pool-policy", "quarantine=0"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_experiment_options(&bad_policy).unwrap_err().contains("quarantine"));
    }

    #[test]
    fn usage_documents_the_supervision_flags() {
        for flag in ["--deadline-s", "--max-wall-s", "--stall-timeout-s", "--pool-policy", "--report"] {
            assert!(USAGE.contains(flag), "usage missing {flag}");
        }
        assert!(USAGE.contains("SIGINT"));
    }

    #[test]
    fn tune_past_deadline_degrades_and_writes_the_report() {
        let dir = std::env::temp_dir().join("glimpse-cli-deadline-test");
        let _ = std::fs::remove_dir_all(&dir);
        let args: Vec<String> = [
            "alexnet",
            "Titan Xp",
            "--tuner",
            "random",
            "--budget",
            "6",
            "--task",
            "2",
            "--deadline-s",
            "0",
            "--checkpoint-dir",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .chain([dir.display().to_string()])
        .collect();
        tune(&args).unwrap();
        // A zero deadline stops the cell before its first trial completes:
        // the journal stays resumable (snapshot, no completion marker)...
        assert!(!dir.join("task2").join("complete.json").exists());
        assert!(dir.join("task2").join("snapshot.json").exists());
        // ...and the degradation report records the typed status.
        let report = std::fs::read_to_string(dir.join("degradation.json")).unwrap();
        assert!(report.contains("DeadlineExceeded"), "got: {report}");
        // Resuming with a generous deadline finishes the cell.
        let resume: Vec<String> = args
            .iter()
            .map(|a| if a == "0" { "1000000".to_owned() } else { a.clone() })
            .chain(["--resume".to_owned()])
            .collect();
        tune(&resume).unwrap();
        assert!(dir.join("task2").join("complete.json").exists());
        let report = std::fs::read_to_string(dir.join("degradation.json")).unwrap();
        assert!(report.contains("Complete"), "got: {report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiment_reassigns_the_cell_of_a_dead_device() {
        let dir = std::env::temp_dir().join("glimpse-cli-reassign-test");
        let _ = std::fs::remove_dir_all(&dir);
        let args: Vec<String> = [
            "alexnet",
            "--gpus",
            "Titan Xp, RTX 3090",
            "--tuner",
            "random",
            "--budget",
            "4",
            "--task",
            "2",
            "--fault-plan",
            "dead@Titan Xp=1.0",
            "--pool-policy",
            "quarantine=1,probes=1",
            "--checkpoint-dir",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .chain([dir.display().to_string()])
        .collect();
        experiment(&args).unwrap();
        let report = std::fs::read_to_string(dir.join("degradation.json")).unwrap();
        assert!(report.contains("Reassigned"), "got: {report}");
        // The orphaned cell reran on the survivor under its own journal dir.
        assert!(dir.join("Titan_Xp__on_RTX_3090").join("complete.json").exists());
        assert!(dir.join("RTX_3090").join("complete.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
