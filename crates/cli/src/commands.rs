//! Implementations of the `glimpse` subcommands.

use glimpse_core::artifacts::{GlimpseArtifacts, TrainingOptions};
use glimpse_core::blueprint::BlueprintCodec;
use glimpse_core::explain;
use glimpse_core::tuner::GlimpseTuner;
use glimpse_gpu_spec::{database, datasheet, GpuSpec};
use glimpse_mlkit::parallel;
use glimpse_sim::{DevicePool, FaultPlan, Measurer};
use glimpse_space::templates;
use glimpse_tensor_prog::{models, TemplateKind};
use glimpse_tuners::autotvm::AutoTvmTuner;
use glimpse_tuners::chameleon::ChameleonTuner;
use glimpse_tuners::dgp::DgpTuner;
use glimpse_tuners::genetic::GeneticTuner;
use glimpse_tuners::random::RandomTuner;
use glimpse_tuners::{run_checkpointed, Budget, CheckpointSpec, TuneContext, Tuner, TuningOutcome};
use std::path::PathBuf;

/// Usage text for `glimpse help`.
pub const USAGE: &str = "\
glimpse — hardware-aware neural compilation (DAC'22 reproduction)

  glimpse gpus                      list the data-sheet database
  glimpse models                    list the model zoo and task counts
  glimpse blueprint <gpu>           embed a GPU and explain the embedding
  glimpse sheet <file>              parse a textual data sheet
  glimpse sweep                     Blueprint size vs information loss (Fig. 8)
  glimpse tune <model> <gpu> [opts] tune a model (or one task) on a GPU
    --tuner <glimpse|autotvm|chameleon|dgp|random|genetic>   default: glimpse
    --budget <n>                    measurements per task      default: 128
    --task <i>                      tune only task i
    --artifacts <path>              load/store meta-trained artifacts
    --full-training                 full-size offline training (slow)
    --fault-plan <spec>             inject measurement faults, e.g.
                                    timeout=0.1,launch=0.05,lost=0.02,dead=0.01
    --fault-seed <n>                fault stream seed          default: 0
    --threads <n>                   search worker threads (0 = auto); also
                                    via GLIMPSE_THREADS       default: auto
    --checkpoint-dir <dir>          journal every trial for crash-safe resume
    --resume                        continue an interrupted run from <dir>
                                    (completed tasks are not re-measured)
  glimpse experiment <model> [opts] tune one task across a device fleet
    --task <i>                      task to tune               default: 0
    --tuner <autotvm|chameleon|dgp|random|genetic>            default: autotvm
    --budget <n>                    measurements per device    default: 64
    --gpus <a,b,c>                  fleet (default: the 4 evaluation GPUs)
    --fault-plan <spec>             inject measurement faults (as above)
    --fault-seed <n>                fault stream seed          default: 0
    --threads <n>                   search worker threads (0 = auto)
    --checkpoint-dir <dir>          journal every trial for crash-safe resume
    --resume                        continue an interrupted run from <dir>
                                    (completed devices are not re-measured)

Results are bit-identical for a fixed seed at any --threads value, and a
checkpointed run resumed after a crash replays to the same result.
";

/// `glimpse gpus`
pub fn gpus() -> Result<(), String> {
    println!(
        "{:<18} {:<16} {:>5} {:>7} {:>10} {:>9} {:>7}",
        "name", "generation", "SMs", "cores", "GFLOPS", "GB/s", "TDP W"
    );
    for gpu in database::all() {
        println!(
            "{:<18} {:<16} {:>5} {:>7} {:>10.0} {:>9.0} {:>7.0}",
            gpu.name,
            format!("{} ({})", gpu.generation, gpu.sm_arch),
            gpu.sm_count,
            gpu.total_cores(),
            gpu.fp32_gflops,
            gpu.mem_bandwidth_gb_s,
            gpu.tdp_w
        );
    }
    Ok(())
}

/// `glimpse models`
pub fn models() -> Result<(), String> {
    let mut all = models::evaluation_models();
    all.extend(models::extended_models());
    for model in all {
        let conv = model.tasks().iter().filter(|t| t.template == TemplateKind::Conv2dDirect).count();
        let wino = model.tasks().iter().filter(|t| t.template == TemplateKind::Conv2dWinograd).count();
        let dense = model.tasks().iter().filter(|t| t.template == TemplateKind::Dense).count();
        println!(
            "{:<16} {:>2} tasks ({conv} conv2d, {wino} winograd, {dense} dense), {:>6.2} GFLOP/inference",
            model.name(),
            model.tasks().len(),
            model.total_flops() / 1e9
        );
        for task in model.tasks() {
            println!("    L{:<3} [{}] {}", task.id.index, task.template, task.op);
        }
    }
    Ok(())
}

fn find_gpu(name: &str) -> Result<&'static GpuSpec, String> {
    database::find(name).ok_or_else(|| format!("unknown GPU {name:?}; `glimpse gpus` lists the database"))
}

/// `glimpse blueprint <gpu>`
pub fn blueprint(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("usage: glimpse blueprint <gpu>")?;
    let gpu = find_gpu(name)?;
    let population: Vec<&GpuSpec> = database::training_gpus(&gpu.name);
    let k = BlueprintCodec::recommended_components(&population);
    let codec = BlueprintCodec::fit(&population, k).map_err(|e| e.to_string())?;
    let bp = codec.encode(gpu);
    println!("{bp}");
    println!(
        "values: {:?}",
        bp.values.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    let decoded = codec.decode(&bp);
    println!("\ndecoded data sheet (leave-one-out codec, {} components):", k);
    for name in glimpse_gpu_spec::features::FEATURE_NAMES {
        let truth = glimpse_gpu_spec::FeatureVector::from_spec(gpu).get(name).unwrap_or(0.0);
        let dec = decoded.get(name).unwrap_or(0.0);
        println!("  {name:<24} sheet {truth:>12.1}   decoded {dec:>12.1}");
    }
    // Prior sensitivity via a quickly trained artifact set.
    println!("\ntraining fast artifacts for sensitivity analysis ...");
    let artifacts = GlimpseArtifacts::train_with(&population, TrainingOptions::fast(), 42).map_err(|e| e.to_string())?;
    let space = templates::conv2d_direct_space(&glimpse_tensor_prog::Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
    let report = explain::explain(
        &artifacts.codec,
        artifacts.prior(space.template()),
        &space,
        &artifacts.encode(gpu),
        0.5,
    );
    println!("prior sensitivity per embedding dimension (3x3 conv template):");
    for dim in report.ranked() {
        let features: Vec<String> = dim.top_features.iter().map(|(n, _)| n.clone()).collect();
        println!(
            "  dim {:<2} TV {:.4}  loads on: {}",
            dim.dim,
            dim.prior_sensitivity,
            features.join(", ")
        );
    }
    Ok(())
}

/// `glimpse sheet <file>`
pub fn sheet(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: glimpse sheet <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = datasheet::parse_sheet(&text).map_err(|e| e.to_string())?;
    println!("parsed: {spec}");
    let population: Vec<&GpuSpec> = database::all().iter().collect();
    let k = BlueprintCodec::recommended_components(&population);
    let codec = BlueprintCodec::fit(&population, k).map_err(|e| e.to_string())?;
    let bp = codec.encode(&spec);
    println!(
        "blueprint ({} components): {:?}",
        k,
        bp.values.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    Ok(())
}

/// `glimpse sweep`
pub fn sweep() -> Result<(), String> {
    let population: Vec<&GpuSpec> = database::all().iter().collect();
    println!("{:<12} {:>8} {:>14} {:>15}", "components", "size", "RMSE (z)", "variance lost");
    for point in BlueprintCodec::sweep(&population) {
        println!(
            "{:<12} {:>7.1}% {:>14.4} {:>14.2}%",
            point.components,
            point.size_fraction * 100.0,
            point.rmse,
            (1.0 - point.explained_variance) * 100.0
        );
    }
    println!("recommended: {} components", BlueprintCodec::recommended_components(&population));
    Ok(())
}

#[derive(Debug)]
struct TuneOptions {
    model: String,
    gpu: String,
    tuner: String,
    budget: usize,
    task: Option<usize>,
    artifacts_path: Option<PathBuf>,
    full_training: bool,
    faults: FaultPlan,
    threads: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
}

/// Parses a `--threads` value (`0` = auto-detect).
fn parse_threads_flag(value: &str) -> Result<usize, String> {
    value.trim().parse().map_err(|_| "--threads must be a non-negative integer".into())
}

/// Installs the worker-count override for the search hot paths. Results are
/// bit-identical at any thread count, so this only changes wall-clock time.
fn apply_threads(threads: Option<usize>) {
    if let Some(n) = threads {
        parallel::set_default_threads(n);
    }
}

/// Parses `--fault-plan`/`--fault-seed` values into a plan (seed applied
/// after the rate spec so flag order doesn't matter).
fn parse_fault_flags(spec: Option<&str>, seed: Option<&str>) -> Result<FaultPlan, String> {
    let mut plan = match spec {
        Some(s) => FaultPlan::parse(s)?,
        None => FaultPlan::none(),
    };
    if let Some(s) = seed {
        plan.seed = s.parse().map_err(|_| "--fault-seed must be an integer")?;
    }
    Ok(plan)
}

fn parse_tune_options(args: &[String]) -> Result<TuneOptions, String> {
    let mut positional = Vec::new();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed: Option<String> = None;
    let mut options = TuneOptions {
        model: String::new(),
        gpu: String::new(),
        tuner: "glimpse".into(),
        budget: 128,
        task: None,
        artifacts_path: None,
        full_training: false,
        faults: FaultPlan::none(),
        threads: None,
        checkpoint_dir: None,
        resume: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tuner" => options.tuner = it.next().ok_or("--tuner needs a value")?.clone(),
            "--budget" => {
                options.budget = it
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|_| "--budget must be an integer")?;
            }
            "--task" => {
                options.task = Some(
                    it.next()
                        .ok_or("--task needs a value")?
                        .parse()
                        .map_err(|_| "--task must be an integer")?,
                );
            }
            "--artifacts" => options.artifacts_path = Some(PathBuf::from(it.next().ok_or("--artifacts needs a value")?)),
            "--full-training" => options.full_training = true,
            "--fault-plan" => fault_spec = Some(it.next().ok_or("--fault-plan needs a value")?.clone()),
            "--fault-seed" => fault_seed = Some(it.next().ok_or("--fault-seed needs a value")?.clone()),
            "--threads" => options.threads = Some(parse_threads_flag(it.next().ok_or("--threads needs a value")?)?),
            "--checkpoint-dir" => {
                options.checkpoint_dir = Some(PathBuf::from(it.next().ok_or("--checkpoint-dir needs a value")?));
            }
            "--resume" => options.resume = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() != 2 {
        return Err("usage: glimpse tune <model> <gpu> [options]".into());
    }
    if options.resume && options.checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    options.model = positional[0].clone();
    options.gpu = positional[1].clone();
    options.faults = parse_fault_flags(fault_spec.as_deref(), fault_seed.as_deref())?;
    Ok(options)
}

fn obtain_artifacts(gpu: &GpuSpec, options: &TuneOptions) -> Result<GlimpseArtifacts, String> {
    if let Some(path) = &options.artifacts_path {
        if path.exists() {
            eprintln!("loading artifacts from {}", path.display());
            return GlimpseArtifacts::load(path).map_err(|e| e.to_string());
        }
    }
    let training = if options.full_training {
        TrainingOptions::default()
    } else {
        TrainingOptions::fast()
    };
    eprintln!(
        "meta-training artifacts (leave-one-out{}) ...",
        if options.full_training { ", full size" } else { ", fast preset" }
    );
    let population = database::training_gpus(&gpu.name);
    let artifacts = GlimpseArtifacts::train_with(&population, training, 42).map_err(|e| e.to_string())?;
    if let Some(path) = &options.artifacts_path {
        artifacts.save(path).map_err(|e| e.to_string())?;
        eprintln!("saved artifacts to {}", path.display());
    }
    Ok(artifacts)
}

/// `glimpse tune <model> <gpu> [options]`
pub fn tune(args: &[String]) -> Result<(), String> {
    let options = parse_tune_options(args)?;
    apply_threads(options.threads);
    let gpu = find_gpu(&options.gpu)?;
    let model = models::find(&options.model).ok_or_else(|| format!("unknown model {:?}; `glimpse models` lists the zoo", options.model))?;
    let needs_artifacts = options.tuner == "glimpse";
    let artifacts = if needs_artifacts {
        Some(obtain_artifacts(gpu, &options)?)
    } else {
        None
    };

    let tasks: Vec<usize> = match options.task {
        Some(i) if i < model.tasks().len() => vec![i],
        Some(i) => return Err(format!("task {i} out of range (model has {} tasks)", model.tasks().len())),
        None => (0..model.tasks().len()).collect(),
    };

    if options.faults.any() {
        eprintln!(
            "injecting faults (seed {}): {:?}",
            options.faults.seed,
            options.faults.rates_for(&gpu.name)
        );
    }
    println!(
        "{:<5} {:<16} {:>10} {:>8} {:>9} {:>8} {:>11}",
        "task", "template", "GFLOPS", "meas.", "invalid", "faulted", "GPU seconds"
    );
    let mut total_s = 0.0;
    for i in tasks {
        let task = &model.tasks()[i];
        let space = templates::space_for_task(task);
        let mut measurer = Measurer::with_faults(gpu.clone(), 7, &options.faults);
        let budget = Budget::measurements(options.budget);
        let outcome = if let Some(root) = &options.checkpoint_dir {
            let cell = root.join(format!("task{i}"));
            let spec = CheckpointSpec::new(&cell)
                .resuming(options.resume)
                .with_storage(options.faults.storage_faults())
                .with_faults(options.faults.seed, options.faults.rates_for(&gpu.name));
            let mut tuner = build_tuner(&options.tuner, artifacts.as_ref(), gpu)?;
            run_checkpointed(&mut *tuner, &spec, task, &space, &mut measurer, budget, 7).map_err(|e| e.to_string())?
        } else {
            let ctx = TuneContext::new(task, &space, &mut measurer, budget, 7);
            run_tuner(&options.tuner, artifacts.as_ref(), gpu, ctx)?
        };
        total_s += outcome.gpu_seconds;
        println!(
            "L{:<4} {:<16} {:>10.0} {:>8} {:>9} {:>8} {:>11.1}",
            i,
            task.template.to_string(),
            outcome.best_gflops,
            outcome.measurements,
            outcome.invalid_measurements,
            outcome.faulted_measurements,
            outcome.gpu_seconds
        );
        if let Some(best) = &outcome.best_config {
            println!("      {}", space.describe(best));
        }
        if measurer.is_device_dead() {
            eprintln!("device {} died during task {i}; remaining tasks will report no kernels", gpu.name);
        }
    }
    println!("\ntotal simulated GPU time: {:.1} s ({:.2} h)", total_s, total_s / 3600.0);
    Ok(())
}

fn build_tuner<'a>(tuner: &str, artifacts: Option<&'a GlimpseArtifacts>, gpu: &'a GpuSpec) -> Result<Box<dyn Tuner + 'a>, String> {
    Ok(match tuner {
        "glimpse" => Box::new(GlimpseTuner::new(artifacts.expect("artifacts built"), gpu)),
        "autotvm" => Box::new(AutoTvmTuner::new()),
        "chameleon" => Box::new(ChameleonTuner::new()),
        "dgp" => Box::new(DgpTuner::new()),
        "random" => Box::new(RandomTuner::new()),
        "genetic" => Box::new(GeneticTuner::new()),
        other => return Err(format!("unknown tuner {other:?}")),
    })
}

fn run_tuner(tuner: &str, artifacts: Option<&GlimpseArtifacts>, gpu: &GpuSpec, ctx: TuneContext<'_>) -> Result<TuningOutcome, String> {
    Ok(build_tuner(tuner, artifacts, gpu)?.tune(ctx))
}

#[derive(Debug)]
struct ExperimentOptions {
    model: String,
    tuner: String,
    budget: usize,
    task: usize,
    gpus: Vec<String>,
    faults: FaultPlan,
    threads: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
}

fn parse_experiment_options(args: &[String]) -> Result<ExperimentOptions, String> {
    let mut positional = Vec::new();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed: Option<String> = None;
    let mut options = ExperimentOptions {
        model: String::new(),
        tuner: "autotvm".into(),
        budget: 64,
        task: 0,
        gpus: Vec::new(),
        faults: FaultPlan::none(),
        threads: None,
        checkpoint_dir: None,
        resume: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tuner" => options.tuner = it.next().ok_or("--tuner needs a value")?.clone(),
            "--budget" => {
                options.budget = it
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|_| "--budget must be an integer")?;
            }
            "--task" => {
                options.task = it
                    .next()
                    .ok_or("--task needs a value")?
                    .parse()
                    .map_err(|_| "--task must be an integer")?;
            }
            "--gpus" => {
                options.gpus = it
                    .next()
                    .ok_or("--gpus needs a value")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--fault-plan" => fault_spec = Some(it.next().ok_or("--fault-plan needs a value")?.clone()),
            "--fault-seed" => fault_seed = Some(it.next().ok_or("--fault-seed needs a value")?.clone()),
            "--threads" => options.threads = Some(parse_threads_flag(it.next().ok_or("--threads needs a value")?)?),
            "--checkpoint-dir" => {
                options.checkpoint_dir = Some(PathBuf::from(it.next().ok_or("--checkpoint-dir needs a value")?));
            }
            "--resume" => options.resume = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() != 1 {
        return Err("usage: glimpse experiment <model> [options]".into());
    }
    if options.resume && options.checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    options.model = positional[0].clone();
    if options.gpus.is_empty() {
        options.gpus = database::EVALUATION_GPUS.iter().map(|s| (*s).to_owned()).collect();
    }
    options.faults = parse_fault_flags(fault_spec.as_deref(), fault_seed.as_deref())?;
    Ok(options)
}

/// `glimpse experiment <model> [options]` — tunes one task on every device
/// of a fleet through a [`DevicePool`], surviving faulted or dead devices,
/// and prints the pool's health summary.
pub fn experiment(args: &[String]) -> Result<(), String> {
    let options = parse_experiment_options(args)?;
    apply_threads(options.threads);
    if options.tuner == "glimpse" {
        return Err("the fleet experiment drives baseline tuners; use `glimpse tune` for the glimpse tuner".into());
    }
    let model = models::find(&options.model).ok_or_else(|| format!("unknown model {:?}; `glimpse models` lists the zoo", options.model))?;
    let task = model
        .tasks()
        .get(options.task)
        .ok_or_else(|| format!("task {} out of range (model has {} tasks)", options.task, model.tasks().len()))?;
    let fleet: Vec<GpuSpec> = options.gpus.iter().map(|name| find_gpu(name).cloned()).collect::<Result<_, _>>()?;
    let space = templates::space_for_task(task);
    if options.faults.any() {
        eprintln!("injecting faults (seed {})", options.faults.seed);
    }

    let pool = DevicePool::with_faults(&fleet, 7, &options.faults);
    let results = pool.run_all(|index, measurer| {
        let budget = Budget::measurements(options.budget);
        let seed = 7 + index as u64;
        if let Some(root) = &options.checkpoint_dir {
            let cell = root.join(fleet[index].name.replace(' ', "_"));
            let spec = CheckpointSpec::new(&cell)
                .resuming(options.resume)
                .with_storage(options.faults.storage_faults())
                .with_faults(options.faults.seed, options.faults.rates_for(&fleet[index].name));
            let mut tuner = build_tuner(&options.tuner, None, &fleet[index])?;
            run_checkpointed(&mut *tuner, &spec, task, &space, measurer, budget, seed).map_err(|e| e.to_string())
        } else {
            let ctx = TuneContext::new(task, &space, measurer, budget, seed);
            run_tuner(&options.tuner, None, &fleet[index], ctx)
        }
    });

    println!(
        "task L{} [{}] {} under tuner {:?}",
        task.id.index, task.template, task.op, options.tuner
    );
    println!(
        "{:<18} {:>10} {:>8} {:>9} {:>8} {:>11}",
        "device", "GFLOPS", "meas.", "invalid", "faulted", "GPU seconds"
    );
    for (name, result) in pool.names().iter().zip(&results) {
        match result {
            Ok(Ok(outcome)) => println!(
                "{:<18} {:>10.0} {:>8} {:>9} {:>8} {:>11.1}",
                name,
                outcome.best_gflops,
                outcome.measurements,
                outcome.invalid_measurements,
                outcome.faulted_measurements,
                outcome.gpu_seconds
            ),
            Ok(Err(message)) => println!("{name:<18} tuner error: {message}"),
            Err(error) => println!("{name:<18} {error}"),
        }
    }
    println!("\nfleet health:");
    print!("{}", pool.summary());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_options_parse_positionals_and_flags() {
        let args: Vec<String> = ["resnet18", "RTX 3090", "--tuner", "autotvm", "--budget", "64", "--task", "3"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.model, "resnet18");
        assert_eq!(options.gpu, "RTX 3090");
        assert_eq!(options.tuner, "autotvm");
        assert_eq!(options.budget, 64);
        assert_eq!(options.task, Some(3));
        assert!(!options.full_training);
    }

    #[test]
    fn tune_options_reject_unknown_flags() {
        let args: Vec<String> = ["m", "g", "--frobnicate"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&args).unwrap_err().contains("--frobnicate"));
    }

    #[test]
    fn tune_options_require_two_positionals() {
        let args: Vec<String> = vec!["onlymodel".into()];
        assert!(parse_tune_options(&args).is_err());
    }

    #[test]
    fn gpu_lookup_reports_unknown_names() {
        assert!(find_gpu("RTX 9999").unwrap_err().contains("RTX 9999"));
        assert!(find_gpu("Titan Xp").is_ok());
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for cmd in ["gpus", "models", "blueprint", "sheet", "sweep", "tune", "experiment"] {
            assert!(USAGE.contains(cmd), "usage missing {cmd}");
        }
    }

    #[test]
    fn tune_options_parse_fault_flags() {
        let args: Vec<String> = ["m", "g", "--fault-plan", "timeout=0.2,dead=0.01", "--fault-seed", "9"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.faults.seed, 9);
        assert!((options.faults.default_rates.timeout - 0.2).abs() < 1e-12);
        assert!((options.faults.default_rates.device_dead - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bad_fault_plan_is_a_one_line_error() {
        let args: Vec<String> = ["m", "g", "--fault-plan", "timeout=2.0"].iter().map(|s| (*s).to_owned()).collect();
        let err = parse_tune_options(&args).unwrap_err();
        assert!(err.contains("[0, 1]"), "got: {err}");
        assert!(!err.contains('\n'));
    }

    #[test]
    fn tune_options_parse_threads_flag() {
        let args: Vec<String> = ["m", "g", "--threads", "4"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_tune_options(&args).unwrap().threads, Some(4));
        let auto: Vec<String> = ["m", "g", "--threads", "0"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_tune_options(&auto).unwrap().threads, Some(0));
        let unset: Vec<String> = ["m", "g"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_tune_options(&unset).unwrap().threads, None);
    }

    #[test]
    fn threads_flag_rejects_junk() {
        let args: Vec<String> = ["m", "g", "--threads", "lots"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&args).unwrap_err().contains("--threads"));
        let exp: Vec<String> = ["m", "--threads", "-2"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_experiment_options(&exp).unwrap_err().contains("--threads"));
    }

    #[test]
    fn experiment_options_parse_threads_flag() {
        let args: Vec<String> = ["m", "--threads", "8"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(parse_experiment_options(&args).unwrap().threads, Some(8));
    }

    #[test]
    fn usage_documents_the_threads_flag() {
        assert!(USAGE.contains("--threads"));
        assert!(USAGE.contains("GLIMPSE_THREADS"));
    }

    #[test]
    fn experiment_options_default_to_the_evaluation_fleet() {
        let args: Vec<String> = vec!["resnet18".into()];
        let options = parse_experiment_options(&args).unwrap();
        assert_eq!(options.gpus.len(), 4);
        assert_eq!(options.tuner, "autotvm");
        assert!(!options.faults.any());
    }

    #[test]
    fn checkpoint_flags_parse_on_both_subcommands() {
        let args: Vec<String> = ["m", "g", "--checkpoint-dir", "/tmp/run1", "--resume"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_tune_options(&args).unwrap();
        assert_eq!(options.checkpoint_dir, Some(PathBuf::from("/tmp/run1")));
        assert!(options.resume);
        let exp: Vec<String> = ["m", "--checkpoint-dir", "/tmp/run2"].iter().map(|s| (*s).to_owned()).collect();
        let options = parse_experiment_options(&exp).unwrap();
        assert_eq!(options.checkpoint_dir, Some(PathBuf::from("/tmp/run2")));
        assert!(!options.resume);
    }

    #[test]
    fn resume_without_checkpoint_dir_is_refused() {
        let args: Vec<String> = ["m", "g", "--resume"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_tune_options(&args).unwrap_err().contains("--checkpoint-dir"));
        let exp: Vec<String> = ["m", "--resume"].iter().map(|s| (*s).to_owned()).collect();
        assert!(parse_experiment_options(&exp).unwrap_err().contains("--checkpoint-dir"));
    }

    #[test]
    fn usage_documents_the_checkpoint_flags() {
        assert!(USAGE.contains("--checkpoint-dir"));
        assert!(USAGE.contains("--resume"));
    }

    #[test]
    fn tune_refuses_to_clobber_then_resumes_a_complete_run() {
        let dir = std::env::temp_dir().join("glimpse-cli-checkpoint-test");
        let _ = std::fs::remove_dir_all(&dir);
        let base = [
            "alexnet",
            "Titan Xp",
            "--tuner",
            "random",
            "--budget",
            "6",
            "--task",
            "2",
            "--checkpoint-dir",
        ];
        let args: Vec<String> = base.iter().map(|s| (*s).to_owned()).chain([dir.display().to_string()]).collect();
        tune(&args).unwrap();
        assert!(dir.join("task2").join("complete.json").exists());
        // A second run without --resume must not clobber the journal.
        let err = tune(&args).unwrap_err();
        assert!(err.contains("journal"), "got: {err}");
        // With --resume the completed cell is served from complete.json.
        let resume_args: Vec<String> = args.iter().cloned().chain(["--resume".to_owned()]).collect();
        tune(&resume_args).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiment_options_parse_gpu_list() {
        let args: Vec<String> = ["vgg16", "--gpus", "Titan Xp, RTX 3090", "--task", "2", "--fault-seed", "5"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let options = parse_experiment_options(&args).unwrap();
        assert_eq!(options.gpus, vec!["Titan Xp".to_string(), "RTX 3090".to_string()]);
        assert_eq!(options.task, 2);
        assert_eq!(options.faults.seed, 5);
    }
}
