//! End-to-end tests of the `glimpse` binary (spawned as a subprocess).

// Tests write throwaway fixture files; the IO1 atomic-write contract covers
// product code, not test scaffolding.
#![allow(clippy::disallowed_methods)]

use std::process::Command;

fn glimpse() -> Command {
    Command::new(env!("CARGO_BIN_EXE_glimpse"))
}

#[test]
fn gpus_lists_the_database() {
    let out = glimpse().arg("gpus").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Titan Xp", "RTX 2070 Super", "RTX 2080 Ti", "RTX 3090"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn models_lists_table1_counts() {
    let out = glimpse().arg("models").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("AlexNet"));
    assert!(text.contains("12 tasks"));
    assert!(text.contains("17 tasks"));
    assert!(text.contains("21 tasks"));
    // Extension models appear too.
    assert!(text.contains("SqueezeNet-1.1"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = glimpse().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("glimpse tune"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = glimpse().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn sheet_parses_a_valid_data_sheet() {
    let sheet = "\
name: Test GPU\n\
generation: Turing\n\
sm_count: 40\n\
cores_per_sm: 64\n\
base_clock_mhz: 1500\n\
boost_clock_mhz: 1700\n\
mem_bandwidth_gb_s: 448\n\
mem_bus_bits: 256\n\
mem_size_gib: 8\n\
l2_cache_kib: 4096\n\
tdp_w: 200\n";
    let path = std::env::temp_dir().join("glimpse-cli-test-sheet.txt");
    std::fs::write(&path, sheet).unwrap();
    let out = glimpse().arg("sheet").arg(&path).output().expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Test GPU"));
    assert!(text.contains("blueprint"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sheet_rejects_garbage_with_nonzero_exit() {
    let path = std::env::temp_dir().join("glimpse-cli-bad-sheet.txt");
    std::fs::write(&path, "this is not a data sheet").unwrap();
    let out = glimpse().arg("sheet").arg(&path).output().expect("spawn");
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sweep_prints_the_recommendation() {
    let out = glimpse().arg("sweep").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("recommended"));
}

#[test]
fn tune_single_task_with_random_tuner() {
    // The random tuner needs no artifact training — fast enough for a test.
    let out = glimpse()
        .args(["tune", "alexnet", "GTX 1080", "--tuner", "random", "--task", "2", "--budget", "24"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("L2"));
    assert!(text.contains("total simulated GPU time"));
}
