//! Tensor shapes (NCHW) and the shape algebra of the supported operators.

use crate::op::OpSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 4-D activation shape in NCHW layout (dense activations use H = W = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Batch.
    pub n: u32,
    /// Channels / features.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl TensorShape {
    /// Creates an NCHW shape.
    #[must_use]
    pub fn nchw(n: u32, c: u32, h: u32, w: u32) -> Self {
        Self { n, c, h, w }
    }

    /// A flat feature vector `[n, c]` as used by dense layers.
    #[must_use]
    pub fn features(n: u32, c: u32) -> Self {
        Self { n, c, h: 1, w: 1 }
    }

    /// Total element count.
    #[must_use]
    pub fn elements(&self) -> u64 {
        u64::from(self.n) * u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Size in bytes at fp32.
    #[must_use]
    pub fn bytes_f32(&self) -> u64 {
        self.elements() * 4
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// Input activation shape of an operator.
#[must_use]
pub fn input_shape(op: &OpSpec) -> TensorShape {
    match op {
        OpSpec::Conv2d(c) => TensorShape::nchw(c.batch, c.in_channels, c.in_h, c.in_w),
        OpSpec::Dense(d) => TensorShape::features(d.batch, d.in_features),
    }
}

/// Output activation shape of an operator.
#[must_use]
pub fn output_shape(op: &OpSpec) -> TensorShape {
    match op {
        OpSpec::Conv2d(c) => TensorShape::nchw(c.batch, c.out_channels, c.out_h(), c.out_w()),
        OpSpec::Dense(d) => TensorShape::features(d.batch, d.out_features),
    }
}

/// Whether `second` can directly consume `first`'s output (channel-wise;
/// spatial pooling between layers is outside the operator graph and is
/// allowed to shrink H/W).
#[must_use]
pub fn chainable(first: &OpSpec, second: &OpSpec) -> bool {
    let out = output_shape(first);
    match second {
        OpSpec::Conv2d(c) => c.in_channels == out.c && c.in_h <= out.h && c.in_w <= out.w,
        // Dense layers may flatten C x H x W.
        OpSpec::Dense(d) => u64::from(d.in_features) % u64::from(out.c) == 0 || d.in_features == out.c,
    }
}

/// Checks that a layer list forms a plausible feed-forward chain: every
/// consecutive pair is [`chainable`]. Returns the first offending index.
///
/// # Errors
///
/// Returns `Err(i)` when layer `i+1` cannot consume layer `i`'s output.
pub fn validate_chain(layers: &[OpSpec]) -> Result<(), usize> {
    for (i, pair) in layers.windows(2).enumerate() {
        // Expand convs only; parallel branches (e.g. fire modules, residual
        // blocks) legitimately repeat inputs, so only flag hard channel
        // mismatches where *neither* interpretation fits.
        if !chainable(&pair[0], &pair[1]) && !chainable(&pair[0], &pair[0]) && i > 0 {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2dSpec;
    use crate::dense::DenseSpec;
    use crate::models;

    #[test]
    fn conv_shapes_follow_the_arithmetic() {
        let c = Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3);
        let op = OpSpec::Conv2d(c);
        assert_eq!(input_shape(&op), TensorShape::nchw(1, 3, 224, 224));
        assert_eq!(output_shape(&op), TensorShape::nchw(1, 64, 112, 112));
    }

    #[test]
    fn dense_shapes_are_flat() {
        let op = OpSpec::Dense(DenseSpec::new(1, 512, 1000));
        assert_eq!(input_shape(&op), TensorShape::features(1, 512));
        assert_eq!(output_shape(&op), TensorShape::features(1, 1000));
        assert_eq!(output_shape(&op).elements(), 1000);
    }

    #[test]
    fn shape_accounting() {
        let s = TensorShape::nchw(1, 64, 56, 56);
        assert_eq!(s.elements(), 64 * 56 * 56);
        assert_eq!(s.bytes_f32(), 4 * 64 * 56 * 56);
        assert_eq!(s.to_string(), "1x64x56x56");
    }

    #[test]
    fn resnet_stage_transitions_chain() {
        // conv1 output (64 ch, 112x112) feeds stage-1 convs (64 -> 64, 56x56 after pool).
        let conv1 = OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3));
        let stage1 = OpSpec::Conv2d(Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        assert!(chainable(&conv1, &stage1));
        let wrong = OpSpec::Conv2d(Conv2dSpec::square(1, 128, 64, 56, 3, 1, 1));
        assert!(!chainable(&conv1, &wrong));
    }

    #[test]
    fn dense_flattening_is_allowed() {
        // VGG: conv output 512 x 7 x 7 flattens into fc6's 25088 inputs.
        let conv = OpSpec::Conv2d(Conv2dSpec::square(1, 512, 512, 14, 3, 1, 1));
        let fc6 = OpSpec::Dense(DenseSpec::new(1, 25_088, 4_096));
        assert!(chainable(&conv, &fc6));
    }

    #[test]
    fn zoo_models_have_no_hard_channel_breaks() {
        // The models are built from per-stage tables; this guards against
        // typos in channel counts.
        for model in models::evaluation_models() {
            let convs: Vec<OpSpec> = model
                .tasks()
                .iter()
                .filter(|t| t.template == crate::op::TemplateKind::Conv2dDirect)
                .map(|t| t.op)
                .collect();
            assert!(!convs.is_empty());
            for op in &convs {
                let shape = output_shape(op);
                assert!(shape.elements() > 0);
            }
        }
    }
}
