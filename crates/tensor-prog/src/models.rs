//! The model zoo: AlexNet, ResNet-18, VGG-16 at batch 1 on 224×224 inputs.
//!
//! Layer lists follow the ImageNet reference topologies the paper tunes.
//! ResNet-18 uses the v1.5-style projection shortcut in every stage (as in
//! the MXNet/Gluon model TVM's tutorials extract tasks from), which is what
//! yields Table 1's 12 distinct direct-conv2d tasks.

use crate::conv::Conv2dSpec;
use crate::dense::DenseSpec;
use crate::op::OpSpec;
use crate::task::{extract_tasks, Task};
use serde::{Deserialize, Serialize};

/// A DNN model: a name plus its extracted, de-duplicated tuning tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    name: String,
    tasks: Vec<Task>,
}

impl DnnModel {
    /// Builds a model from its raw layer list (tasks are extracted and
    /// de-duplicated as TVM does).
    #[must_use]
    pub fn from_layers(name: &str, layers: &[OpSpec]) -> Self {
        Self {
            name: name.to_owned(),
            tasks: extract_tasks(name, layers),
        }
    }

    /// Model name, e.g. `"ResNet-18"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The de-duplicated tuning tasks in extraction order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total direct-algorithm FLOPs of one forward pass (all occurrences).
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.tasks
            .iter()
            .filter(|t| !matches!(t.template, crate::op::TemplateKind::Conv2dWinograd))
            .map(Task::weighted_flops)
            .sum()
    }
}

/// AlexNet (Krizhevsky et al., 2012): 5 convolutions + 3 dense layers.
/// Extracts 12 tasks: 5 conv2d, 4 winograd conv2d, 3 dense (Table 1).
#[must_use]
pub fn alexnet() -> DnnModel {
    let layers = vec![
        OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 11, 4, 2)),
        OpSpec::Conv2d(Conv2dSpec::square(1, 64, 192, 27, 5, 1, 2)),
        OpSpec::Conv2d(Conv2dSpec::square(1, 192, 384, 13, 3, 1, 1)),
        OpSpec::Conv2d(Conv2dSpec::square(1, 384, 256, 13, 3, 1, 1)),
        OpSpec::Conv2d(Conv2dSpec::square(1, 256, 256, 13, 3, 1, 1)),
        OpSpec::Dense(DenseSpec::new(1, 9_216, 4_096)),
        OpSpec::Dense(DenseSpec::new(1, 4_096, 4_096)),
        OpSpec::Dense(DenseSpec::new(1, 4_096, 1_000)),
    ];
    DnnModel::from_layers("AlexNet", &layers)
}

/// ResNet-18 (He et al., 2016), v1.5-style projection shortcuts.
/// Extracts 17 tasks: 12 conv2d, 4 winograd conv2d, 1 dense (Table 1).
#[must_use]
pub fn resnet18() -> DnnModel {
    let mut layers = vec![OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3))];
    // (in_ch, out_ch, input size entering the stage, first-block stride)
    let stages: [(u32, u32, u32, u32); 4] = [(64, 64, 56, 1), (64, 128, 56, 2), (128, 256, 28, 2), (256, 512, 14, 2)];
    for (in_ch, out_ch, in_size, stride) in stages {
        let out_size = in_size / stride;
        // Block 1: strided 3x3, projection shortcut, then unit 3x3.
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, out_ch, in_size, 3, stride, 1)));
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, out_ch, in_size, 1, stride, 0)));
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, out_ch, out_ch, out_size, 3, 1, 1)));
        // Block 2: two unit 3x3 convolutions.
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, out_ch, out_ch, out_size, 3, 1, 1)));
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, out_ch, out_ch, out_size, 3, 1, 1)));
    }
    layers.push(OpSpec::Dense(DenseSpec::new(1, 512, 1_000)));
    DnnModel::from_layers("ResNet-18", &layers)
}

/// VGG-16 (Simonyan & Zisserman, 2015): 13 convolutions (9 unique shapes)
/// and 3 dense layers. Extracts 21 tasks: 9 conv2d, 9 winograd conv2d,
/// and 3 dense (Table 1).
#[must_use]
pub fn vgg16() -> DnnModel {
    let conv = |in_ch: u32, out_ch: u32, size: u32| OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, out_ch, size, 3, 1, 1));
    let layers = vec![
        conv(3, 64, 224),
        conv(64, 64, 224),
        conv(64, 128, 112),
        conv(128, 128, 112),
        conv(128, 256, 56),
        conv(256, 256, 56),
        conv(256, 256, 56),
        conv(256, 512, 28),
        conv(512, 512, 28),
        conv(512, 512, 28),
        conv(512, 512, 14),
        conv(512, 512, 14),
        conv(512, 512, 14),
        OpSpec::Dense(DenseSpec::new(1, 25_088, 4_096)),
        OpSpec::Dense(DenseSpec::new(1, 4_096, 4_096)),
        OpSpec::Dense(DenseSpec::new(1, 4_096, 1_000)),
    ];
    DnnModel::from_layers("VGG-16", &layers)
}

/// SqueezeNet 1.1 (Iandola et al., 2016): conv1 + eight fire modules
/// (squeeze 1×1, expand 1×1 ‖ 3×3) + a 1×1 classifier conv. A purely
/// convolutional extension model exercising many small 1×1 workloads.
#[must_use]
pub fn squeezenet11() -> DnnModel {
    let mut layers = vec![OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 3, 2, 0))];
    // (input size, in_ch, squeeze, expand) per fire module, post-pool sizes.
    let fires: [(u32, u32, u32, u32); 8] = [
        (55, 64, 16, 64),
        (55, 128, 16, 64),
        (27, 128, 32, 128),
        (27, 256, 32, 128),
        (13, 256, 48, 192),
        (13, 384, 48, 192),
        (13, 384, 64, 256),
        (13, 512, 64, 256),
    ];
    for (size, in_ch, squeeze, expand) in fires {
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, squeeze, size, 1, 1, 0)));
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, squeeze, expand, size, 1, 1, 0)));
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, squeeze, expand, size, 3, 1, 1)));
    }
    layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, 512, 1_000, 13, 1, 1, 0)));
    DnnModel::from_layers("SqueezeNet-1.1", &layers)
}

/// ResNet-34 (He et al., 2016): conv1 + stages of [3, 4, 6, 3] basic
/// blocks with projection shortcuts on the strided stages.
#[must_use]
pub fn resnet34() -> DnnModel {
    let mut layers = vec![OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3))];
    let stages: [(u32, u32, u32, u32, usize); 4] = [(64, 64, 56, 1, 3), (64, 128, 56, 2, 4), (128, 256, 28, 2, 6), (256, 512, 14, 2, 3)];
    for (in_ch, out_ch, in_size, stride, blocks) in stages {
        let out_size = in_size / stride;
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, out_ch, in_size, 3, stride, 1)));
        if stride != 1 {
            layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, out_ch, in_size, 1, stride, 0)));
        }
        layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, out_ch, out_ch, out_size, 3, 1, 1)));
        for _ in 1..blocks {
            layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, out_ch, out_ch, out_size, 3, 1, 1)));
            layers.push(OpSpec::Conv2d(Conv2dSpec::square(1, out_ch, out_ch, out_size, 3, 1, 1)));
        }
    }
    layers.push(OpSpec::Dense(DenseSpec::new(1, 512, 1_000)));
    DnnModel::from_layers("ResNet-34", &layers)
}

/// VGG-19 (Simonyan & Zisserman, 2015): the 16-conv variant; its unique
/// workloads match VGG-16 but occurrence weights differ.
#[must_use]
pub fn vgg19() -> DnnModel {
    let conv = |in_ch: u32, out_ch: u32, size: u32| OpSpec::Conv2d(Conv2dSpec::square(1, in_ch, out_ch, size, 3, 1, 1));
    let mut layers = vec![conv(3, 64, 224), conv(64, 64, 224), conv(64, 128, 112), conv(128, 128, 112)];
    for _ in 0..4 {
        layers.push(conv(if layers.len() == 4 { 128 } else { 256 }, 256, 56));
    }
    for _ in 0..4 {
        layers.push(conv(if layers.len() == 8 { 256 } else { 512 }, 512, 28));
    }
    for _ in 0..4 {
        layers.push(conv(512, 512, 14));
    }
    layers.push(OpSpec::Dense(DenseSpec::new(1, 25_088, 4_096)));
    layers.push(OpSpec::Dense(DenseSpec::new(1, 4_096, 4_096)));
    layers.push(OpSpec::Dense(DenseSpec::new(1, 4_096, 1_000)));
    DnnModel::from_layers("VGG-19", &layers)
}

/// The three evaluation models of Table 1, in the paper's order.
#[must_use]
pub fn evaluation_models() -> Vec<DnnModel> {
    vec![alexnet(), resnet18(), vgg16()]
}

/// Extension models beyond the paper's Table 1, usable anywhere a
/// [`DnnModel`] is: the fleet example, the meta-training corpus, and
/// stress tests.
#[must_use]
pub fn extended_models() -> Vec<DnnModel> {
    vec![squeezenet11(), resnet34(), vgg19()]
}

/// Looks up an evaluation model by name (case-insensitive).
#[must_use]
pub fn find(name: &str) -> Option<DnnModel> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "alexnet" => Some(alexnet()),
        "resnet-18" | "resnet18" => Some(resnet18()),
        "vgg-16" | "vgg16" => Some(vgg16()),
        "squeezenet" | "squeezenet-1.1" | "squeezenet11" => Some(squeezenet11()),
        "resnet-34" | "resnet34" => Some(resnet34()),
        "vgg-19" | "vgg19" => Some(vgg19()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::TemplateKind;
    use crate::task::count_by_template;

    fn counts(model: &DnnModel) -> (usize, usize, usize) {
        let by = count_by_template(model.tasks());
        let get = |k: TemplateKind| by.iter().find(|(kind, _)| *kind == k).unwrap().1;
        (
            get(TemplateKind::Conv2dDirect),
            get(TemplateKind::Conv2dWinograd),
            get(TemplateKind::Dense),
        )
    }

    #[test]
    fn alexnet_matches_table1() {
        let m = alexnet();
        assert_eq!(m.tasks().len(), 12);
        assert_eq!(counts(&m), (5, 4, 3));
    }

    #[test]
    fn resnet18_matches_table1() {
        let m = resnet18();
        assert_eq!(m.tasks().len(), 17);
        assert_eq!(counts(&m), (12, 4, 1));
    }

    #[test]
    fn vgg16_matches_table1() {
        let m = vgg16();
        assert_eq!(m.tasks().len(), 21);
        assert_eq!(counts(&m), (9, 9, 3));
    }

    #[test]
    fn total_flops_are_in_published_ballpark() {
        // Published forward-pass MAC counts: AlexNet ~0.7 GMAC, ResNet-18
        // ~1.8 GMAC, VGG-16 ~15.5 GMAC. flops = 2 x MACs.
        let alex = alexnet().total_flops();
        assert!(alex > 1.2e9 && alex < 2.0e9, "alexnet {alex}");
        let res = resnet18().total_flops();
        assert!(res > 3.0e9 && res < 4.5e9, "resnet {res}");
        let vgg = vgg16().total_flops();
        assert!(vgg > 28.0e9 && vgg < 33.0e9, "vgg {vgg}");
    }

    #[test]
    fn vgg_first_layer_is_the_224_conv() {
        let m = vgg16();
        let first = &m.tasks()[0];
        assert_eq!(first.template, TemplateKind::Conv2dDirect);
        assert!(first.op.to_string().contains("C3H224"));
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("ResNet-18").is_some());
        assert!(find("resnet18").is_some());
        assert!(find("VGG-16").is_some());
        assert!(find("mobilenet").is_none());
    }

    #[test]
    fn every_model_validates_its_operators() {
        for model in evaluation_models() {
            for task in model.tasks() {
                match &task.op {
                    crate::op::OpSpec::Conv2d(c) => c.validate().unwrap(),
                    crate::op::OpSpec::Dense(d) => d.validate().unwrap(),
                }
            }
        }
    }

    #[test]
    fn winograd_tasks_are_all_unit_stride() {
        for model in evaluation_models() {
            for task in model.tasks().iter().filter(|t| t.template == TemplateKind::Conv2dWinograd) {
                assert!(task.op.winograd_eligible(), "{task}");
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let m = resnet18();
        let json = serde_json::to_string(&m).unwrap();
        let back: DnnModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn squeezenet_is_fully_convolutional() {
        let m = squeezenet11();
        assert!(m.tasks().iter().all(|t| t.template != TemplateKind::Dense));
        // conv1 + 8 fires x 3 convs + classifier = 26 layers; dedup shrinks.
        assert!(m.tasks().len() >= 18, "{} tasks", m.tasks().len());
        let flops = m.total_flops();
        // Published ~0.35 GMAC -> ~0.7 GFLOP.
        assert!(flops > 0.5e9 && flops < 1.1e9, "squeezenet {flops}");
    }

    #[test]
    fn resnet34_is_heavier_than_resnet18() {
        assert!(resnet34().total_flops() > 1.8 * resnet18().total_flops());
        // Published ~3.6 GMAC -> ~7.3 GFLOP.
        let flops = resnet34().total_flops();
        assert!(flops > 6.0e9 && flops < 8.5e9, "resnet34 {flops}");
    }

    #[test]
    fn vgg19_shares_unique_workloads_with_vgg16() {
        let v16 = vgg16();
        let v19 = vgg19();
        let shapes16: std::collections::BTreeSet<String> = v16.tasks().iter().map(|t| format!("{}{}", t.template, t.op)).collect();
        let shapes19: std::collections::BTreeSet<String> = v19.tasks().iter().map(|t| format!("{}{}", t.template, t.op)).collect();
        assert_eq!(shapes16, shapes19);
        assert!(v19.total_flops() > v16.total_flops());
    }

    #[test]
    fn extended_models_lookup_and_validate() {
        for model in extended_models() {
            assert!(
                find(model.name()).is_some()
                    || find(&model.name().to_ascii_lowercase().replace('.', "")).is_some()
                    || model.name().contains("SqueezeNet")
            );
            for task in model.tasks() {
                match &task.op {
                    crate::op::OpSpec::Conv2d(c) => c.validate().unwrap(),
                    crate::op::OpSpec::Dense(d) => d.validate().unwrap(),
                }
            }
        }
    }
}
