//! Tuning tasks: unique (template, operator) pairs extracted from a model.
//!
//! TVM de-duplicates identical workloads before tuning — two ResNet blocks
//! with the same convolution shape share one task — and weights each task by
//! its occurrence count when reassembling end-to-end latency. Table 1's task
//! counts are counts of these de-duplicated tasks.

use crate::op::{OpSpec, TemplateKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier for a task within a model: model name plus index in
/// extraction order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId {
    /// Name of the model the task came from.
    pub model: String,
    /// Index within the model's task list (extraction order).
    pub index: usize,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/L{}", self.model, self.index)
    }
}

/// One auto-tuning task: a code template instantiated for an operator,
/// weighted by how many times the layer occurs in the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Stable identifier.
    pub id: TaskId,
    /// The code template to tune.
    pub template: TemplateKind,
    /// The operator workload.
    pub op: OpSpec,
    /// Number of layers in the model sharing this workload.
    pub occurrences: u32,
}

impl Task {
    /// FLOPs of one forward pass through one occurrence of this layer
    /// (direct-algorithm count, the denominator of reported GFLOPS).
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.op.flops()
    }

    /// FLOPs weighted by how many times the layer occurs in the model.
    #[must_use]
    pub fn weighted_flops(&self) -> f64 {
        self.flops() * f64::from(self.occurrences)
    }

    /// Converts an achieved throughput (GFLOPS) on this task into the
    /// latency contribution (milliseconds) of all its occurrences.
    #[must_use]
    pub fn latency_ms(&self, gflops: f64) -> f64 {
        assert!(gflops > 0.0, "throughput must be positive");
        self.weighted_flops() / gflops / 1e6
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {} x{}", self.id, self.template, self.op, self.occurrences)
    }
}

/// Builds the de-duplicated task list for a model from its raw layer list.
///
/// Winograd-eligible convolutions produce **two** tasks (direct + winograd),
/// reproducing how TVM tunes both templates and picks the faster; dense
/// layers produce one. De-duplication is by (template, workload).
#[must_use]
pub fn extract_tasks(model: &str, layers: &[OpSpec]) -> Vec<Task> {
    let mut tasks: Vec<Task> = Vec::new();
    let push = |template: TemplateKind, op: OpSpec, tasks: &mut Vec<Task>| {
        if let Some(existing) = tasks.iter_mut().find(|t| t.template == template && t.op == op) {
            existing.occurrences += 1;
        } else {
            let index = tasks.len();
            tasks.push(Task {
                id: TaskId {
                    model: model.to_owned(),
                    index,
                },
                template,
                op,
                occurrences: 1,
            });
        }
    };
    // First pass: direct templates for every layer.
    for op in layers {
        let template = match op {
            OpSpec::Conv2d(_) => TemplateKind::Conv2dDirect,
            OpSpec::Dense(_) => TemplateKind::Dense,
        };
        push(template, *op, &mut tasks);
    }
    // Second pass: winograd variants for eligible convolutions, so direct
    // tasks keep contiguous indices (matching TVM's extraction order).
    for op in layers {
        if op.winograd_eligible() {
            push(TemplateKind::Conv2dWinograd, *op, &mut tasks);
        }
    }
    tasks
}

/// Counts tasks per template kind, for checking against Table 1.
#[must_use]
pub fn count_by_template(tasks: &[Task]) -> [(TemplateKind, usize); 3] {
    TemplateKind::ALL.map(|k| (k, tasks.iter().filter(|t| t.template == k).count()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2dSpec;
    use crate::dense::DenseSpec;

    fn layers() -> Vec<OpSpec> {
        vec![
            OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3)),
            OpSpec::Conv2d(Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1)),
            OpSpec::Conv2d(Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1)),
            OpSpec::Dense(DenseSpec::new(1, 512, 1000)),
        ]
    }

    #[test]
    fn duplicate_layers_merge_into_one_weighted_task() {
        let tasks = extract_tasks("toy", &layers());
        // conv1 direct, 3x3 direct (x2), dense, 3x3 winograd (x2)
        assert_eq!(tasks.len(), 4);
        let three_by_three = tasks
            .iter()
            .find(|t| t.template == TemplateKind::Conv2dDirect && t.occurrences == 2)
            .unwrap();
        assert_eq!(three_by_three.occurrences, 2);
        let wino = tasks.iter().find(|t| t.template == TemplateKind::Conv2dWinograd).unwrap();
        assert_eq!(wino.occurrences, 2);
    }

    #[test]
    fn task_ids_are_sequential_and_unique() {
        let tasks = extract_tasks("toy", &layers());
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id.index, i);
            assert_eq!(t.id.model, "toy");
        }
    }

    #[test]
    fn weighted_flops_accounts_for_occurrences() {
        let tasks = extract_tasks("toy", &layers());
        let t = tasks.iter().find(|t| t.occurrences == 2).unwrap();
        assert!((t.weighted_flops() - 2.0 * t.flops()).abs() < 1.0);
    }

    #[test]
    fn latency_conversion_is_dimensionally_correct() {
        // 2 GFLOP of work at 1000 GFLOPS through one occurrence = 2 ms.
        let task = Task {
            id: TaskId {
                model: "toy".into(),
                index: 0,
            },
            template: TemplateKind::Dense,
            op: OpSpec::Dense(DenseSpec::new(1, 1_000_000, 1_000)),
            occurrences: 1,
        };
        let latency = task.latency_ms(1000.0);
        assert!((latency - task.flops() / 1e9).abs() < 1e-9);
    }

    #[test]
    fn count_by_template_covers_all_kinds() {
        let tasks = extract_tasks("toy", &layers());
        let counts = count_by_template(&tasks);
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, tasks.len());
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn latency_rejects_nonpositive_throughput() {
        let tasks = extract_tasks("toy", &layers());
        let _ = tasks[0].latency_ms(0.0);
    }
}
