//! Tensor operator specifications, DNN model zoo, and tuning-task extraction.
//!
//! The paper tunes three ImageNet models — AlexNet, ResNet-18, and VGG-16 —
//! whose layers are lowered to TVM-style *code templates* (Conv2D, Winograd
//! Conv2D, Dense). Table 1 reports the resulting task inventory: 12 tasks for
//! AlexNet, 17 for ResNet-18, and 21 for VGG-16. This crate defines the
//! operator records ([`Conv2dSpec`], [`DenseSpec`]), the model zoo
//! ([`models`]), and the de-duplicating task extraction ([`task`]) that
//! reproduces exactly those counts.
//!
//! # Examples
//!
//! ```
//! use glimpse_tensor_prog::models;
//!
//! let resnet = models::resnet18();
//! assert_eq!(resnet.tasks().len(), 17);
//! let total_flops: f64 = resnet.tasks().iter().map(|t| t.weighted_flops()).sum();
//! assert!(total_flops > 1e9);
//! ```

#![forbid(unsafe_code)]

pub mod conv;
pub mod dense;
pub mod models;
pub mod op;
pub mod shape;
pub mod task;

pub use conv::Conv2dSpec;
pub use dense::DenseSpec;
pub use models::DnnModel;
pub use op::{OpSpec, TemplateKind};
pub use task::{Task, TaskId};
