//! Dense (fully connected) operator specification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense layer: `output[b, o] = Σ_i input[b, i] · weight[o, i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseSpec {
    /// Batch size.
    pub batch: u32,
    /// Input features.
    pub in_features: u32,
    /// Output features.
    pub out_features: u32,
}

impl DenseSpec {
    /// Creates a dense spec.
    #[must_use]
    pub fn new(batch: u32, in_features: u32, out_features: u32) -> Self {
        Self {
            batch,
            in_features,
            out_features,
        }
    }

    /// Multiply–accumulate-counted FLOPs (2 × MACs) for one forward pass.
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * f64::from(self.batch) * f64::from(self.in_features) * f64::from(self.out_features)
    }

    /// Bytes of the (fp32) input activations.
    #[must_use]
    pub fn input_bytes(&self) -> f64 {
        4.0 * f64::from(self.batch) * f64::from(self.in_features)
    }

    /// Bytes of the (fp32) weight matrix.
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        4.0 * f64::from(self.in_features) * f64::from(self.out_features)
    }

    /// Bytes of the (fp32) output activations.
    #[must_use]
    pub fn output_bytes(&self) -> f64 {
        4.0 * f64::from(self.batch) * f64::from(self.out_features)
    }

    /// Arithmetic intensity in FLOPs per byte of compulsory traffic. Dense
    /// layers at batch 1 are heavily memory-bound (intensity < 1).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / (self.input_bytes() + self.weight_bytes() + self.output_bytes())
    }

    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch == 0 || self.in_features == 0 || self.out_features == 0 {
            return Err("all dense dimensions must be positive".to_owned());
        }
        Ok(())
    }
}

impl fmt::Display for DenseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dense N{} {}x{}", self.batch, self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_match_hand_calculation() {
        // VGG-16 fc6: 2 * 25088 * 4096
        let d = DenseSpec::new(1, 25_088, 4_096);
        assert!((d.flops() - 205_520_896.0).abs() < 1.0);
    }

    #[test]
    fn batch_one_dense_is_memory_bound() {
        let d = DenseSpec::new(1, 4_096, 4_096);
        assert!(d.arithmetic_intensity() < 1.0);
    }

    #[test]
    fn validation_rejects_zero_dims() {
        assert!(DenseSpec::new(1, 0, 10).validate().is_err());
        assert!(DenseSpec::new(1, 10, 10).validate().is_ok());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(DenseSpec::new(1, 512, 1000).to_string(), "dense N1 512x1000");
    }
}
