//! 2-D convolution operator specification (NCHW, OIHW).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2-D convolution layer in NCHW layout with OIHW weights.
///
/// This mirrors the workload tuple TVM hands to its CUDA `conv2d` templates:
/// `(batch, in_channels, in_size, out_channels, kernel, stride, padding)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Batch size (the paper tunes inference, batch = 1).
    pub batch: u32,
    /// Input channels.
    pub in_channels: u32,
    /// Output channels.
    pub out_channels: u32,
    /// Input height in pixels.
    pub in_h: u32,
    /// Input width in pixels.
    pub in_w: u32,
    /// Kernel height.
    pub kernel_h: u32,
    /// Kernel width.
    pub kernel_w: u32,
    /// Stride (same in both dimensions).
    pub stride: u32,
    /// Zero padding (same on all sides).
    pub padding: u32,
}

impl Conv2dSpec {
    /// Convenience constructor for square inputs and kernels.
    #[must_use]
    pub fn square(batch: u32, in_channels: u32, out_channels: u32, in_size: u32, kernel: u32, stride: u32, padding: u32) -> Self {
        Self {
            batch,
            in_channels,
            out_channels,
            in_h: in_size,
            in_w: in_size,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Output height after padding and striding.
    #[must_use]
    pub fn out_h(&self) -> u32 {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after padding and striding.
    #[must_use]
    pub fn out_w(&self) -> u32 {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Multiply–accumulate-counted FLOPs (2 × MACs) for one forward pass.
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * f64::from(self.batch)
            * f64::from(self.out_channels)
            * f64::from(self.out_h())
            * f64::from(self.out_w())
            * f64::from(self.in_channels)
            * f64::from(self.kernel_h)
            * f64::from(self.kernel_w)
    }

    /// Bytes of the (fp32) input activation tensor.
    #[must_use]
    pub fn input_bytes(&self) -> f64 {
        4.0 * f64::from(self.batch) * f64::from(self.in_channels) * f64::from(self.in_h) * f64::from(self.in_w)
    }

    /// Bytes of the (fp32) weight tensor.
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        4.0 * f64::from(self.out_channels) * f64::from(self.in_channels) * f64::from(self.kernel_h) * f64::from(self.kernel_w)
    }

    /// Bytes of the (fp32) output activation tensor.
    #[must_use]
    pub fn output_bytes(&self) -> f64 {
        4.0 * f64::from(self.batch) * f64::from(self.out_channels) * f64::from(self.out_h()) * f64::from(self.out_w())
    }

    /// Whether TVM's CUDA Winograd template applies: unit stride, square
    /// 3×3 (or small 5×5) kernel. This rule reproduces Table 1's winograd
    /// task counts (4 for AlexNet, 4 for ResNet-18, 9 for VGG-16).
    #[must_use]
    pub fn winograd_eligible(&self) -> bool {
        self.stride == 1 && self.kernel_h == self.kernel_w && (self.kernel_h == 3 || self.kernel_h == 5)
    }

    /// Arithmetic intensity in FLOPs per byte of compulsory traffic.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / (self.input_bytes() + self.weight_bytes() + self.output_bytes())
    }

    /// Checks structural validity (non-zero dims, kernel fits input).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch == 0 || self.in_channels == 0 || self.out_channels == 0 {
            return Err("batch and channel counts must be positive".to_owned());
        }
        if self.kernel_h == 0 || self.kernel_w == 0 || self.stride == 0 {
            return Err("kernel and stride must be positive".to_owned());
        }
        if self.in_h + 2 * self.padding < self.kernel_h || self.in_w + 2 * self.padding < self.kernel_w {
            return Err("kernel larger than padded input".to_owned());
        }
        Ok(())
    }
}

impl fmt::Display for Conv2dSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv2d N{}C{}H{}W{} -> C{} k{}x{} s{} p{}",
            self.batch, self.in_channels, self.in_h, self.in_w, self.out_channels, self.kernel_h, self.kernel_w, self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn resnet_conv1() -> Conv2dSpec {
        Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3)
    }

    #[test]
    fn output_size_matches_hand_calculation() {
        let c = resnet_conv1();
        assert_eq!(c.out_h(), 112);
        assert_eq!(c.out_w(), 112);
        let c = Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1);
        assert_eq!(c.out_h(), 56);
    }

    #[test]
    fn flops_match_hand_calculation() {
        // conv1 of ResNet-18: 2 * 64 * 112^2 * 3 * 7 * 7 = 236_027_904
        let c = resnet_conv1();
        assert!((c.flops() - 236_027_904.0).abs() < 1.0);
    }

    #[test]
    fn winograd_eligibility_rule() {
        assert!(Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1).winograd_eligible());
        assert!(Conv2dSpec::square(1, 64, 192, 27, 5, 1, 2).winograd_eligible());
        assert!(!Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3).winograd_eligible());
        assert!(!Conv2dSpec::square(1, 64, 128, 56, 3, 2, 1).winograd_eligible());
        assert!(!Conv2dSpec::square(1, 64, 128, 56, 1, 1, 0).winograd_eligible());
    }

    #[test]
    fn validation_catches_degenerate_shapes() {
        assert!(resnet_conv1().validate().is_ok());
        let mut bad = resnet_conv1();
        bad.stride = 0;
        assert!(bad.validate().is_err());
        let mut bad = resnet_conv1();
        bad.in_h = 2;
        bad.padding = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(resnet_conv1().to_string(), "conv2d N1C3H224W224 -> C64 k7x7 s2 p3");
    }

    proptest! {
        #[test]
        fn flops_scale_linearly_with_batch(b in 1u32..8, c in 1u32..64) {
            let one = Conv2dSpec::square(1, c, 32, 28, 3, 1, 1);
            let many = Conv2dSpec::square(b, c, 32, 28, 3, 1, 1);
            prop_assert!((many.flops() - f64::from(b) * one.flops()).abs() < 1e-6 * many.flops().max(1.0));
        }

        #[test]
        fn output_never_exceeds_padded_input(size in 8u32..64, k in 1u32..6, s in 1u32..4, p in 0u32..3) {
            prop_assume!(size + 2 * p >= k);
            let c = Conv2dSpec::square(1, 8, 8, size, k, s, p);
            prop_assert!(c.out_h() <= size + 2 * p);
            prop_assert!(c.out_h() >= 1);
        }
    }
}
