//! Operator + template pairing: what TVM calls a *code template* (§2.1).

use crate::conv::Conv2dSpec;
use crate::dense::DenseSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The code template a task is lowered to, matching the template kinds the
/// paper's Table 1 counts (conv2d, winograd conv2d, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Direct tiled convolution (TVM `conv2d_nchw.cuda`).
    Conv2dDirect,
    /// Winograd convolution (TVM `conv2d_nchw_winograd.cuda`).
    Conv2dWinograd,
    /// Tiled matrix–vector / matrix–matrix product (TVM `dense.cuda`).
    Dense,
}

impl TemplateKind {
    /// All template kinds.
    pub const ALL: [TemplateKind; 3] = [TemplateKind::Conv2dDirect, TemplateKind::Conv2dWinograd, TemplateKind::Dense];
}

impl fmt::Display for TemplateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TemplateKind::Conv2dDirect => "conv2d",
            TemplateKind::Conv2dWinograd => "winograd conv2d",
            TemplateKind::Dense => "dense",
        };
        f.write_str(name)
    }
}

/// A concrete operator instance to be tuned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpSpec {
    /// 2-D convolution.
    Conv2d(Conv2dSpec),
    /// Dense layer.
    Dense(DenseSpec),
}

impl OpSpec {
    /// FLOPs of one forward pass through the operator.
    ///
    /// For the Winograd template callers should use
    /// [`OpSpec::effective_flops`] which accounts for the transform's
    /// multiplication savings; `flops` is always the direct-algorithm count
    /// (what GFLOPS throughput numbers are conventionally reported against).
    #[must_use]
    pub fn flops(&self) -> f64 {
        match self {
            OpSpec::Conv2d(c) => c.flops(),
            OpSpec::Dense(d) => d.flops(),
        }
    }

    /// Algorithm-adjusted FLOPs: Winograd F(2×2, 3×3) performs ~2.25× fewer
    /// multiplies than the direct method (per Lavin & Gray), at the price of
    /// extra transform traffic.
    #[must_use]
    pub fn effective_flops(&self, template: TemplateKind) -> f64 {
        match (self, template) {
            (OpSpec::Conv2d(c), TemplateKind::Conv2dWinograd) => {
                // m = 2 output tile: (m + r - 1)^2 / (m^2 * r^2) multiply ratio.
                let r = f64::from(c.kernel_h);
                let m = 2.0;
                let ratio = ((m + r - 1.0) * (m + r - 1.0)) / (m * m * r * r);
                c.flops() * ratio
            }
            _ => self.flops(),
        }
    }

    /// Total compulsory (cold-cache) memory traffic in bytes.
    #[must_use]
    pub fn compulsory_bytes(&self) -> f64 {
        match self {
            OpSpec::Conv2d(c) => c.input_bytes() + c.weight_bytes() + c.output_bytes(),
            OpSpec::Dense(d) => d.input_bytes() + d.weight_bytes() + d.output_bytes(),
        }
    }

    /// Whether the Winograd template may be instantiated for this operator.
    #[must_use]
    pub fn winograd_eligible(&self) -> bool {
        match self {
            OpSpec::Conv2d(c) => c.winograd_eligible(),
            OpSpec::Dense(_) => false,
        }
    }

    /// Numeric description of the layer, used by the prior generator `H`
    /// (§3.1 takes "a layer specification" as input) and by cost-model
    /// transfer across tasks. Log-scaled to keep magnitudes comparable.
    #[must_use]
    pub fn layer_features(&self) -> Vec<f64> {
        fn lg(v: f64) -> f64 {
            (1.0 + v).log2()
        }
        match self {
            OpSpec::Conv2d(c) => vec![
                1.0, // operator class: conv
                lg(f64::from(c.batch)),
                lg(f64::from(c.in_channels)),
                lg(f64::from(c.out_channels)),
                lg(f64::from(c.in_h)),
                lg(f64::from(c.in_w)),
                f64::from(c.kernel_h),
                f64::from(c.stride),
                f64::from(c.padding),
                lg(c.flops()),
                lg(c.arithmetic_intensity()),
            ],
            OpSpec::Dense(d) => vec![
                0.0, // operator class: dense
                lg(f64::from(d.batch)),
                lg(f64::from(d.in_features)),
                lg(f64::from(d.out_features)),
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                lg(d.flops()),
                lg(d.arithmetic_intensity()),
            ],
        }
    }

    /// Width of [`OpSpec::layer_features`].
    pub const LAYER_FEATURE_COUNT: usize = 11;
}

impl fmt::Display for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpSpec::Conv2d(c) => c.fmt(f),
            OpSpec::Dense(d) => d.fmt(f),
        }
    }
}

impl From<Conv2dSpec> for OpSpec {
    fn from(value: Conv2dSpec) -> Self {
        OpSpec::Conv2d(value)
    }
}

impl From<DenseSpec> for OpSpec {
    fn from(value: DenseSpec) -> Self {
        OpSpec::Dense(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winograd_reduces_effective_flops_for_3x3() {
        let op = OpSpec::Conv2d(Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        let direct = op.effective_flops(TemplateKind::Conv2dDirect);
        let wino = op.effective_flops(TemplateKind::Conv2dWinograd);
        assert!((direct / wino - 2.25).abs() < 1e-9);
    }

    #[test]
    fn dense_never_winograd_eligible() {
        let op = OpSpec::Dense(DenseSpec::new(1, 512, 1000));
        assert!(!op.winograd_eligible());
        assert_eq!(op.effective_flops(TemplateKind::Dense), op.flops());
    }

    #[test]
    fn layer_features_have_declared_width() {
        let conv = OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3));
        let dense = OpSpec::Dense(DenseSpec::new(1, 4096, 1000));
        assert_eq!(conv.layer_features().len(), OpSpec::LAYER_FEATURE_COUNT);
        assert_eq!(dense.layer_features().len(), OpSpec::LAYER_FEATURE_COUNT);
    }

    #[test]
    fn layer_features_distinguish_operator_class() {
        let conv = OpSpec::Conv2d(Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3));
        let dense = OpSpec::Dense(DenseSpec::new(1, 4096, 1000));
        assert_eq!(conv.layer_features()[0], 1.0);
        assert_eq!(dense.layer_features()[0], 0.0);
    }

    #[test]
    fn template_display_matches_table1_vocabulary() {
        assert_eq!(TemplateKind::Conv2dDirect.to_string(), "conv2d");
        assert_eq!(TemplateKind::Conv2dWinograd.to_string(), "winograd conv2d");
        assert_eq!(TemplateKind::Dense.to_string(), "dense");
    }

    #[test]
    fn conversions_from_specs() {
        let c = Conv2dSpec::square(1, 8, 8, 8, 3, 1, 1);
        assert!(matches!(OpSpec::from(c), OpSpec::Conv2d(_)));
        let d = DenseSpec::new(1, 8, 8);
        assert!(matches!(OpSpec::from(d), OpSpec::Dense(_)));
    }
}
