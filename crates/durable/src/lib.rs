//! Crash-consistent file IO primitives for the tuning stack.
//!
//! A Glimpse tuning run spends (simulated) GPU hours per (network, device)
//! pair; losing the trial journal to a crash means restart-from-zero, and a
//! bare `std::fs::write` can leave a torn file even on a clean run. This
//! crate is the workspace's single sanctioned durable-IO module (lint rule
//! IO1 forbids direct `std::fs::write`/`File::create` everywhere else):
//!
//! * [`atomic_write`] — temp file + fsync + rename (+ parent-directory
//!   fsync on Unix), so readers observe either the old bytes or the new
//!   bytes, never a prefix.
//! * [`crc32`] — table-driven CRC-32 (IEEE, reflected) for record
//!   integrity checks.
//! * [`wal`] — an append-only write-ahead log of length-prefixed,
//!   checksummed, sequence-numbered frames whose recovery path tolerates a
//!   truncated tail and a corrupted trailing record (lossy-tail recovery).
//! * [`envelope`] — the CRC32-checksummed, schema-versioned wrapper every
//!   saved artifact (priors, corpus, tuning logs, calibration, spec-DB
//!   snapshots) travels in, with a panic-free typed verify-on-load.
//!
//! This crate sits at the bottom of the workspace DAG (no `glimpse_*`
//! dependencies) so every layer — `space` log files, `core` artifacts,
//! `tuners` journals, `bench` reports — can route writes through it.

#![forbid(unsafe_code)]

pub mod envelope;
pub mod wal;

use std::io::Write;
use std::path::Path;

pub use envelope::{read_envelope, write_envelope, EnvelopeSpec, Integrity};
pub use wal::{open_for_append, open_for_append_at, recover, scan, Recovery, Tail, WalFrame, WalWriter};

/// CRC-32 lookup table (IEEE 802.3 polynomial, reflected form).
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes` — the checksum carried by every WAL frame.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Atomically replaces the contents of `path` with `bytes`.
///
/// The bytes are written to a sibling temp file, fsynced, then renamed over
/// `path`; on Unix the parent directory is fsynced afterwards so the rename
/// itself is durable. A crash at any point leaves either the old file or
/// the new file — never a torn mixture.
///
/// # Errors
///
/// Returns the underlying IO error; on failure the destination is
/// untouched (a stale temp file may remain and is overwritten next time).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = temp_sibling(path);
    let mut file = std::fs::File::options().write(true).create(true).truncate(true).open(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// The temp-file path `atomic_write` stages into: `<name>.tmp` next to the
/// destination, so the rename never crosses a filesystem boundary.
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(std::ffi::OsStr::to_os_string).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs `path`'s parent directory so a completed rename survives power
/// loss. Best-effort: directory fsync is not supported everywhere, and the
/// rename has already succeeded, so errors are swallowed.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"glimpse journal record".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join("glimpse_durable_test_aw");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer than before").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer than before");
        assert!(!temp_sibling(&path).exists(), "temp file must not linger");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
