//! Append-only write-ahead log of checksummed, sequence-numbered frames.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [payload_len: u32][seq: u64][crc32(payload): u32][payload bytes]
//! ```
//!
//! The payload is opaque to this module (the tuners layer stores one JSON
//! trial record per frame). Sequence numbers are assigned by the writer,
//! start at 0, and increase by exactly 1 per frame — a gap, repeat, or
//! regression in the sequence marks the frame (and everything after it) as
//! corrupt.
//!
//! **Lossy-tail recovery.** [`scan`] walks frames from the front and stops
//! at the first anomaly: a frame cut short by a crash, a checksum mismatch
//! from a torn or bit-flipped write, an out-of-order sequence number, or an
//! implausible length. Everything before the anomaly is intact (each frame
//! is independently checksummed); everything from the anomaly on is
//! discarded, and [`open_for_append`] truncates the file back to the last
//! valid byte so new appends continue a clean log. Recovery never panics on
//! corrupted input — the [`Tail`] names what stopped the scan.
//!
//! **Durability policy.** [`WalWriter::append`] issues one unbuffered
//! `write_all` per frame: nothing sits in a userspace buffer, so a process
//! crash (or SIGKILL) loses at most the frame being written — the OS page
//! cache preserves completed writes across process death. [`WalWriter::sync`]
//! additionally fsyncs for power-loss durability; callers invoke it at
//! snapshot boundaries and on clean shutdown rather than per record, keeping
//! append overhead low.

use crate::crc32;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Bytes of frame header before the payload: `len (4) + seq (8) + crc (4)`.
pub const FRAME_HEADER_LEN: usize = 16;

/// Upper bound on a single frame's payload. A length field above this is
/// treated as corruption rather than an allocation request.
pub const MAX_PAYLOAD_LEN: u32 = 16 * 1024 * 1024;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Monotonic sequence number (0-based).
    pub seq: u64,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Why a scan stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The log ends exactly at a frame boundary.
    Clean,
    /// The final frame is cut short (torn write / crash mid-append).
    Truncated {
        /// Sequence number the truncated frame would have carried.
        seq: u64,
    },
    /// The final frame's payload fails its checksum.
    CrcMismatch {
        /// Sequence number of the corrupt frame.
        seq: u64,
    },
    /// The sequence number is not the expected successor (gap, duplicate,
    /// or regression).
    BadSequence {
        /// Sequence number the scan expected next.
        expected: u64,
        /// Sequence number actually found.
        found: u64,
    },
    /// The length field exceeds [`MAX_PAYLOAD_LEN`] (corrupt header).
    Oversized {
        /// Sequence number in the corrupt header.
        seq: u64,
        /// The implausible length.
        len: u32,
    },
}

impl Tail {
    /// Whether the log ended cleanly (no bytes discarded).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, Tail::Clean)
    }
}

impl std::fmt::Display for Tail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tail::Clean => write!(f, "clean tail"),
            Tail::Truncated { seq } => write!(f, "frame {seq} truncated mid-write"),
            Tail::CrcMismatch { seq } => write!(f, "frame {seq} failed its CRC check"),
            Tail::BadSequence { expected, found } => write!(f, "expected frame {expected}, found {found}"),
            Tail::Oversized { seq, len } => write!(f, "frame {seq} claims implausible length {len}"),
        }
    }
}

/// Result of scanning a log: the intact prefix and why the scan stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Frames of the intact prefix, in sequence order.
    pub frames: Vec<WalFrame>,
    /// Byte length of the intact prefix (the truncation point).
    pub valid_len: u64,
    /// What terminated the scan.
    pub tail: Tail,
}

impl Recovery {
    /// Sequence number the next appended frame should carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.frames.last().map_or(0, |f| f.seq + 1)
    }
}

/// Encodes one frame (header + payload) into a byte vector.
#[must_use]
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Scans `bytes` as a frame log starting at sequence number `first_seq`,
/// returning the intact prefix (lossy-tail recovery — see the module docs).
/// Never panics, whatever the input.
#[must_use]
pub fn scan(bytes: &[u8], first_seq: u64) -> Recovery {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut expected = first_seq;
    let tail = loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break Tail::Clean;
        }
        if remaining < FRAME_HEADER_LEN {
            break Tail::Truncated { seq: expected };
        }
        let len = read_u32(bytes, pos);
        let seq = read_u64(bytes, pos + 4);
        let crc = read_u32(bytes, pos + 12);
        if len > MAX_PAYLOAD_LEN {
            break Tail::Oversized { seq, len };
        }
        if remaining < FRAME_HEADER_LEN + len as usize {
            break Tail::Truncated { seq: expected };
        }
        if seq != expected {
            break Tail::BadSequence { expected, found: seq };
        }
        let payload = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len as usize];
        if crc32(payload) != crc {
            break Tail::CrcMismatch { seq };
        }
        frames.push(WalFrame {
            seq,
            payload: payload.to_vec(),
        });
        pos += FRAME_HEADER_LEN + len as usize;
        expected += 1;
    };
    Recovery {
        frames,
        valid_len: pos as u64,
        tail,
    }
}

/// Appending end of a write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    next_seq: u64,
}

impl WalWriter {
    /// Creates a fresh, empty log. Fails with `AlreadyExists` if `path`
    /// exists — an existing log must go through [`open_for_append`] so its
    /// contents are recovered, never clobbered.
    ///
    /// # Errors
    ///
    /// Any IO error from creating the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::options().write(true).create_new(true).open(path)?;
        Ok(Self { file, next_seq: 0 })
    }

    /// Sequence number the next [`WalWriter::append`] will assign.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one frame with a single unbuffered write, returning its
    /// sequence number. Durable against process crash immediately; call
    /// [`WalWriter::sync`] for power-loss durability.
    ///
    /// # Errors
    ///
    /// Any IO error from the write; the log may then hold a torn frame,
    /// which the next recovery scan truncates away.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let seq = self.next_seq;
        let frame = encode_frame(seq, payload);
        self.file.write_all(&frame)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Deliberately writes only the first `keep` bytes of the next frame —
    /// the torn-write fault injection used by chaos tests to simulate a
    /// crash mid-append. The writer must be discarded afterwards.
    ///
    /// # Errors
    ///
    /// Any IO error from the partial write.
    pub fn append_torn(&mut self, payload: &[u8], keep: usize) -> std::io::Result<()> {
        let frame = encode_frame(self.next_seq, payload);
        let cut = keep.min(frame.len());
        self.file.write_all(&frame[..cut])
    }

    /// Fsyncs the log (power-loss durability barrier).
    ///
    /// # Errors
    ///
    /// Any IO error from `fsync`.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// Reads and scans the whole log at `path` from sequence number 0.
///
/// # Errors
///
/// Any IO error from opening or reading the file. Corruption is **not** an
/// error — it is reported through [`Recovery::tail`].
pub fn recover(path: &Path) -> std::io::Result<Recovery> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan(&bytes, 0))
}

/// Recovers the log at `path`, truncates any corrupt tail, and returns a
/// writer positioned to append the next frame.
///
/// # Errors
///
/// Any IO error from opening, reading, or truncating the file.
pub fn open_for_append(path: &Path) -> std::io::Result<(WalWriter, Recovery)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let recovery = scan(&bytes, 0);
    let writer = open_for_append_at(path, recovery.valid_len, recovery.next_seq())?;
    Ok((writer, recovery))
}

/// Opens the log at `path`, truncates it to `valid_len` bytes, and returns
/// a writer that appends from sequence number `next_seq`. For callers that
/// validate payloads above the frame layer (e.g. JSON decoding) and must
/// discard a trailing frame whose bytes are intact but whose content is not.
///
/// # Errors
///
/// Any IO error from opening, truncating, or seeking.
pub fn open_for_append_at(path: &Path, valid_len: u64, next_seq: u64) -> std::io::Result<WalWriter> {
    let mut file = std::fs::File::options().read(true).write(true).open(path)?;
    file.set_len(valid_len)?;
    file.seek(SeekFrom::Start(valid_len))?;
    Ok(WalWriter { file, next_seq })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("glimpse_durable_test_wal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn log_bytes(payloads: &[&[u8]]) -> Vec<u8> {
        payloads.iter().enumerate().flat_map(|(i, p)| encode_frame(i as u64, p)).collect()
    }

    #[test]
    fn scan_roundtrips_clean_logs() {
        let bytes = log_bytes(&[b"alpha", b"", b"gamma gamma"]);
        let r = scan(&bytes, 0);
        assert!(r.tail.is_clean());
        assert_eq!(r.valid_len, bytes.len() as u64);
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.frames[2].payload, b"gamma gamma");
        assert_eq!(r.next_seq(), 3);
    }

    #[test]
    fn scan_truncated_tail_keeps_the_prefix() {
        let bytes = log_bytes(&[b"one", b"two", b"three"]);
        let intact = log_bytes(&[b"one", b"two"]).len();
        // Every cut point inside the third frame recovers exactly two frames.
        for cut in intact + 1..bytes.len() {
            let r = scan(&bytes[..cut], 0);
            assert_eq!(r.frames.len(), 2, "cut at {cut}");
            assert_eq!(r.valid_len, intact as u64);
            assert_eq!(r.tail, Tail::Truncated { seq: 2 });
        }
    }

    #[test]
    fn scan_stops_at_a_flipped_crc_byte() {
        let mut bytes = log_bytes(&[b"one", b"two"]);
        let first = encode_frame(0, b"one").len();
        // Flip a byte inside frame 1's payload.
        let at = first + FRAME_HEADER_LEN;
        bytes[at] ^= 0x40;
        let r = scan(&bytes, 0);
        assert_eq!(r.frames.len(), 1);
        assert_eq!(r.tail, Tail::CrcMismatch { seq: 1 });
        assert_eq!(r.valid_len, first as u64);
    }

    #[test]
    fn scan_stops_at_a_duplicate_sequence_number() {
        let mut bytes = log_bytes(&[b"one"]);
        bytes.extend_from_slice(&encode_frame(0, b"again")); // duplicate seq 0
        let r = scan(&bytes, 0);
        assert_eq!(r.frames.len(), 1);
        assert_eq!(r.tail, Tail::BadSequence { expected: 1, found: 0 });
    }

    #[test]
    fn scan_rejects_implausible_lengths_without_allocating() {
        let mut bytes = vec![0xFFu8; FRAME_HEADER_LEN];
        bytes.extend_from_slice(b"junk");
        let r = scan(&bytes, 0);
        assert!(r.frames.is_empty());
        assert!(matches!(r.tail, Tail::Oversized { .. }));
    }

    #[test]
    fn scan_never_panics_on_arbitrary_bytes() {
        let mut junk: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for cut in 0..junk.len() {
            let _ = scan(&junk[..cut], 0);
        }
        junk.reverse();
        let _ = scan(&junk, 0);
    }

    #[test]
    fn writer_then_recover_roundtrips() {
        let path = temp_path("roundtrip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        assert_eq!(w.append(b"r0").unwrap(), 0);
        assert_eq!(w.append(b"r1").unwrap(), 1);
        w.sync().unwrap();
        drop(w);
        let r = recover(&path).unwrap();
        assert!(r.tail.is_clean());
        assert_eq!(r.frames.len(), 2);
        assert!(WalWriter::create(&path).is_err(), "create must refuse an existing log");
    }

    #[test]
    fn open_for_append_truncates_a_torn_frame_and_continues() {
        let path = temp_path("torn.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"intact-0").unwrap();
        w.append_torn(b"doomed-1", 7).unwrap();
        drop(w);

        let (mut w, r) = open_for_append(&path).unwrap();
        assert_eq!(r.frames.len(), 1);
        assert_eq!(r.tail, Tail::Truncated { seq: 1 });
        assert_eq!(w.next_seq(), 1);
        w.append(b"fresh-1").unwrap();
        drop(w);

        // The repaired log is byte-identical to one written without the tear.
        let clean_path = temp_path("torn_clean.wal");
        let mut clean = WalWriter::create(&clean_path).unwrap();
        clean.append(b"intact-0").unwrap();
        clean.append(b"fresh-1").unwrap();
        drop(clean);
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&clean_path).unwrap());
    }
}
