//! The artifact envelope: a CRC32-checksummed, schema-versioned wrapper
//! around every saved artifact (priors, corpus, tuning logs, calibration
//! snapshots, spec-DB snapshots).
//!
//! An artifact written through [`write_envelope`] can be handed arbitrary
//! bytes back — a torn prefix, a bit flip, a file from a newer build, a
//! foreign file dropped in its place — and [`inspect`] classifies the damage
//! without panicking. There are exactly four verdicts:
//!
//! * [`Integrity::Intact`] — header parses, kind and schema match, CRC32 of
//!   the payload matches the stored checksum.
//! * [`Integrity::ChecksumMismatch`] — well-formed envelope, payload bytes
//!   disagree with the stored CRC (bit rot, partial overwrite).
//! * [`Integrity::SchemaDrift`] — well-formed envelope whose kind or schema
//!   version is not what the caller expects (artifact from an older or
//!   newer build, or the wrong artifact class entirely).
//! * [`Integrity::Truncated`] — the bytes do not parse as an envelope at
//!   all, or the payload is shorter than the header promised. A torn file
//!   and foreign bytes are indistinguishable from here, so both land in
//!   this bucket; the `detail` string says which heuristic fired.
//!
//! Two more variants exist only on the *filesystem* path
//! ([`read_envelope`]): [`Integrity::Missing`] for a file that is not
//! there, and [`Integrity::Unreadable`] for an IO error other than
//! not-found. A byte-level [`inspect`] never returns them.
//!
//! ## Wire format
//!
//! One ASCII header line, then the raw payload:
//!
//! ```text
//! glimpse-envelope <kind> v<schema> len=<bytes> crc=<crc32-hex>\n
//! <payload...>
//! ```
//!
//! The header is deliberately textual so `head -1` identifies any artifact
//! on disk, while the payload stays byte-exact (the CRC covers payload
//! bytes only — re-encoding is never needed to verify).

use crate::{atomic_write, crc32};
use std::fmt;
use std::path::Path;

/// Leading magic token of every envelope header line.
pub const MAGIC: &str = "glimpse-envelope";

/// The (kind, schema-version) pair an artifact class writes and expects
/// back. Kind is a short kebab-case noun (`"artifacts"`, `"tuning-log"`,
/// `"corpus"`, `"calibration"`, `"spec-db"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeSpec {
    /// Artifact class name embedded in the header.
    pub kind: &'static str,
    /// Schema version the current build reads and writes.
    pub schema: u32,
}

impl EnvelopeSpec {
    /// `kind v<schema>`, the form used in drift reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} v{}", self.kind, self.schema)
    }
}

/// Verdict of verifying candidate envelope bytes, plus the two
/// filesystem-only failure shapes. Never panics to produce; total over
/// arbitrary input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Integrity {
    /// Header, kind, schema, and payload CRC all check out.
    Intact,
    /// Well-formed envelope whose payload no longer matches its checksum.
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        stored: u32,
        /// CRC32 computed over the payload bytes actually present.
        computed: u32,
    },
    /// Well-formed envelope of an unexpected kind or schema version.
    SchemaDrift {
        /// `kind v<schema>` found in the header.
        found: String,
        /// `kind v<schema>` the caller expected.
        expected: String,
    },
    /// Not a parseable envelope, or the payload ends early.
    Truncated {
        /// Which parse step failed (for doctor output and logs).
        detail: String,
    },
    /// The artifact file does not exist (filesystem path only).
    Missing,
    /// The artifact file could not be read (filesystem path only).
    Unreadable {
        /// Stringified IO error.
        detail: String,
    },
}

impl Integrity {
    /// Whether the artifact is usable as-is.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        matches!(self, Integrity::Intact)
    }

    /// Short machine-stable tag (`intact`, `checksum-mismatch`, ...), used
    /// by doctor tables and degradation causes.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Integrity::Intact => "intact",
            Integrity::ChecksumMismatch { .. } => "checksum-mismatch",
            Integrity::SchemaDrift { .. } => "schema-drift",
            Integrity::Truncated { .. } => "truncated",
            Integrity::Missing => "missing",
            Integrity::Unreadable { .. } => "unreadable",
        }
    }
}

impl fmt::Display for Integrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Integrity::Intact => write!(f, "intact"),
            Integrity::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch (stored {stored:08x}, computed {computed:08x})")
            }
            Integrity::SchemaDrift { found, expected } => write!(f, "schema drift (found {found}, expected {expected})"),
            Integrity::Truncated { detail } => write!(f, "truncated envelope ({detail})"),
            Integrity::Missing => write!(f, "artifact file missing"),
            Integrity::Unreadable { detail } => write!(f, "artifact file unreadable ({detail})"),
        }
    }
}

impl std::error::Error for Integrity {}

/// The fields of a parsed header line, before kind/schema/CRC checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Artifact class name from the header.
    pub kind: String,
    /// Schema version from the header.
    pub schema: u32,
    /// Payload length the header promises.
    pub len: usize,
    /// Payload CRC32 the header promises.
    pub crc: u32,
}

impl Header {
    /// `kind v<schema>`, mirroring [`EnvelopeSpec::label`].
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} v{}", self.kind, self.schema)
    }
}

/// Builds the on-disk bytes for `payload` under `spec` (pure; no IO).
#[must_use]
pub fn seal(spec: EnvelopeSpec, payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{MAGIC} {} v{} len={} crc={:08x}\n",
        spec.kind,
        spec.schema,
        payload.len(),
        crc32(payload)
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Seals `payload` under `spec` and writes it through [`atomic_write`].
///
/// # Errors
///
/// Propagates the underlying IO error; the destination is untouched on
/// failure.
pub fn write_envelope(path: &Path, spec: EnvelopeSpec, payload: &[u8]) -> std::io::Result<()> {
    atomic_write(path, &seal(spec, payload))
}

/// Splits `bytes` into (header line, rest) and parses the header fields.
/// Total over arbitrary bytes: any malformation is a `Truncated` verdict.
fn parse_header(bytes: &[u8]) -> Result<(Header, &[u8]), Integrity> {
    // The header is short; refusing to scan further bounds work on huge
    // garbage files whose first newline is megabytes in.
    const MAX_HEADER: usize = 256;
    let window = &bytes[..bytes.len().min(MAX_HEADER)];
    let Some(nl) = window.iter().position(|&b| b == b'\n') else {
        return Err(Integrity::Truncated {
            detail: "no header line terminator".into(),
        });
    };
    let Ok(line) = std::str::from_utf8(&bytes[..nl]) else {
        return Err(Integrity::Truncated {
            detail: "header is not UTF-8".into(),
        });
    };
    let mut fields = line.split(' ');
    if fields.next() != Some(MAGIC) {
        return Err(Integrity::Truncated {
            detail: "missing magic token".into(),
        });
    }
    let (Some(kind), Some(version), Some(len_field), Some(crc_field), None) =
        (fields.next(), fields.next(), fields.next(), fields.next(), fields.next())
    else {
        return Err(Integrity::Truncated {
            detail: "wrong header field count".into(),
        });
    };
    let Some(schema) = version.strip_prefix('v').and_then(|v| v.parse::<u32>().ok()) else {
        return Err(Integrity::Truncated {
            detail: "unparseable schema version".into(),
        });
    };
    let Some(len) = len_field.strip_prefix("len=").and_then(|v| v.parse::<usize>().ok()) else {
        return Err(Integrity::Truncated {
            detail: "unparseable payload length".into(),
        });
    };
    let Some(crc) = crc_field.strip_prefix("crc=").and_then(|v| u32::from_str_radix(v, 16).ok()) else {
        return Err(Integrity::Truncated {
            detail: "unparseable payload checksum".into(),
        });
    };
    Ok((
        Header {
            kind: kind.to_string(),
            schema,
            len,
            crc,
        },
        &bytes[nl + 1..],
    ))
}

/// Parses just the header, without checking kind, schema, or payload.
/// Doctor uses this to classify unidentified files on disk.
///
/// # Errors
///
/// Returns the same `Truncated` verdicts as a full [`inspect`] when the
/// header does not parse.
pub fn sniff(bytes: &[u8]) -> Result<Header, Integrity> {
    parse_header(bytes).map(|(header, _)| header)
}

/// Verifies `bytes` against `spec` and, on success, returns the payload
/// slice. Check order: header shape, then kind+schema, then payload length,
/// then CRC — so a drifted-but-wellformed envelope reports `SchemaDrift`,
/// not a checksum error.
///
/// # Errors
///
/// Returns the non-`Intact` [`Integrity`] verdict describing the damage.
pub fn open(bytes: &[u8], spec: EnvelopeSpec) -> Result<&[u8], Integrity> {
    let (header, rest) = parse_header(bytes)?;
    if header.kind != spec.kind || header.schema != spec.schema {
        return Err(Integrity::SchemaDrift {
            found: header.label(),
            expected: spec.label(),
        });
    }
    if rest.len() < header.len {
        return Err(Integrity::Truncated {
            detail: format!("payload has {} of {} bytes", rest.len(), header.len),
        });
    }
    let payload = &rest[..header.len];
    let computed = crc32(payload);
    if computed != header.crc {
        return Err(Integrity::ChecksumMismatch {
            stored: header.crc,
            computed,
        });
    }
    Ok(payload)
}

/// Classifies `bytes` against `spec` without borrowing the payload.
#[must_use]
pub fn inspect(bytes: &[u8], spec: EnvelopeSpec) -> Integrity {
    match open(bytes, spec) {
        Ok(_) => Integrity::Intact,
        Err(verdict) => verdict,
    }
}

/// Reads `path` and verifies it against `spec`, returning the payload.
///
/// # Errors
///
/// `Missing` when the file does not exist, `Unreadable` on other IO
/// errors, otherwise the byte-level verdict from [`open`].
pub fn read_envelope(path: &Path, spec: EnvelopeSpec) -> Result<Vec<u8>, Integrity> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(Integrity::Missing),
        Err(e) => {
            return Err(Integrity::Unreadable { detail: e.to_string() });
        }
    };
    open(&bytes, spec).map(<[u8]>::to_vec)
}

/// Classifies the artifact at `path` against `spec`.
#[must_use]
pub fn verify_file(path: &Path, spec: EnvelopeSpec) -> Integrity {
    match read_envelope(path, spec) {
        Ok(_) => Integrity::Intact,
        Err(verdict) => verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: EnvelopeSpec = EnvelopeSpec {
        kind: "test-artifact",
        schema: 3,
    };

    #[test]
    fn seal_then_open_round_trips() {
        let payload = b"{\"answer\":42}";
        let sealed = seal(SPEC, payload);
        assert_eq!(open(&sealed, SPEC).unwrap(), payload);
        assert_eq!(inspect(&sealed, SPEC), Integrity::Intact);
    }

    #[test]
    fn empty_payload_is_intact() {
        let sealed = seal(SPEC, b"");
        assert_eq!(open(&sealed, SPEC).unwrap(), b"");
    }

    #[test]
    fn payload_with_newlines_and_magic_round_trips() {
        // The payload may itself contain header-lookalike lines.
        let payload = format!("{MAGIC} decoy v9 len=0 crc=00000000\nmore\n");
        let sealed = seal(SPEC, payload.as_bytes());
        assert_eq!(open(&sealed, SPEC).unwrap(), payload.as_bytes());
    }

    #[test]
    fn flipped_payload_bit_is_checksum_mismatch() {
        let sealed = seal(SPEC, b"payload bytes under test");
        let header_end = sealed.iter().position(|&b| b == b'\n').unwrap() + 1;
        for i in header_end..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(inspect(&bad, SPEC), Integrity::ChecksumMismatch { .. }),
                "payload flip at byte {i} missed"
            );
        }
    }

    #[test]
    fn flipped_stored_crc_is_checksum_mismatch() {
        let payload = b"payload";
        let header = format!(
            "{MAGIC} {} v{} len={} crc={:08x}\n",
            SPEC.kind,
            SPEC.schema,
            payload.len(),
            crc32(payload) ^ 0x1
        );
        let mut bad = header.into_bytes();
        bad.extend_from_slice(payload);
        assert!(matches!(inspect(&bad, SPEC), Integrity::ChecksumMismatch { .. }));
    }

    #[test]
    fn bumped_schema_is_drift_with_both_versions() {
        let bumped = EnvelopeSpec {
            kind: SPEC.kind,
            schema: SPEC.schema + 1,
        };
        let sealed = seal(bumped, b"payload");
        match inspect(&sealed, SPEC) {
            Integrity::SchemaDrift { found, expected } => {
                assert_eq!(found, "test-artifact v4");
                assert_eq!(expected, "test-artifact v3");
            }
            other => panic!("expected drift, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_drift() {
        let other = EnvelopeSpec {
            kind: "spec-db",
            schema: SPEC.schema,
        };
        let sealed = seal(other, b"payload");
        assert!(matches!(inspect(&sealed, SPEC), Integrity::SchemaDrift { .. }));
    }

    #[test]
    fn truncation_at_every_byte_is_typed_and_panic_free() {
        let sealed = seal(SPEC, b"0123456789abcdef");
        for cut in 0..sealed.len() {
            let verdict = inspect(&sealed[..cut], SPEC);
            assert!(
                matches!(verdict, Integrity::Truncated { .. }),
                "cut at {cut} gave {verdict:?}, expected Truncated"
            );
        }
    }

    #[test]
    fn arbitrary_garbage_is_truncated_not_a_panic() {
        for bytes in [
            &b""[..],
            &b"\n"[..],
            &b"not an envelope\n"[..],
            &b"glimpse-envelope\n"[..],
            &b"glimpse-envelope test-artifact v3 len=xx crc=zz\n"[..],
            &b"glimpse-envelope test-artifact vX len=1 crc=00000000\npayload"[..],
            &b"glimpse-envelope test-artifact v3 len=1 crc=00000000 extra\np"[..],
            &b"\xff\xfe\xfd\xfc"[..],
            &[0u8; 4096][..],
        ] {
            assert!(
                matches!(inspect(bytes, SPEC), Integrity::Truncated { .. }),
                "garbage {bytes:?} not classified Truncated"
            );
        }
    }

    #[test]
    fn oversized_len_field_is_truncated() {
        let bad = format!("{MAGIC} test-artifact v3 len=18446744073709551615 crc=00000000\nshort");
        assert!(matches!(inspect(bad.as_bytes(), SPEC), Integrity::Truncated { .. }));
    }

    #[test]
    fn extra_trailing_bytes_are_ignored() {
        // atomic_write never leaves a long tail, but a copied-over file
        // might; the CRC covers exactly `len` bytes.
        let mut sealed = seal(SPEC, b"payload");
        sealed.extend_from_slice(b"trailing junk");
        assert_eq!(open(&sealed, SPEC).unwrap(), b"payload");
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("glimpse_envelope_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        write_envelope(&path, SPEC, b"on-disk payload").unwrap();
        assert_eq!(read_envelope(&path, SPEC).unwrap(), b"on-disk payload");
        assert_eq!(verify_file(&path, SPEC), Integrity::Intact);
        assert_eq!(verify_file(&dir.join("absent.bin"), SPEC), Integrity::Missing);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sniff_reports_header_fields_without_spec() {
        let sealed = seal(SPEC, b"xyz");
        let header = sniff(&sealed).unwrap();
        assert_eq!(header.kind, "test-artifact");
        assert_eq!(header.schema, 3);
        assert_eq!(header.len, 3);
        assert_eq!(header.label(), "test-artifact v3");
    }
}
