//! Property tests on the kernel-shape lowering: the resource algebra must
//! hold for every template and every configuration.

use glimpse_space::templates;
use glimpse_space::SearchSpace;
use glimpse_tensor_prog::{models, Conv2dSpec, DenseSpec, OpSpec, TemplateKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spaces() -> Vec<SearchSpace> {
    vec![
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1)),
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 3, 64, 224, 7, 2, 3)),
        templates::conv2d_winograd_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1)),
        templates::dense_space(&DenseSpec::new(1, 4096, 4096)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resources_are_positive_and_consistent(seed in 0u64..2000, which in 0usize..4) {
        let space = &spaces()[which];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        let shape = space.kernel_shape(&config);
        prop_assert!(shape.threads_per_block >= 1);
        prop_assert!(shape.blocks >= 1);
        prop_assert!(shape.vthreads >= 1);
        prop_assert!(shape.work_per_thread >= 1);
        prop_assert!(shape.reduce_tile >= 1);
        prop_assert!(u64::from(shape.reduce_tile) <= shape.reduce_len);
        prop_assert_eq!(shape.total_threads(), shape.blocks * shape.threads_per_block);
        prop_assert!(shape.block_load_bytes > 0.0);
        prop_assert!(shape.regs_per_thread >= 24, "base register cost must be included");
    }

    #[test]
    fn features_are_finite_everywhere(seed in 0u64..2000, which in 0usize..4) {
        let space = &spaces()[which];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        for (i, f) in space.features(&config).iter().enumerate() {
            prop_assert!(f.is_finite(), "feature {i} = {f}");
        }
    }

    #[test]
    fn conv_direct_output_coverage_is_exact(seed in 0u64..2000) {
        // blocks x threads x work == full output volume (no over/under
        // computation) for the direct conv template.
        let spec = Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1);
        let space = templates::conv2d_direct_space(&spec);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample_uniform(&mut rng);
        let shape = space.kernel_shape(&config);
        let volume = u64::from(spec.out_channels) * u64::from(spec.out_h()) * u64::from(spec.out_w());
        prop_assert_eq!(shape.blocks * shape.threads_per_block * shape.work_per_thread, volume);
    }
}

#[test]
fn every_evaluation_task_lowers_every_sampled_config() {
    let mut rng = StdRng::seed_from_u64(9);
    for model in models::evaluation_models() {
        for task in model.tasks() {
            let space = templates::space_for_task(task);
            for _ in 0..20 {
                let config = space.sample_uniform(&mut rng);
                let shape = space.kernel_shape(&config);
                assert!(shape.threads_per_block >= 1, "{task}");
                match task.template {
                    TemplateKind::Dense => {
                        if let OpSpec::Dense(d) = &task.op {
                            assert_eq!(shape.reduce_len, u64::from(d.in_features));
                        }
                    }
                    _ => assert!(shape.reduce_len >= 1),
                }
            }
        }
    }
}
