//! Integer factorization utilities behind TVM-style `define_split` knobs.

/// All positive divisors of `n`, ascending.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn divisors(n: u32) -> Vec<u32> {
    assert!(n > 0, "divisors of zero are undefined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while (d as u64) * (d as u64) <= n as u64 {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// All ordered factorizations of `extent` into exactly `parts` positive
/// factors (factors may be 1), in lexicographic order. This is exactly the
/// choice set of TVM's `define_split(..., num_outputs = parts)`.
///
/// # Examples
///
/// ```
/// let f = glimpse_space::factorize::ordered_factorizations(6, 2);
/// assert_eq!(f, vec![vec![1, 6], vec![2, 3], vec![3, 2], vec![6, 1]]);
/// ```
///
/// The count equals `∏_p C(e_p + parts - 1, parts - 1)` over the prime
/// factorization `extent = ∏ p^e_p`.
///
/// # Panics
///
/// Panics if `extent == 0` or `parts == 0`.
#[must_use]
pub fn ordered_factorizations(extent: u32, parts: usize) -> Vec<Vec<u32>> {
    assert!(extent > 0, "extent must be positive");
    assert!(parts > 0, "parts must be positive");
    let mut out = Vec::new();
    let mut current = vec![1u32; parts];
    fill(extent, parts, &mut current, 0, &mut out);
    out
}

fn fill(remaining: u32, parts: usize, current: &mut Vec<u32>, at: usize, out: &mut Vec<Vec<u32>>) {
    if at + 1 == parts {
        current[at] = remaining;
        out.push(current.clone());
        return;
    }
    for d in divisors(remaining) {
        current[at] = d;
        fill(remaining / d, parts, current, at + 1, out);
    }
}

/// Number of ordered factorizations of `extent` into `parts` factors,
/// computed from the prime factorization without enumerating.
#[must_use]
pub fn count_ordered_factorizations(extent: u32, parts: usize) -> u128 {
    assert!(extent > 0 && parts > 0);
    let mut n = extent;
    let mut count: u128 = 1;
    let mut p = 2u32;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0u32;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            count *= stars_and_bars(e as u128, parts as u128 - 1);
        }
        p += 1;
    }
    if n > 1 {
        count *= stars_and_bars(1, parts as u128 - 1);
    }
    count
}

/// C(e + bars, bars): ways to place `e` identical items into `bars + 1` bins.
fn stars_and_bars(e: u128, bars: u128) -> u128 {
    // C(e + bars, bars) computed multiplicatively.
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 1..=bars {
        num *= e + i;
        den *= i;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(7), vec![1, 7]);
    }

    #[test]
    fn factorizations_of_4_into_2() {
        assert_eq!(ordered_factorizations(4, 2), vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
    }

    #[test]
    fn factorization_count_matches_formula() {
        for (extent, parts) in [(64u32, 4usize), (224, 4), (13, 2), (1000, 4), (49, 4), (1, 4)] {
            let listed = ordered_factorizations(extent, parts).len() as u128;
            assert_eq!(listed, count_ordered_factorizations(extent, parts), "extent={extent} parts={parts}");
        }
    }

    #[test]
    fn vgg_first_layer_split_sizes_match_paper_scale() {
        // 64 into 4 parts: C(9,3) = 84; 224 = 2^5*7 into 4: 56*4 = 224.
        assert_eq!(count_ordered_factorizations(64, 4), 84);
        assert_eq!(count_ordered_factorizations(224, 4), 224);
    }

    #[test]
    fn factorizations_of_one() {
        assert_eq!(ordered_factorizations(1, 3), vec![vec![1, 1, 1]]);
    }

    proptest! {
        #[test]
        fn every_factorization_multiplies_back(extent in 1u32..=256, parts in 1usize..=4) {
            for f in ordered_factorizations(extent, parts) {
                prop_assert_eq!(f.iter().product::<u32>(), extent);
                prop_assert_eq!(f.len(), parts);
            }
        }

        #[test]
        fn divisors_divide(n in 1u32..10_000) {
            for d in divisors(n) {
                prop_assert_eq!(n % d, 0);
            }
        }

        #[test]
        fn factorizations_are_unique(extent in 1u32..=128, parts in 1usize..=4) {
            let mut all = ordered_factorizations(extent, parts);
            let len = all.len();
            all.sort();
            all.dedup();
            prop_assert_eq!(all.len(), len);
        }
    }
}
