//! Configurations and the search space that indexes them.

use crate::kernel::{KernelShape, ResolvedKnobs, Semantics};
use crate::knob::{Knob, KnobValue};
use glimpse_tensor_prog::{OpSpec, TemplateKind};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point in a search space: a choice index per knob.
///
/// Configs are meaningful only relative to the [`SearchSpace`] that produced
/// them; the space validates index bounds on every use.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    indices: Vec<usize>,
}

impl Config {
    /// Creates a config from per-knob choice indices.
    #[must_use]
    pub fn new(indices: Vec<usize>) -> Self {
        Self { indices }
    }

    /// The per-knob choice indices.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Choice index of the `k`-th knob.
    #[must_use]
    pub fn index(&self, k: usize) -> usize {
        self.indices[k]
    }

    /// Overwrites this config with `other`, reusing the existing index
    /// buffer — the allocation-free `clone_from` the SA hot loop needs.
    pub fn copy_from(&mut self, other: &Config) {
        self.indices.clone_from(&other.indices);
    }

    /// Sets the choice index of the `k`-th knob.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range. Range checking of the *value* is the
    /// owning [`SearchSpace`]'s job, as with [`Config::new`].
    pub fn set_index(&mut self, k: usize, value: usize) {
        self.indices[k] = value;
    }
}

/// A complete, enumerable configuration space for one (template, operator)
/// pair, with the binding semantics needed to lower configs to kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    name: String,
    template: TemplateKind,
    op: OpSpec,
    knobs: Vec<Knob>,
    semantics: Semantics,
}

impl SearchSpace {
    /// Assembles a space. Intended for the [`crate::templates`] builders;
    /// exposed so downstream code can build custom templates.
    ///
    /// # Panics
    ///
    /// Panics if `knobs` is empty.
    #[must_use]
    pub fn new(name: &str, template: TemplateKind, op: OpSpec, knobs: Vec<Knob>, semantics: Semantics) -> Self {
        assert!(!knobs.is_empty(), "a search space needs at least one knob");
        Self {
            name: name.to_owned(),
            template,
            op,
            knobs,
            semantics,
        }
    }

    /// Human-readable space name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The code template this space configures.
    #[must_use]
    pub fn template(&self) -> TemplateKind {
        self.template
    }

    /// The operator workload.
    #[must_use]
    pub fn op(&self) -> &OpSpec {
        &self.op
    }

    /// The knob list, in template order.
    #[must_use]
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// Looks up a knob index by name.
    #[must_use]
    pub fn knob_index(&self, name: &str) -> Option<usize> {
        self.knobs.iter().position(|k| k.name() == name)
    }

    /// Total number of configurations (product of knob cardinalities).
    #[must_use]
    pub fn size(&self) -> u128 {
        self.knobs.iter().map(|k| k.cardinality() as u128).product()
    }

    /// Per-knob cardinalities (the mixed radix of [`SearchSpace::flat_index`]).
    #[must_use]
    pub fn radix(&self) -> Vec<usize> {
        self.knobs.iter().map(Knob::cardinality).collect()
    }

    /// Bijection from configs to `0..size()`, little-endian mixed radix
    /// (knob 0 is the fastest-varying digit).
    ///
    /// # Panics
    ///
    /// Panics if any choice index is out of range for its knob.
    #[must_use]
    pub fn flat_index(&self, config: &Config) -> u128 {
        assert_eq!(config.indices().len(), self.knobs.len(), "config/knob arity mismatch");
        let mut flat: u128 = 0;
        let mut stride: u128 = 1;
        for (knob, &idx) in self.knobs.iter().zip(config.indices()) {
            assert!(idx < knob.cardinality(), "choice {idx} out of range for {}", knob.name());
            flat += idx as u128 * stride;
            stride *= knob.cardinality() as u128;
        }
        flat
    }

    /// Inverse of [`SearchSpace::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= size()`.
    #[must_use]
    pub fn config_from_flat(&self, flat: u128) -> Config {
        assert!(flat < self.size(), "flat index out of range");
        let mut rest = flat;
        let indices = self
            .knobs
            .iter()
            .map(|k| {
                let card = k.cardinality() as u128;
                let idx = (rest % card) as usize;
                rest /= card;
                idx
            })
            .collect();
        Config::new(indices)
    }

    /// Uniform random configuration.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Config {
        Config::new(self.knobs.iter().map(|k| rng.gen_range(0..k.cardinality())).collect())
    }

    /// Single-knob mutation: pick one knob and move it to a different random
    /// choice — the Markov-chain step AutoTVM's simulated annealing uses.
    pub fn neighbor<R: Rng + ?Sized>(&self, config: &Config, rng: &mut R) -> Config {
        let mut out = config.clone();
        self.neighbor_into(config, &mut out, rng);
        out
    }

    /// Allocation-free [`SearchSpace::neighbor`]: writes the mutated config
    /// into `out`, reusing its index buffer. Draw-for-draw identical to
    /// `neighbor` — the SA hot loop swaps to this to stop allocating one
    /// `Config` (plus a scratch index list) per chain step.
    pub fn neighbor_into<R: Rng + ?Sized>(&self, config: &Config, out: &mut Config, rng: &mut R) {
        out.copy_from(config);
        // Prefer knobs with more than one choice; fall back to identity if
        // the whole space is a single point. The pick is drawn even when no
        // knob is mutable so the RNG stream matches the historical
        // allocating implementation exactly.
        let mutable_count = self.knobs.iter().filter(|k| k.cardinality() > 1).count();
        let pick = rng.gen_range(0..mutable_count.max(1));
        if mutable_count > 0 {
            let knob = self
                .knobs
                .iter()
                .enumerate()
                .filter(|(_, k)| k.cardinality() > 1)
                .map(|(i, _)| i)
                .nth(pick)
                .unwrap_or(0);
            let card = self.knobs[knob].cardinality();
            let mut next = rng.gen_range(0..card - 1);
            if next >= out.index(knob) {
                next += 1;
            }
            out.set_index(knob, next);
        }
    }

    /// The knob values selected by `config`, in knob order.
    #[must_use]
    pub fn values<'a>(&'a self, config: &Config) -> Vec<&'a KnobValue> {
        self.knobs.iter().zip(config.indices()).map(|(k, &i)| k.value(i)).collect()
    }

    /// Lowers a config to its kernel resource shape via the template's
    /// binding semantics.
    ///
    /// # Panics
    ///
    /// Panics if the config's arity or indices don't match this space.
    #[must_use]
    pub fn kernel_shape(&self, config: &Config) -> KernelShape {
        let values = self.values(config);
        let splits: Vec<&[u32]> = values.iter().filter_map(|v| v.as_split()).collect();
        let unroll_steps = values
            .iter()
            .find_map(|v| v.as_int())
            .map_or(0, |v| u32::try_from(v.max(0)).unwrap_or(u32::MAX));
        let explicit_unroll = values.iter().find_map(|v| v.as_flag()).unwrap_or(false);
        self.semantics.kernel_shape(&ResolvedKnobs {
            splits,
            unroll_steps,
            explicit_unroll,
        })
    }

    /// Numeric feature encoding of a config for cost models and the prior
    /// generator: per-knob log₂ factors followed by derived resource
    /// features from the kernel shape.
    #[must_use]
    pub fn features(&self, config: &Config) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.feature_width());
        for (knob, &idx) in self.knobs.iter().zip(config.indices()) {
            knob.push_features(idx, &mut out);
        }
        let shape = self.kernel_shape(config);
        out.push((shape.threads_per_block as f64).log2());
        out.push((shape.blocks as f64).log2());
        out.push((1.0 + shape.shared_bytes as f64).log2());
        out.push((shape.work_per_thread as f64).log2());
        out.push(f64::from(shape.inner_x).log2());
        out.push(f64::from(shape.tx.max(1)).log2());
        out.push(f64::from(shape.reduce_tile).log2());
        out.push((shape.regs_per_thread as f64).log2());
        out
    }

    /// Width of [`SearchSpace::features`] vectors for this space.
    #[must_use]
    pub fn feature_width(&self) -> usize {
        self.knobs.iter().map(Knob::feature_width).sum::<usize>() + DERIVED_FEATURES
    }

    /// Iterates every configuration in flat-index order. Only sensible for
    /// small spaces; the iterator is lazy so callers can `.take(n)`.
    pub fn iter(&self) -> impl Iterator<Item = Config> + '_ {
        let size = self.size();
        (0..size).map(move |flat| self.config_from_flat(flat))
    }

    /// Number of knobs two configs disagree on (Hamming distance in choice
    /// space) — the move metric of the single-knob SA neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if the configs' arities differ.
    #[must_use]
    pub fn hamming_distance(&self, a: &Config, b: &Config) -> usize {
        assert_eq!(a.indices().len(), b.indices().len(), "config arity mismatch");
        a.indices().iter().zip(b.indices()).filter(|(x, y)| x != y).count()
    }

    /// Human-readable description of a config, TVM-log style:
    /// `tile_f=[2,2,4,2] tile_y=[1,1,8,7] ... unroll_explicit=true`.
    #[must_use]
    pub fn describe(&self, config: &Config) -> String {
        self.knobs
            .iter()
            .zip(config.indices())
            .map(|(k, &i)| format!("{}={}", k.name(), k.value(i)))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Features padded (or truncated) to a fixed width, for models shared
    /// across templates.
    #[must_use]
    pub fn features_padded(&self, config: &Config, width: usize) -> Vec<f64> {
        let mut f = self.features(config);
        f.resize(width, 0.0);
        f
    }
}

/// Number of derived (kernel-shape) features appended by
/// [`SearchSpace::features`].
pub const DERIVED_FEATURES: usize = 8;

impl fmt::Display for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} knobs, {} configs",
            self.name,
            self.template,
            self.knobs.len(),
            self.size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
    }

    #[test]
    fn flat_index_roundtrips() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let c = s.sample_uniform(&mut rng);
            let flat = s.flat_index(&c);
            assert_eq!(s.config_from_flat(flat), c);
        }
    }

    #[test]
    fn size_is_product_of_radix() {
        let s = space();
        let expected: u128 = s.radix().iter().map(|r| *r as u128).product();
        assert_eq!(s.size(), expected);
    }

    #[test]
    fn neighbor_changes_exactly_one_knob() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let c = s.sample_uniform(&mut rng);
        for _ in 0..50 {
            let n = s.neighbor(&c, &mut rng);
            let diffs = c.indices().iter().zip(n.indices()).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn features_have_declared_width() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        let c = s.sample_uniform(&mut rng);
        assert_eq!(s.features(&c).len(), s.feature_width());
        assert_eq!(s.features_padded(&c, 64).len(), 64);
    }

    #[test]
    fn knob_lookup_by_name() {
        let s = space();
        assert!(s.knob_index("tile_f").is_some());
        assert!(s.knob_index("tile_x").is_some());
        assert!(s.knob_index("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "flat index out of range")]
    fn config_from_flat_bounds_checked() {
        let s = space();
        let _ = s.config_from_flat(s.size());
    }

    #[test]
    fn values_align_with_knobs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let c = s.sample_uniform(&mut rng);
        let values = s.values(&c);
        assert_eq!(values.len(), s.knobs().len());
    }

    proptest! {
        #[test]
        fn flat_indices_are_dense(seed in 0u64..500) {
            let s = templates::dense_space(&glimpse_tensor_prog::DenseSpec::new(1, 64, 100));
            let mut rng = StdRng::seed_from_u64(seed);
            let c = s.sample_uniform(&mut rng);
            prop_assert!(s.flat_index(&c) < s.size());
        }
    }

    #[test]
    fn iter_visits_every_config_once_for_tiny_space() {
        use crate::kernel::Semantics;
        use crate::knob::Knob;
        use glimpse_tensor_prog::{DenseSpec, OpSpec, TemplateKind};
        let spec = DenseSpec::new(1, 4, 4);
        let knobs = vec![
            Knob::split("tile_y", 4, 2),
            Knob::split("tile_k", 4, 2),
            Knob::flag("unroll_explicit"),
        ];
        let tiny = SearchSpace::new("tiny", TemplateKind::Dense, OpSpec::Dense(spec), knobs, Semantics::Dense(spec));
        let all: Vec<Config> = tiny.iter().collect();
        assert_eq!(all.len() as u128, tiny.size());
        let mut dedup = all.clone();
        dedup.sort_by_key(|c| c.indices().to_vec());
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn neighbor_into_matches_neighbor_draw_for_draw() {
        // The in-place variant must consume the RNG stream identically to
        // the allocating one: run both from cloned RNG states across a long
        // shared stream and compare configs and final RNG positions.
        let s = space();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = rng_a.clone();
        let mut current = s.sample_uniform(&mut rng_a);
        let _ = s.sample_uniform(&mut rng_b);
        let mut scratch = current.clone();
        for step in 0..200 {
            let allocated = s.neighbor(&current, &mut rng_a);
            s.neighbor_into(&current, &mut scratch, &mut rng_b);
            assert_eq!(allocated, scratch, "step {step} diverged");
            current = allocated;
        }
        // Same number of draws consumed → identical next samples.
        assert_eq!(s.sample_uniform(&mut rng_a), s.sample_uniform(&mut rng_b));
    }

    #[test]
    fn copy_from_and_set_index_update_in_place() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(78);
        let a = s.sample_uniform(&mut rng);
        let b = s.sample_uniform(&mut rng);
        let mut c = a.clone();
        c.copy_from(&b);
        assert_eq!(c, b);
        let flipped = usize::from(c.index(0) == 0);
        c.set_index(0, flipped);
        assert_eq!(c.index(0), flipped);
    }

    #[test]
    fn hamming_distance_counts_differing_knobs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(13);
        let a = s.sample_uniform(&mut rng);
        assert_eq!(s.hamming_distance(&a, &a), 0);
        let n = s.neighbor(&a, &mut rng);
        assert_eq!(s.hamming_distance(&a, &n), 1);
    }

    #[test]
    fn describe_names_every_knob() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(14);
        let c = s.sample_uniform(&mut rng);
        let text = s.describe(&c);
        for knob in s.knobs() {
            assert!(text.contains(knob.name()), "missing {} in {text}", knob.name());
        }
    }
}
