//! TVM-style tuning-log lines: a stable, human-greppable text form for
//! (space, config, result) records.
//!
//! TVM persists every trial as one JSON line; tools downstream (log
//! browsers, transfer learning, TenSet-style corpora) all speak that
//! format. This module provides the equivalent for this reproduction:
//!
//! ```text
//! {"space":"conv2d_nchw (conv2d N1C64H56W56 -> C64 k3x3 s1 p1)","knobs":{"tile_f":"[2,2,8,2]",...},"gflops":2412.5}
//! ```
//!
//! Encoding goes through the *knob values*, not the choice indices, so log
//! lines survive template-extent changes (a config is re-resolved against
//! the current space by value).

use crate::config::{Config, SearchSpace};
use crate::knob::KnobValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One serialized trial record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Space display name (workload identity).
    pub space: String,
    /// Knob name → rendered value (e.g. `"tile_x" -> "[1,2,14,2]"`).
    pub knobs: Vec<(String, String)>,
    /// Measured throughput, if the trial was valid.
    pub gflops: Option<f64>,
}

/// Error resolving a log record against a space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    reason: String,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log record does not fit the space: {}", self.reason)
    }
}

impl std::error::Error for ResolveError {}

/// Encodes a config (plus optional measurement) into a record.
#[must_use]
pub fn encode(space: &SearchSpace, config: &Config, gflops: Option<f64>) -> LogRecord {
    let knobs = space
        .knobs()
        .iter()
        .zip(config.indices())
        .map(|(k, &i)| (k.name().to_owned(), k.value(i).to_string()))
        .collect();
    LogRecord {
        space: space.name().to_owned(),
        knobs,
        gflops,
    }
}

/// Resolves a record back to a config in `space`, matching knob values by
/// their rendered form.
///
/// # Errors
///
/// Returns [`ResolveError`] if a knob is missing, unknown, or its recorded
/// value is not among the space's choices (e.g. a different extent).
pub fn decode(space: &SearchSpace, record: &LogRecord) -> Result<Config, ResolveError> {
    let mut indices = vec![usize::MAX; space.knobs().len()];
    for (name, rendered) in &record.knobs {
        let Some(k) = space.knob_index(name) else {
            return Err(ResolveError {
                reason: format!("unknown knob {name:?}"),
            });
        };
        let knob = &space.knobs()[k];
        let Some(choice) = knob.choices().iter().position(|v: &KnobValue| v.to_string() == *rendered) else {
            return Err(ResolveError {
                reason: format!("value {rendered} not a choice of {name:?}"),
            });
        };
        indices[k] = choice;
    }
    if let Some(missing) = indices.iter().position(|&i| i == usize::MAX) {
        return Err(ResolveError {
            reason: format!("knob {:?} missing from record", space.knobs()[missing].name()),
        });
    }
    Ok(Config::new(indices))
}

/// Saves records as a JSONL log file (one record per line).
///
/// The write is atomic — temp file + fsync + rename — so a crash mid-save
/// leaves either the previous log or the new one, never a torn file.
///
/// # Errors
///
/// Returns any I/O error from writing `path`.
pub fn save_log(path: &std::path::Path, records: &[LogRecord]) -> std::io::Result<()> {
    let mut text = String::new();
    for record in records {
        let line = serde_json::to_string(record).map_err(std::io::Error::other)?;
        text.push_str(&line);
        text.push('\n');
    }
    glimpse_durable::atomic_write(path, text.as_bytes())
}

/// Loads a JSONL log file written by [`save_log`].
///
/// Blank lines are skipped, so hand-edited logs with trailing newlines or
/// spacer lines still parse.
///
/// # Errors
///
/// Returns any I/O error from reading `path`, or an `InvalidData` error
/// naming the offending line if a line is not a valid record.
pub fn load_log(path: &std::path::Path) -> std::io::Result<Vec<LogRecord>> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = serde_json::from_str(line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("log line {}: {e}", i + 1)))?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
    }

    #[test]
    fn encode_decode_roundtrips() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let config = s.sample_uniform(&mut rng);
            let record = encode(&s, &config, Some(123.4));
            let back = decode(&s, &record).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn record_survives_json() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let config = s.sample_uniform(&mut rng);
        let record = encode(&s, &config, None);
        let line = serde_json::to_string(&record).unwrap();
        let parsed: LogRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(decode(&s, &parsed).unwrap(), config);
    }

    #[test]
    fn log_file_roundtrips() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(6);
        let records: Vec<LogRecord> = (0..8)
            .map(|i| {
                encode(
                    &s,
                    &s.sample_uniform(&mut rng),
                    if i % 2 == 0 { Some(f64::from(i) * 10.0) } else { None },
                )
            })
            .collect();
        let path = std::env::temp_dir().join("glimpse-logfmt-roundtrip.jsonl");
        save_log(&path, &records).unwrap();
        let loaded = load_log(&path).unwrap();
        assert_eq!(loaded, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_log_skips_blank_lines_and_names_bad_ones() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let record = encode(&s, &s.sample_uniform(&mut rng), Some(1.0));
        let line = serde_json::to_string(&record).unwrap();
        let path = std::env::temp_dir().join("glimpse-logfmt-lenient.jsonl");
        glimpse_durable::atomic_write(&path, format!("{line}\n\n{line}\n").as_bytes()).unwrap();
        assert_eq!(load_log(&path).unwrap().len(), 2);
        glimpse_durable::atomic_write(&path, format!("{line}\nnot json\n").as_bytes()).unwrap();
        let err = load_log(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn decode_rejects_foreign_extents() {
        let s = space();
        let other = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let mut rng = StdRng::seed_from_u64(3);
        // A tile_f split of 128 can't resolve against out_channels = 64.
        let config = loop {
            let c = other.sample_uniform(&mut rng);
            let f = other.knobs()[0].value(c.index(0)).to_string();
            if decode(&s, &encode(&other, &c, None)).is_err() {
                break c;
            }
            let _ = f;
        };
        let record = encode(&other, &config, None);
        assert!(decode(&s, &record).is_err());
    }

    #[test]
    fn decode_reports_missing_knobs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        let config = s.sample_uniform(&mut rng);
        let mut record = encode(&s, &config, None);
        record.knobs.pop();
        let err = decode(&s, &record).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn decode_reports_unknown_knobs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let config = s.sample_uniform(&mut rng);
        let mut record = encode(&s, &config, None);
        record.knobs[0].0 = "tile_q".into();
        let err = decode(&s, &record).unwrap_err();
        assert!(err.to_string().contains("tile_q"));
    }
}
