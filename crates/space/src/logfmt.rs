//! TVM-style tuning-log lines: a stable, human-greppable text form for
//! (space, config, result) records.
//!
//! TVM persists every trial as one JSON line; tools downstream (log
//! browsers, transfer learning, TenSet-style corpora) all speak that
//! format. This module provides the equivalent for this reproduction:
//!
//! ```text
//! {"space":"conv2d_nchw (conv2d N1C64H56W56 -> C64 k3x3 s1 p1)","knobs":{"tile_f":"[2,2,8,2]",...},"gflops":2412.5}
//! ```
//!
//! Encoding goes through the *knob values*, not the choice indices, so log
//! lines survive template-extent changes (a config is re-resolved against
//! the current space by value).

use crate::config::{Config, SearchSpace};
use crate::knob::KnobValue;
use glimpse_durable::envelope::{self, EnvelopeSpec, Integrity};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One serialized trial record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Space display name (workload identity).
    pub space: String,
    /// Knob name → rendered value (e.g. `"tile_x" -> "[1,2,14,2]"`).
    pub knobs: Vec<(String, String)>,
    /// Measured throughput, if the trial was valid.
    pub gflops: Option<f64>,
}

/// Error resolving a log record against a space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    reason: String,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log record does not fit the space: {}", self.reason)
    }
}

impl std::error::Error for ResolveError {}

/// Encodes a config (plus optional measurement) into a record.
#[must_use]
pub fn encode(space: &SearchSpace, config: &Config, gflops: Option<f64>) -> LogRecord {
    let knobs = space
        .knobs()
        .iter()
        .zip(config.indices())
        .map(|(k, &i)| (k.name().to_owned(), k.value(i).to_string()))
        .collect();
    LogRecord {
        space: space.name().to_owned(),
        knobs,
        gflops,
    }
}

/// Resolves a record back to a config in `space`, matching knob values by
/// their rendered form.
///
/// # Errors
///
/// Returns [`ResolveError`] if a knob is missing, unknown, or its recorded
/// value is not among the space's choices (e.g. a different extent).
pub fn decode(space: &SearchSpace, record: &LogRecord) -> Result<Config, ResolveError> {
    let mut indices = vec![usize::MAX; space.knobs().len()];
    for (name, rendered) in &record.knobs {
        let Some(k) = space.knob_index(name) else {
            return Err(ResolveError {
                reason: format!("unknown knob {name:?}"),
            });
        };
        let knob = &space.knobs()[k];
        let Some(choice) = knob.choices().iter().position(|v: &KnobValue| v.to_string() == *rendered) else {
            return Err(ResolveError {
                reason: format!("value {rendered} not a choice of {name:?}"),
            });
        };
        indices[k] = choice;
    }
    if let Some(missing) = indices.iter().position(|&i| i == usize::MAX) {
        return Err(ResolveError {
            reason: format!("knob {:?} missing from record", space.knobs()[missing].name()),
        });
    }
    Ok(Config::new(indices))
}

/// Envelope identity of a saved tuning log.
pub const TUNING_LOG_ENVELOPE: EnvelopeSpec = EnvelopeSpec {
    kind: "tuning-log",
    schema: 1,
};

/// Why a tuning log failed to load (total over arbitrary bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogLoadError {
    /// The envelope did not verify (missing, truncated, checksum, drift).
    Damaged(Integrity),
    /// A JSONL line inside a verified (or legacy, envelope-less) log did
    /// not parse as a record.
    Line {
        /// 1-based line number within the JSONL body.
        line: usize,
        /// Decoder message.
        detail: String,
    },
}

impl fmt::Display for LogLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogLoadError::Damaged(verdict) => write!(f, "tuning log damaged: {verdict}"),
            LogLoadError::Line { line, detail } => write!(f, "tuning log line {line}: {detail}"),
        }
    }
}

impl std::error::Error for LogLoadError {}

/// Saves records as JSONL inside the artifact envelope: one header line,
/// then one record per line — still greppable, now checksummed.
///
/// The write is atomic — temp file + fsync + rename — so a crash mid-save
/// leaves either the previous log or the new one, never a torn file.
///
/// # Errors
///
/// Returns any I/O error from writing `path`.
pub fn save_log(path: &std::path::Path, records: &[LogRecord]) -> std::io::Result<()> {
    let mut text = String::new();
    for record in records {
        let line = serde_json::to_string(record).map_err(std::io::Error::other)?;
        text.push_str(&line);
        text.push('\n');
    }
    envelope::write_envelope(path, TUNING_LOG_ENVELOPE, text.as_bytes())
}

/// Loads a log written by [`save_log`], verifying the envelope first.
/// Files that predate the envelope (raw JSONL, no header) still load:
/// anything not starting with the envelope magic is parsed as plain JSONL.
///
/// Blank lines are skipped, so hand-edited logs with trailing newlines or
/// spacer lines still parse.
///
/// # Errors
///
/// [`LogLoadError::Damaged`] when an envelope header is present but does
/// not verify, [`LogLoadError::Line`] naming the offending line otherwise.
pub fn load_log(path: &std::path::Path) -> Result<Vec<LogRecord>, LogLoadError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(LogLoadError::Damaged(Integrity::Missing)),
        Err(e) => return Err(LogLoadError::Damaged(Integrity::Unreadable { detail: e.to_string() })),
    };
    let body = if bytes.starts_with(envelope::MAGIC.as_bytes()) {
        envelope::open(&bytes, TUNING_LOG_ENVELOPE).map_err(LogLoadError::Damaged)?.to_vec()
    } else {
        bytes
    };
    let text = String::from_utf8_lossy(&body);
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = serde_json::from_str(line).map_err(|e| LogLoadError::Line {
            line: i + 1,
            detail: e.to_string(),
        })?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;
    use glimpse_tensor_prog::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        templates::conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1))
    }

    #[test]
    fn encode_decode_roundtrips() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let config = s.sample_uniform(&mut rng);
            let record = encode(&s, &config, Some(123.4));
            let back = decode(&s, &record).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn record_survives_json() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let config = s.sample_uniform(&mut rng);
        let record = encode(&s, &config, None);
        let line = serde_json::to_string(&record).unwrap();
        let parsed: LogRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(decode(&s, &parsed).unwrap(), config);
    }

    #[test]
    fn log_file_roundtrips() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(6);
        let records: Vec<LogRecord> = (0..8)
            .map(|i| {
                encode(
                    &s,
                    &s.sample_uniform(&mut rng),
                    if i % 2 == 0 { Some(f64::from(i) * 10.0) } else { None },
                )
            })
            .collect();
        let path = std::env::temp_dir().join("glimpse-logfmt-roundtrip.jsonl");
        save_log(&path, &records).unwrap();
        let loaded = load_log(&path).unwrap();
        assert_eq!(loaded, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_log_skips_blank_lines_and_names_bad_ones() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let record = encode(&s, &s.sample_uniform(&mut rng), Some(1.0));
        let line = serde_json::to_string(&record).unwrap();
        let path = std::env::temp_dir().join("glimpse-logfmt-lenient.jsonl");
        glimpse_durable::atomic_write(&path, format!("{line}\n\n{line}\n").as_bytes()).unwrap();
        assert_eq!(load_log(&path).unwrap().len(), 2);
        glimpse_durable::atomic_write(&path, format!("{line}\nnot json\n").as_bytes()).unwrap();
        let err = load_log(&path).unwrap_err();
        assert!(matches!(err, LogLoadError::Line { line: 2, .. }));
        assert!(err.to_string().contains("line 2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_envelopes_surface_typed_verdicts() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(8);
        let records: Vec<LogRecord> = (0..4).map(|_| encode(&s, &s.sample_uniform(&mut rng), Some(5.0))).collect();
        let path = std::env::temp_dir().join(format!("glimpse-logfmt-damage-{}.jsonl", std::process::id()));
        save_log(&path, &records).unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Flip a payload byte (past the header line): checksum mismatch.
        let header_end = clean.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut bad = clean.clone();
        bad[header_end + 3] ^= 0x10;
        glimpse_durable::atomic_write(&path, &bad).unwrap();
        assert!(matches!(
            load_log(&path).unwrap_err(),
            LogLoadError::Damaged(Integrity::ChecksumMismatch { .. })
        ));

        // Truncate mid-payload: truncated.
        glimpse_durable::atomic_write(&path, &clean[..clean.len() - 2]).unwrap();
        assert!(matches!(
            load_log(&path).unwrap_err(),
            LogLoadError::Damaged(Integrity::Truncated { .. })
        ));

        // Missing file: typed, not an io::Error.
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_log(&path).unwrap_err(), LogLoadError::Damaged(Integrity::Missing));
    }

    #[test]
    fn decode_rejects_foreign_extents() {
        let s = space();
        let other = templates::conv2d_direct_space(&Conv2dSpec::square(1, 128, 128, 28, 3, 1, 1));
        let mut rng = StdRng::seed_from_u64(3);
        // A tile_f split of 128 can't resolve against out_channels = 64.
        let config = loop {
            let c = other.sample_uniform(&mut rng);
            let f = other.knobs()[0].value(c.index(0)).to_string();
            if decode(&s, &encode(&other, &c, None)).is_err() {
                break c;
            }
            let _ = f;
        };
        let record = encode(&other, &config, None);
        assert!(decode(&s, &record).is_err());
    }

    #[test]
    fn decode_reports_missing_knobs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        let config = s.sample_uniform(&mut rng);
        let mut record = encode(&s, &config, None);
        record.knobs.pop();
        let err = decode(&s, &record).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn decode_reports_unknown_knobs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let config = s.sample_uniform(&mut rng);
        let mut record = encode(&s, &config, None);
        record.knobs[0].0 = "tile_q".into();
        let err = decode(&s, &record).unwrap_err();
        assert!(err.to_string().contains("tile_q"));
    }
}
