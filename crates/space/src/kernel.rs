//! Derived kernel shape: how a configuration lowers to GPU resources.
//!
//! Each template has fixed *binding semantics* (which split parts become
//! `blockIdx`, `vthread`, `threadIdx`, and per-thread work, mirroring TVM's
//! CUDA schedules). [`Semantics::kernel_shape`] applies those semantics to a
//! choice of knob values, producing the resource footprint the simulator
//! prices: threads, virtual threads, grid size, shared memory, registers,
//! and the loop structure relevant to coalescing and unrolling.

use glimpse_tensor_prog::{Conv2dSpec, DenseSpec};
use serde::{Deserialize, Serialize};

/// Resource and loop-structure summary of one lowered kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelShape {
    /// Threads per block (`threadIdx` extent product).
    pub threads_per_block: u64,
    /// Virtual threads (TVM `vthread` product): register-level replication.
    pub vthreads: u64,
    /// Grid size in blocks.
    pub blocks: u64,
    /// Shared memory bytes per block (double-buffer staging of one
    /// reduction-outer step).
    pub shared_bytes: u64,
    /// Estimated registers per thread (accumulators + operand staging).
    pub regs_per_thread: u64,
    /// Output elements computed per thread (including vthread replication).
    pub work_per_thread: u64,
    /// Innermost contiguous output extent per thread (write coalescing).
    pub inner_x: u32,
    /// `threadIdx.x` extent (read/write coalescing partner).
    pub tx: u32,
    /// Reduction tile per shared-memory stage (reuse granularity).
    pub reduce_tile: u32,
    /// Total reduction length.
    pub reduce_len: u64,
    /// Requested `auto_unroll_max_step` value.
    pub unroll_steps: u32,
    /// Whether `unroll_explicit` is set.
    pub explicit_unroll: bool,
    /// Bytes each block loads from DRAM/L2 per full reduction (input +
    /// weight staging traffic, before cache effects).
    pub block_load_bytes: f64,
    /// Total output bytes written by the kernel.
    pub output_bytes: f64,
}

impl KernelShape {
    /// Total concurrent threads launched (blocks × threads-per-block).
    #[must_use]
    pub fn total_threads(&self) -> u64 {
        self.blocks * self.threads_per_block
    }

    /// Total register demand of one block, in 32-bit registers.
    #[must_use]
    pub fn regs_per_block(&self) -> u64 {
        self.regs_per_thread * self.threads_per_block
    }
}

/// Template binding semantics: the fixed mapping from split factors to GPU
/// resources for each of the three code templates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Semantics {
    /// Direct tiled convolution (`conv2d_nchw.cuda`).
    ConvDirect(Conv2dSpec),
    /// Winograd convolution with output tile `m` (`conv2d_nchw_winograd.cuda`).
    ConvWinograd {
        /// The convolution workload.
        spec: Conv2dSpec,
        /// Winograd output tile size (2 for F(2×2, r×r)).
        m: u32,
    },
    /// Dense / matrix–vector product (`dense.cuda`).
    Dense(DenseSpec),
}

/// A knob-value view the semantics consume: split factors by knob order.
/// Produced by `SearchSpace::kernel_shape`; kept separate so `kernel` has no
/// dependency on the config machinery.
#[derive(Debug, Clone)]
pub struct ResolvedKnobs<'a> {
    /// Split-factor slices per split knob, in template knob order.
    pub splits: Vec<&'a [u32]>,
    /// `auto_unroll_max_step` value.
    pub unroll_steps: u32,
    /// `unroll_explicit` flag.
    pub explicit_unroll: bool,
}

impl Semantics {
    /// Number of tiles in the Winograd P dimension for `spec` with tile `m`.
    #[must_use]
    pub fn winograd_tiles(spec: &Conv2dSpec, m: u32) -> u32 {
        let nh = spec.out_h().div_ceil(m);
        let nw = spec.out_w().div_ceil(m);
        spec.batch * nh * nw
    }

    /// Applies the template's binding semantics to resolved knob values.
    ///
    /// # Panics
    ///
    /// Panics if the split list does not match the template's knob layout
    /// (callers go through `SearchSpace`, which constructs both together).
    #[must_use]
    pub fn kernel_shape(&self, knobs: &ResolvedKnobs<'_>) -> KernelShape {
        match self {
            Semantics::ConvDirect(spec) => conv_direct_shape(spec, knobs),
            Semantics::ConvWinograd { spec, m } => winograd_shape(spec, *m, knobs),
            Semantics::Dense(spec) => dense_shape(spec, knobs),
        }
    }
}

const FLOAT_BYTES: u64 = 4;
/// Baseline per-thread register cost of address arithmetic and loop state.
const BASE_REGS: u64 = 24;

fn conv_direct_shape(spec: &Conv2dSpec, knobs: &ResolvedKnobs<'_>) -> KernelShape {
    // Knob order: tile_f, tile_y, tile_x (4-way), tile_rc, tile_ry, tile_rx (2-way).
    let f = knobs.splits[0];
    let y = knobs.splits[1];
    let x = knobs.splits[2];
    let rc = knobs.splits[3];
    let ry = knobs.splits[4];
    let rx = knobs.splits[5];
    let (bf, vf, tf, fi) = (f[0], f[1], f[2], f[3]);
    let (by, vy, ty, yi) = (y[0], y[1], y[2], y[3]);
    let (bx, vx, tx, xi) = (x[0], x[1], x[2], x[3]);
    let (rci, ryi, rxi) = (rc[1], ry[1], rx[1]);

    let threads = u64::from(tf) * u64::from(ty) * u64::from(tx);
    let vthreads = u64::from(vf) * u64::from(vy) * u64::from(vx);
    let blocks = u64::from(bf) * u64::from(by) * u64::from(bx) * u64::from(spec.batch);

    // Block-level output tile.
    let f_blk = u64::from(vf * tf * fi);
    let y_blk = u64::from(vy * ty * yi);
    let x_blk = u64::from(vx * tx * xi);

    // Shared staging for one (rc, ry, rx)-outer step: an input halo tile and
    // a weight tile, as in TVM's conv2d_nchw.cuda cache_read stages.
    let in_tile_h = (y_blk - 1) * u64::from(spec.stride) + u64::from(ryi);
    let in_tile_w = (x_blk - 1) * u64::from(spec.stride) + u64::from(rxi);
    let input_stage = u64::from(rci) * in_tile_h * in_tile_w;
    let weight_stage = f_blk * u64::from(rci) * u64::from(ryi) * u64::from(rxi);
    let shared_bytes = (input_stage + weight_stage) * FLOAT_BYTES;

    // vthread replicates accumulators in registers.
    let accumulators = vthreads * u64::from(fi) * u64::from(yi) * u64::from(xi);
    let operand_regs = u64::from(fi) + u64::from(xi) + u64::from(rci).min(8);
    let regs_per_thread = BASE_REGS + accumulators + operand_regs;

    let reduce_len = u64::from(spec.in_channels) * u64::from(spec.kernel_h) * u64::from(spec.kernel_w);
    let outer_steps = reduce_len / (u64::from(rci) * u64::from(ryi) * u64::from(rxi));
    let block_load_bytes = (input_stage + weight_stage) as f64 * outer_steps as f64 * FLOAT_BYTES as f64;

    KernelShape {
        threads_per_block: threads,
        vthreads,
        blocks,
        shared_bytes,
        regs_per_thread,
        work_per_thread: vthreads * u64::from(fi) * u64::from(yi) * u64::from(xi),
        inner_x: xi,
        tx,
        reduce_tile: rci * ryi * rxi,
        reduce_len,
        unroll_steps: knobs.unroll_steps,
        explicit_unroll: knobs.explicit_unroll,
        block_load_bytes,
        output_bytes: spec.output_bytes(),
    }
}

fn winograd_shape(spec: &Conv2dSpec, m: u32, knobs: &ResolvedKnobs<'_>) -> KernelShape {
    // Knob order: tile_p, tile_f (4-way), tile_rc (2-way). The batched GEMM
    // over alpha^2 transformed domains dominates; P = batch x tile grid.
    let p = knobs.splits[0];
    let f = knobs.splits[1];
    let rc = knobs.splits[2];
    let (bp, vp, tp, pi) = (p[0], p[1], p[2], p[3]);
    let (bf, vf, tf, fi) = (f[0], f[1], f[2], f[3]);
    let rci = rc[1];
    let alpha = m + spec.kernel_h - 1;
    let alpha2 = u64::from(alpha) * u64::from(alpha);

    let threads = u64::from(tp) * u64::from(tf);
    let vthreads = u64::from(vp) * u64::from(vf);
    let blocks = u64::from(bp) * u64::from(bf) * alpha2;

    let p_blk = u64::from(vp * tp * pi);
    let f_blk = u64::from(vf * tf * fi);
    let stage = u64::from(rci) * (p_blk + f_blk);
    let shared_bytes = stage * FLOAT_BYTES;

    let accumulators = vthreads * u64::from(pi) * u64::from(fi);
    let regs_per_thread = BASE_REGS + accumulators + u64::from(pi) + u64::from(fi);

    let reduce_len = u64::from(spec.in_channels);
    let outer_steps = reduce_len / u64::from(rci);
    // Transform stages add roughly one extra pass over input and output.
    let block_load_bytes = stage as f64 * outer_steps as f64 * FLOAT_BYTES as f64 * 1.5;

    KernelShape {
        threads_per_block: threads,
        vthreads,
        blocks,
        shared_bytes,
        regs_per_thread,
        work_per_thread: vthreads * u64::from(pi) * u64::from(fi),
        inner_x: pi,
        tx: tp,
        reduce_tile: rci,
        reduce_len,
        unroll_steps: knobs.unroll_steps,
        explicit_unroll: knobs.explicit_unroll,
        block_load_bytes,
        output_bytes: spec.output_bytes() * 1.5,
    }
}

fn dense_shape(spec: &DenseSpec, knobs: &ResolvedKnobs<'_>) -> KernelShape {
    // Knob order: tile_y (4-way over out_features), tile_k (2-way reduction).
    let y = knobs.splits[0];
    let k = knobs.splits[1];
    let (by, vy, ty, yi) = (y[0], y[1], y[2], y[3]);
    let ki = k[1];

    let threads = u64::from(ty);
    let vthreads = u64::from(vy);
    let blocks = u64::from(by) * u64::from(spec.batch);

    let y_blk = u64::from(vy * ty * yi);
    // Stage the shared input slice once per k-outer step plus a weight tile.
    let stage = u64::from(ki) + y_blk * u64::from(ki);
    let shared_bytes = stage * FLOAT_BYTES;

    let accumulators = vthreads * u64::from(yi);
    let regs_per_thread = BASE_REGS + accumulators + u64::from(ki).min(16);

    let reduce_len = u64::from(spec.in_features);
    let outer_steps = reduce_len / u64::from(ki);
    let block_load_bytes = stage as f64 * outer_steps as f64 * FLOAT_BYTES as f64;

    KernelShape {
        threads_per_block: threads,
        vthreads,
        blocks,
        shared_bytes,
        regs_per_thread,
        work_per_thread: vthreads * u64::from(yi),
        inner_x: yi,
        tx: ty,
        reduce_tile: ki,
        reduce_len,
        unroll_steps: knobs.unroll_steps,
        explicit_unroll: knobs.explicit_unroll,
        block_load_bytes,
        output_bytes: spec.output_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Conv2dSpec {
        Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1)
    }

    fn resolved<'a>(splits: Vec<&'a [u32]>) -> ResolvedKnobs<'a> {
        ResolvedKnobs {
            splits,
            unroll_steps: 512,
            explicit_unroll: true,
        }
    }

    #[test]
    #[allow(clippy::identity_op)] // 1-factors spell out the tile structure
    fn conv_direct_threads_and_blocks_cover_output() {
        let spec = conv();
        let f: &[u32] = &[1, 2, 8, 4];
        let y: &[u32] = &[7, 1, 8, 1];
        let x: &[u32] = &[7, 1, 4, 2];
        let rc: &[u32] = &[16, 4];
        let ry: &[u32] = &[3, 1];
        let rx: &[u32] = &[1, 3];
        let shape = Semantics::ConvDirect(spec).kernel_shape(&resolved(vec![f, y, x, rc, ry, rx]));
        assert_eq!(shape.threads_per_block, 8 * 8 * 4);
        assert_eq!(shape.blocks, 1 * 7 * 7);
        // Output coverage: blocks x block-tile == full output volume.
        let per_block = 2 * 8 * 4 * (1 * 8 * 1) * (1 * 4 * 2);
        assert_eq!(shape.blocks * per_block, 64u64 * 56 * 56);
        assert_eq!(shape.reduce_len, 64 * 9);
        assert_eq!(shape.reduce_tile, 4 * 1 * 3);
        assert!(shape.shared_bytes > 0);
    }

    #[test]
    fn vthread_inflates_registers_not_threads() {
        let spec = conv();
        let small: &[u32] = &[8, 1, 8, 1];
        let big_v: &[u32] = &[8, 8, 1, 1]; // same block tile, vthread-heavy
        let y: &[u32] = &[56, 1, 1, 1];
        let x: &[u32] = &[56, 1, 1, 1];
        let rc: &[u32] = &[64, 1];
        let r1: &[u32] = &[3, 1];
        let sem = Semantics::ConvDirect(spec);
        let a = sem.kernel_shape(&resolved(vec![small, y, x, rc, r1, r1]));
        let b = sem.kernel_shape(&resolved(vec![big_v, y, x, rc, r1, r1]));
        assert!(b.threads_per_block < a.threads_per_block);
        assert!(b.regs_per_thread > a.regs_per_thread);
    }

    #[test]
    fn winograd_grid_includes_alpha_squared() {
        let spec = conv();
        let m = 2;
        let p_tiles = Semantics::winograd_tiles(&spec, m);
        assert_eq!(p_tiles, 28 * 28);
        let p: &[u32] = &[49, 1, 16, 1];
        let f: &[u32] = &[4, 1, 16, 1];
        let rc: &[u32] = &[8, 8];
        let shape = Semantics::ConvWinograd { spec, m }.kernel_shape(&resolved(vec![p, f, rc]));
        // alpha = 4, alpha^2 = 16 independent GEMMs in the grid.
        assert_eq!(shape.blocks, 49 * 4 * 16);
        assert_eq!(shape.threads_per_block, 256);
    }

    #[test]
    fn dense_shape_reflects_reduction_split() {
        let spec = DenseSpec::new(1, 512, 1000);
        let y: &[u32] = &[25, 1, 40, 1];
        let k: &[u32] = &[8, 64];
        let shape = Semantics::Dense(spec).kernel_shape(&resolved(vec![y, k]));
        assert_eq!(shape.threads_per_block, 40);
        assert_eq!(shape.blocks, 25);
        assert_eq!(shape.reduce_tile, 64);
        assert_eq!(shape.reduce_len, 512);
    }

    #[test]
    fn bigger_tiles_mean_more_shared_memory() {
        let spec = conv();
        let y: &[u32] = &[56, 1, 1, 1];
        let x: &[u32] = &[56, 1, 1, 1];
        let r1: &[u32] = &[3, 1];
        let sem = Semantics::ConvDirect(spec);
        let small_rc: &[u32] = &[64, 1];
        let big_rc: &[u32] = &[1, 64];
        let f: &[u32] = &[8, 1, 8, 1];
        let small = sem.kernel_shape(&resolved(vec![f, y, x, small_rc, r1, r1]));
        let big = sem.kernel_shape(&resolved(vec![f, y, x, big_rc, r1, r1]));
        assert!(big.shared_bytes > small.shared_bytes);
    }

    #[test]
    fn total_threads_is_product() {
        let spec = DenseSpec::new(1, 512, 1000);
        let y: &[u32] = &[25, 1, 40, 1];
        let k: &[u32] = &[8, 64];
        let shape = Semantics::Dense(spec).kernel_shape(&resolved(vec![y, k]));
        assert_eq!(shape.total_threads(), 25 * 40);
        assert_eq!(shape.regs_per_block(), shape.regs_per_thread * 40);
    }
}
