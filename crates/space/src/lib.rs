//! TVM-style configuration search spaces.
//!
//! Neural compilers optimize a configuration `s ∈ S` of a *code template*
//! (§2.1): tiling split factors, virtual-thread bindings, unroll pragmas, and
//! similar schedule knobs. This crate reproduces the structure of TVM's CUDA
//! search spaces for the three templates of Table 1:
//!
//! * [`templates::conv2d_direct_space`] — `tile_f/y/x` 4-way splits,
//!   `tile_rc/ry/rx` 2-way reduction splits, unroll knobs. The first layer of
//!   VGG-16 yields **over 200 million** configurations, matching §2.1.
//! * [`templates::conv2d_winograd_space`] — tile-domain splits.
//! * [`templates::dense_space`] — output/reduction splits.
//!
//! A [`SearchSpace`] owns the knob list and maps a [`Config`] (one choice per
//! knob) to the derived [`KernelShape`] — threads, blocks, shared memory,
//! registers — which the simulator crate prices and validity-checks.
//!
//! # Examples
//!
//! ```
//! use glimpse_space::templates;
//! use glimpse_tensor_prog::Conv2dSpec;
//! use rand::SeedableRng;
//!
//! let op = Conv2dSpec::square(1, 3, 64, 224, 3, 1, 1);
//! let space = templates::conv2d_direct_space(&op);
//! assert!(space.size() > 200_000_000);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = space.sample_uniform(&mut rng);
//! let shape = space.kernel_shape(&config);
//! assert!(shape.threads_per_block >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod factorize;
pub mod kernel;
pub mod knob;
pub mod logfmt;
pub mod templates;

pub use config::{Config, SearchSpace};
pub use kernel::KernelShape;
pub use knob::{Knob, KnobValue};
