//! Schedule knobs: the dimensions of the configuration search space.

use crate::factorize::ordered_factorizations;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The value a knob takes in one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KnobValue {
    /// Ordered split factors whose product equals the axis extent.
    Split(Vec<u32>),
    /// One integer drawn from an explicit list (e.g. `auto_unroll_max_step`).
    Int(i64),
    /// A boolean flag (e.g. `unroll_explicit`).
    Flag(bool),
}

impl KnobValue {
    /// The split factors, if this is a split value.
    #[must_use]
    pub fn as_split(&self) -> Option<&[u32]> {
        match self {
            KnobValue::Split(f) => Some(f),
            _ => None,
        }
    }

    /// The integer, if this is an int value.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            KnobValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The flag, if this is a flag value.
    #[must_use]
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            KnobValue::Flag(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Split(factors) => {
                write!(f, "[")?;
                for (i, x) in factors.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            KnobValue::Int(v) => write!(f, "{v}"),
            KnobValue::Flag(v) => write!(f, "{v}"),
        }
    }
}

/// One tunable dimension of a template's search space, with its full,
/// enumerable choice list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knob {
    name: String,
    choices: Vec<KnobValue>,
}

impl Knob {
    /// A TVM `define_split`: all ordered factorizations of `extent` into
    /// `parts` factors.
    ///
    /// # Examples
    ///
    /// ```
    /// let knob = glimpse_space::Knob::split("tile_x", 4, 2);
    /// assert_eq!(knob.cardinality(), 3); // [1,4], [2,2], [4,1]
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `extent == 0` or `parts == 0`.
    #[must_use]
    pub fn split(name: &str, extent: u32, parts: usize) -> Self {
        let choices = ordered_factorizations(extent, parts).into_iter().map(KnobValue::Split).collect();
        Self {
            name: name.to_owned(),
            choices,
        }
    }

    /// A TVM `define_knob` over an explicit integer list.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn int_list(name: &str, values: &[i64]) -> Self {
        assert!(!values.is_empty(), "knob {name} needs at least one choice");
        Self {
            name: name.to_owned(),
            choices: values.iter().map(|v| KnobValue::Int(*v)).collect(),
        }
    }

    /// A boolean knob.
    #[must_use]
    pub fn flag(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            choices: vec![KnobValue::Flag(false), KnobValue::Flag(true)],
        }
    }

    /// The knob's name (e.g. `"tile_x"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enumerated choice list.
    #[must_use]
    pub fn choices(&self) -> &[KnobValue] {
        &self.choices
    }

    /// Number of choices (the knob's cardinality).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.choices.len()
    }

    /// The value at a choice index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cardinality()`.
    #[must_use]
    pub fn value(&self, index: usize) -> &KnobValue {
        &self.choices[index]
    }

    /// Number of scalar features this knob contributes to a config feature
    /// vector (split width, or 1 for int/flag knobs).
    #[must_use]
    pub fn feature_width(&self) -> usize {
        match &self.choices[0] {
            KnobValue::Split(f) => f.len(),
            _ => 1,
        }
    }

    /// Appends this choice's features (log₂ factors / scaled scalars).
    pub fn push_features(&self, index: usize, out: &mut Vec<f64>) {
        match &self.choices[index] {
            KnobValue::Split(factors) => out.extend(factors.iter().map(|f| f64::from(*f).log2())),
            KnobValue::Int(v) => out.push((1.0 + *v as f64).log2()),
            KnobValue::Flag(v) => out.push(if *v { 1.0 } else { 0.0 }),
        }
    }
}

impl fmt::Display for Knob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} choices)", self.name, self.cardinality())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_knob_enumerates_all_factorizations() {
        let k = Knob::split("tile_x", 8, 3);
        // 8 = 2^3 into 3 parts: C(5,2) = 10
        assert_eq!(k.cardinality(), 10);
        for choice in k.choices() {
            assert_eq!(choice.as_split().unwrap().iter().product::<u32>(), 8);
        }
    }

    #[test]
    fn int_knob_preserves_order() {
        let k = Knob::int_list("auto_unroll_max_step", &[0, 512, 1500]);
        assert_eq!(k.cardinality(), 3);
        assert_eq!(k.value(1).as_int(), Some(512));
    }

    #[test]
    fn flag_knob_has_two_choices() {
        let k = Knob::flag("unroll_explicit");
        assert_eq!(k.cardinality(), 2);
        assert_eq!(k.value(0).as_flag(), Some(false));
        assert_eq!(k.value(1).as_flag(), Some(true));
    }

    #[test]
    fn feature_width_matches_pushed_features() {
        for k in [Knob::split("s", 12, 4), Knob::int_list("i", &[1, 2]), Knob::flag("f")] {
            let mut out = Vec::new();
            k.push_features(0, &mut out);
            assert_eq!(out.len(), k.feature_width());
        }
    }

    #[test]
    fn split_features_are_log2_factors() {
        let k = Knob::split("s", 8, 2);
        let idx = k.choices().iter().position(|c| c.as_split() == Some(&[2, 4][..])).unwrap();
        let mut out = Vec::new();
        k.push_features(idx, &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn value_accessors_are_mutually_exclusive() {
        let v = KnobValue::Split(vec![1, 2]);
        assert!(v.as_split().is_some() && v.as_int().is_none() && v.as_flag().is_none());
        let v = KnobValue::Int(3);
        assert!(v.as_int() == Some(3) && v.as_split().is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(KnobValue::Split(vec![1, 2, 4]).to_string(), "[1,2,4]");
        assert_eq!(Knob::flag("unroll_explicit").to_string(), "unroll_explicit (2 choices)");
    }
}
