//! Search-space builders for the three code templates of Table 1.
//!
//! Knob layouts mirror TVM v0.8's CUDA schedules:
//!
//! * `conv2d_nchw.cuda`: `tile_f`, `tile_y`, `tile_x` (4-way splits over
//!   output channels / rows / columns), `tile_rc`, `tile_ry`, `tile_rx`
//!   (2-way reduction splits), `auto_unroll_max_step ∈ {0, 512, 1500}`,
//!   `unroll_explicit`.
//! * `conv2d_nchw_winograd.cuda`: `tile_p`, `tile_f` (4-way), `tile_rc`
//!   (2-way), `auto_unroll_max_step ∈ {0, 128, 1500}`, `unroll_explicit`.
//! * `dense.cuda`: `tile_y` (4-way over output features), `tile_k` (2-way
//!   reduction), `auto_unroll_max_step ∈ {0, 64, 512}`, `unroll_explicit`.

use crate::config::SearchSpace;
use crate::kernel::Semantics;
use crate::knob::Knob;
use glimpse_tensor_prog::{Conv2dSpec, DenseSpec, OpSpec, Task, TemplateKind};

/// Winograd output tile size used throughout (F(2×2, r×r)).
pub const WINOGRAD_M: u32 = 2;

/// Builds the direct-convolution space for `spec`.
#[must_use]
pub fn conv2d_direct_space(spec: &Conv2dSpec) -> SearchSpace {
    let knobs = vec![
        Knob::split("tile_f", spec.out_channels, 4),
        Knob::split("tile_y", spec.out_h(), 4),
        Knob::split("tile_x", spec.out_w(), 4),
        Knob::split("tile_rc", spec.in_channels, 2),
        Knob::split("tile_ry", spec.kernel_h, 2),
        Knob::split("tile_rx", spec.kernel_w, 2),
        Knob::int_list("auto_unroll_max_step", &[0, 512, 1500]),
        Knob::flag("unroll_explicit"),
    ];
    SearchSpace::new(
        &format!("conv2d_nchw ({spec})"),
        TemplateKind::Conv2dDirect,
        OpSpec::Conv2d(*spec),
        knobs,
        Semantics::ConvDirect(*spec),
    )
}

/// Builds the Winograd-convolution space for `spec`.
///
/// # Panics
///
/// Panics if `spec` is not Winograd-eligible (callers check
/// [`Conv2dSpec::winograd_eligible`]).
#[must_use]
pub fn conv2d_winograd_space(spec: &Conv2dSpec) -> SearchSpace {
    assert!(
        spec.winograd_eligible(),
        "winograd template requires unit-stride small square kernels"
    );
    let p = Semantics::winograd_tiles(spec, WINOGRAD_M);
    let knobs = vec![
        Knob::split("tile_p", p, 4),
        Knob::split("tile_f", spec.out_channels, 4),
        Knob::split("tile_rc", spec.in_channels, 2),
        Knob::int_list("auto_unroll_max_step", &[0, 128, 1500]),
        Knob::flag("unroll_explicit"),
    ];
    SearchSpace::new(
        &format!("conv2d_winograd ({spec})"),
        TemplateKind::Conv2dWinograd,
        OpSpec::Conv2d(*spec),
        knobs,
        Semantics::ConvWinograd {
            spec: *spec,
            m: WINOGRAD_M,
        },
    )
}

/// Builds the dense space for `spec`.
#[must_use]
pub fn dense_space(spec: &DenseSpec) -> SearchSpace {
    let knobs = vec![
        Knob::split("tile_y", spec.out_features, 4),
        Knob::split("tile_k", spec.in_features, 2),
        Knob::int_list("auto_unroll_max_step", &[0, 64, 512]),
        Knob::flag("unroll_explicit"),
    ];
    SearchSpace::new(
        &format!("dense ({spec})"),
        TemplateKind::Dense,
        OpSpec::Dense(*spec),
        knobs,
        Semantics::Dense(*spec),
    )
}

/// Builds the search space for an extracted [`Task`].
///
/// # Panics
///
/// Panics on template/operator mismatches, which cannot be produced by
/// `glimpse_tensor_prog::task::extract_tasks`.
// lint:boundary(PANICS) task extraction only pairs templates with their own operator kind; a mismatch is a caller bug, not a load outcome
#[must_use]
pub fn space_for_task(task: &Task) -> SearchSpace {
    match (task.template, &task.op) {
        (TemplateKind::Conv2dDirect, OpSpec::Conv2d(c)) => conv2d_direct_space(c),
        (TemplateKind::Conv2dWinograd, OpSpec::Conv2d(c)) => conv2d_winograd_space(c),
        (TemplateKind::Dense, OpSpec::Dense(d)) => dense_space(d),
        (template, op) => panic!("template {template} cannot lower operator {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimpse_tensor_prog::models;

    #[test]
    fn vgg_first_layer_exceeds_200_million_configs() {
        // §2.1: "the first layer of VGG-16 has over 200 million combinations".
        let spec = Conv2dSpec::square(1, 3, 64, 224, 3, 1, 1);
        let space = conv2d_direct_space(&spec);
        assert!(space.size() > 200_000_000, "size = {}", space.size());
    }

    #[test]
    fn every_model_task_builds_a_space() {
        for model in models::evaluation_models() {
            for task in model.tasks() {
                let space = space_for_task(task);
                assert!(space.size() >= 2, "{task} space too small");
                assert_eq!(space.template(), task.template);
            }
        }
    }

    #[test]
    fn conv_direct_has_eight_knobs() {
        let space = conv2d_direct_space(&Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1));
        assert_eq!(space.knobs().len(), 8);
        assert_eq!(space.knobs()[0].name(), "tile_f");
        assert_eq!(space.knobs()[7].name(), "unroll_explicit");
    }

    #[test]
    fn winograd_rejects_strided_convs() {
        let strided = Conv2dSpec::square(1, 64, 128, 56, 3, 2, 1);
        assert!(std::panic::catch_unwind(|| conv2d_winograd_space(&strided)).is_err());
    }

    #[test]
    fn dense_space_is_tractable_but_nontrivial() {
        let space = dense_space(&DenseSpec::new(1, 4096, 4096));
        assert!(space.size() > 10_000);
        assert!(space.size() < 10_000_000);
    }

    #[test]
    fn kernel_shapes_cover_entire_output_for_conv() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let spec = Conv2dSpec::square(1, 64, 64, 56, 3, 1, 1);
        let space = conv2d_direct_space(&spec);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let c = space.sample_uniform(&mut rng);
            let shape = space.kernel_shape(&c);
            // blocks x (vthreads x threads x inner work) == output volume
            let covered = shape.blocks * shape.work_per_thread * shape.threads_per_block;
            assert_eq!(covered, 64u64 * 56 * 56, "config {c:?}");
        }
    }
}
