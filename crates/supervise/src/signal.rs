//! Signal-driven graceful shutdown — the sanctioned U1 exemption.
//!
//! The first SIGINT/SIGTERM trips the process-wide [`CancelToken`] with
//! [`CancelReason::Interrupted`]; the run drains at the next trial
//! boundary, flushes its snapshot, prints the resume command, and exits 0.
//! A second signal means the operator is done waiting: the handler calls
//! `_exit(130)` immediately (no unwinding, no flushing — the WAL is
//! already durable per frame, so this is exactly the SIGKILL story the
//! resume tests cover).
//!
//! The handler body is async-signal-safe by construction: it touches only
//! lock-free atomics (`OnceLock::get` after initialization is an atomic
//! load) and `_exit`. No allocation, no locks, no stdio.
//!
//! The `extern` bindings below are why this file is U1-exempt: the
//! workspace forbids `unsafe` everywhere else, and no signal-handling
//! crate is vendored, so we declare the two libc symbols we need
//! ourselves. On non-unix targets installation is a no-op and the token
//! is only ever tripped by deadlines or the watchdog.

#![allow(unsafe_code)]

use crate::cancel::{CancelReason, CancelToken};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

static TOKEN: OnceLock<CancelToken> = OnceLock::new();
static SIGNALS: AtomicU32 = AtomicU32::new(0);

/// The process-wide token, if [`install`] has run.
pub fn token() -> Option<CancelToken> {
    TOKEN.get().cloned()
}

/// How many shutdown signals have been received.
pub fn signals_received() -> u32 {
    SIGNALS.load(Ordering::Acquire)
}

/// Installs SIGINT/SIGTERM handlers and returns the process-wide token
/// they trip. Idempotent; later calls return the same token.
pub fn install() -> CancelToken {
    let token = TOKEN.get_or_init(CancelToken::new).clone();
    #[cfg(unix)]
    platform::install_handlers();
    token
}

#[cfg(unix)]
mod platform {
    use super::{CancelReason, Ordering, SIGNALS, TOKEN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// Conventional exit status for death-by-SIGINT (128 + 2).
    const EXIT_INTERRUPTED: i32 = 130;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn handle_signal(_signum: i32) {
        // First signal: request a graceful drain. A deadline may already
        // have tripped the token — SIGNALS, not cancel()'s return value,
        // decides escalation, so the first signal never hard-exits.
        if SIGNALS.fetch_add(1, Ordering::AcqRel) == 0 {
            if let Some(token) = TOKEN.get() {
                token.cancel(CancelReason::Interrupted);
            }
        } else {
            unsafe { _exit(EXIT_INTERRUPTED) };
        }
    }

    pub(super) fn install_handlers() {
        unsafe {
            signal(SIGINT, handle_signal as *const () as usize);
            signal(SIGTERM, handle_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_returns_the_shared_token() {
        let a = install();
        let b = install();
        a.cancel(CancelReason::Interrupted);
        assert!(b.is_cancelled(), "both handles must observe the same token");
        assert_eq!(token().map(|t| t.is_cancelled()), Some(true));
    }
}
