//! The typed degradation report: what every campaign says about itself.
//!
//! A fleet run never "just fails". Each cell lands in exactly one
//! [`CellStatus`], and the campaign emits a [`DegradationReport`]
//! (`degradation.json`, written through `glimpse-durable`'s atomic rename)
//! listing per-cell status, faults absorbed, retries, quarantines, and
//! deadline slack. Exit code stays 0 for degraded campaigns — the report,
//! not the exit status, is the machine-readable verdict.

use crate::cancel::CancelReason;
use crate::health::HealthReport;
use serde::{Deserialize, Serialize};

/// Why a cell finished early but cleanly (snapshot flushed, resumable) —
/// or, for [`Degradation::ComponentFallback`], why a cell that ran its
/// full budget still does not count as healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Degradation {
    /// The per-cell `--deadline-s` budget ran out (simulated clock).
    DeadlineExceeded,
    /// The campaign-wide `--max-wall-s` budget ran out (simulated clock).
    WallClockExceeded,
    /// The real-wall-clock watchdog saw no heartbeat and cancelled the run.
    Stalled,
    /// An operator signal (SIGINT/SIGTERM) requested a graceful drain.
    Interrupted,
    /// One or more learned components ran on a fallback ladder rung
    /// (damaged artifact, failed validation, or injected fault). The cell
    /// ran its full budget; the [`CellReport::health`] payload names the
    /// components, causes, and rungs.
    ComponentFallback,
}

impl From<CancelReason> for Degradation {
    fn from(reason: CancelReason) -> Self {
        match reason {
            CancelReason::Interrupted => Degradation::Interrupted,
            CancelReason::DeadlineExceeded => Degradation::DeadlineExceeded,
            CancelReason::WallClockExceeded => Degradation::WallClockExceeded,
            CancelReason::Stalled => Degradation::Stalled,
        }
    }
}

/// Why a cell's work was given up rather than merely cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Abandonment {
    /// The device retired (dead) and no survivor could absorb the cell.
    DeviceDead,
    /// The device refused admission (quarantined/dead before any trial ran).
    DeviceUnavailable,
}

/// Terminal status of one tuning cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// Ran its full budget; `complete.json` written.
    Complete,
    /// Stopped early at a trial boundary; snapshot flushed, resumable.
    Degraded(Degradation),
    /// Work given up; journal closed out, not resumable on this device.
    Abandoned(Abandonment),
    /// The cell's remaining work was re-run on a surviving device.
    Reassigned {
        /// Name of the device that absorbed the cell.
        to: String,
    },
    /// Never started (the campaign was cancelled before reaching it).
    NotStarted,
}

impl CellStatus {
    /// Collapses the two ways a cell can end early — a tripped token or a
    /// dead device — into one status. Cancellation wins because a tripped
    /// token means the stop was *requested*, not suffered.
    pub fn settle(reason: Option<CancelReason>, device_dead: bool) -> Self {
        match (reason, device_dead) {
            (Some(r), _) => CellStatus::Degraded(r.into()),
            (None, true) => CellStatus::Abandoned(Abandonment::DeviceDead),
            (None, false) => CellStatus::Complete,
        }
    }

    /// [`CellStatus::settle`] extended with component health: a cell that
    /// ran its full budget on fallback rungs settles as
    /// `Degraded(ComponentFallback)`. Precedence: cancellation > device
    /// death > component fallback > complete — a requested stop or a dead
    /// device says more about the cell than a weakened search strategy.
    pub fn settle_with_health(reason: Option<CancelReason>, device_dead: bool, component_fallback: bool) -> Self {
        match Self::settle(reason, device_dead) {
            CellStatus::Complete if component_fallback => CellStatus::Degraded(Degradation::ComponentFallback),
            settled => settled,
        }
    }

    /// Whether the cell produced its full budget of measurements.
    pub fn is_complete(&self) -> bool {
        matches!(self, CellStatus::Complete)
    }
}

/// One row of the degradation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell identifier (task or device label; doubles as the checkpoint
    /// subdirectory name).
    pub cell: String,
    /// Device the cell ran on.
    pub device: String,
    /// Terminal status.
    pub status: CellStatus,
    /// Measurements journaled (valid + invalid + faulted).
    pub measurements: usize,
    /// Faulted measurements absorbed without failing the cell.
    pub faults_absorbed: usize,
    /// Extra measurement attempts spent on retries.
    pub retries: usize,
    /// Quarantine episodes the device went through during the cell.
    pub quarantines: u64,
    /// Simulated GPU-seconds charged to the cell.
    pub gpu_seconds: f64,
    /// Best throughput found before the cell ended.
    pub best_gflops: f64,
    /// Simulated seconds left under the tightest deadline when the cell
    /// ended (negative: overshoot; `null`: no deadline was set).
    pub deadline_slack_s: Option<f64>,
    /// Resolved component health for the cell (`null` for tuners without
    /// learned components). Kept optional so reports written before health
    /// tracking existed still deserialize.
    #[serde(default)]
    pub health: Option<HealthReport>,
}

/// The whole campaign's verdict, serialized as `degradation.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Campaign label (subcommand plus model or fleet description).
    pub campaign: String,
    /// One row per cell, in campaign order.
    pub cells: Vec<CellReport>,
}

impl DegradationReport {
    /// A report with no cells yet.
    pub fn new(campaign: impl Into<String>) -> Self {
        Self {
            campaign: campaign.into(),
            cells: Vec::new(),
        }
    }

    /// Adds one cell row.
    pub fn push(&mut self, cell: CellReport) {
        self.cells.push(cell);
    }

    /// Whether every cell completed its full budget.
    pub fn all_complete(&self) -> bool {
        self.cells.iter().all(|c| c.status.is_complete())
    }

    /// Pretty-printed JSON, trailing newline included.
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("degradation report serializes");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(status: CellStatus) -> CellReport {
        CellReport {
            cell: "task0".into(),
            device: "Titan Xp".into(),
            status,
            measurements: 12,
            faults_absorbed: 1,
            retries: 2,
            quarantines: 0,
            gpu_seconds: 3.5,
            best_gflops: 4200.0,
            deadline_slack_s: Some(1.25),
            health: None,
        }
    }

    #[test]
    fn settle_prefers_cancellation_over_device_death() {
        assert_eq!(
            CellStatus::settle(Some(CancelReason::DeadlineExceeded), true),
            CellStatus::Degraded(Degradation::DeadlineExceeded)
        );
        assert_eq!(CellStatus::settle(None, true), CellStatus::Abandoned(Abandonment::DeviceDead));
        assert_eq!(CellStatus::settle(None, false), CellStatus::Complete);
    }

    #[test]
    fn component_fallback_only_demotes_completed_cells() {
        assert_eq!(
            CellStatus::settle_with_health(None, false, true),
            CellStatus::Degraded(Degradation::ComponentFallback)
        );
        assert_eq!(CellStatus::settle_with_health(None, false, false), CellStatus::Complete);
        // A requested stop or dead device outranks a fallback rung.
        assert_eq!(
            CellStatus::settle_with_health(Some(CancelReason::Interrupted), false, true),
            CellStatus::Degraded(Degradation::Interrupted)
        );
        assert_eq!(
            CellStatus::settle_with_health(None, true, true),
            CellStatus::Abandoned(Abandonment::DeviceDead)
        );
    }

    #[test]
    fn cell_report_without_health_field_still_deserializes() {
        // Reports written before health tracking existed lack the field.
        let legacy = serde_json::json!({
            "cell": "task0", "device": "Titan Xp", "status": "Complete",
            "measurements": 12, "faults_absorbed": 0, "retries": 0,
            "quarantines": 0, "gpu_seconds": 1.0, "best_gflops": 100.0,
            "deadline_slack_s": null,
        });
        let back: CellReport = serde_json::from_value(&legacy).unwrap();
        assert_eq!(back.health, None);
    }

    #[test]
    fn health_payload_round_trips_in_a_cell_report() {
        let mut health = crate::health::HealthReport::healthy();
        health.demote(crate::health::Component::Prior, 1, crate::health::HealthCause::Truncated);
        let mut c = cell(CellStatus::Degraded(Degradation::ComponentFallback));
        c.health = Some(health.clone());
        let json = serde_json::to_string(&c).unwrap();
        let back: CellReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.health, Some(health));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = DegradationReport::new("experiment resnet-18");
        report.push(cell(CellStatus::Complete));
        report.push(cell(CellStatus::Reassigned { to: "GTX 1080 Ti".into() }));
        report.push(cell(CellStatus::Degraded(Degradation::Interrupted)));
        let json = report.to_json();
        let back: DegradationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!report.all_complete());
    }

    #[test]
    fn absent_slack_round_trips_as_null() {
        let mut c = cell(CellStatus::Complete);
        c.deadline_slack_s = None;
        let json = serde_json::to_string(&c).unwrap();
        let back: CellReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.deadline_slack_s, None);
    }
}
