//! Component health and fallback ladders: how a tuning run degrades
//! component-by-component instead of aborting.
//!
//! Glimpse is structurally AutoTVM plus learned hardware-aware components
//! (blueprint PCA codec, prior `H`, meta-acquisition, threshold-ensemble
//! sampler, GBT cost model). Every learned component has a well-defined
//! non-learned fallback, so a corrupt, missing, or drifted artifact demotes
//! that one component down its *ladder* rather than killing the run:
//!
//! | component        | rung 0 (learned)       | rung 1 (fallback)          |
//! |------------------|------------------------|----------------------------|
//! | `BlueprintCodec` | blueprint PCA          | raw normalized datasheet   |
//! | `Prior`          | prior-net `H` sampling | uniform initial sampling   |
//! | `Acquisition`    | meta-acquisition       | plain SA energy            |
//! | `Sampler`        | threshold ensemble     | simulator validity check   |
//! | `CostModel`      | GBT surrogate          | rank-by-measured-history   |
//!
//! Ladders are resolved once, at run construction, and the chosen rung per
//! component is recorded in the run's `RunHeader` — a `--resume` under a
//! different rung set is a typed header mismatch, never a silently
//! diverging journal. Every fallback is a deterministic function of
//! (seed, history), so the byte-identical-journal contract of the
//! crash-safe layer survives degradation.
//!
//! This module is the *vocabulary*; resolution lives next to the artifact
//! loaders (core/cli) and enforcement lives in the journal layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The learned components of the Glimpse tuner, in ladder-table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    /// Blueprint PCA codec (spec → low-dimensional hardware embedding).
    BlueprintCodec,
    /// Prior network `H` proposing initial configurations.
    Prior,
    /// Meta-learned neural acquisition function.
    Acquisition,
    /// Threshold-ensemble invalid-config sampler.
    Sampler,
    /// GBT cost-model surrogate ranking unmeasured candidates.
    CostModel,
}

impl Component {
    /// All components, in the order health tables print them.
    pub const ALL: [Component; 5] = [
        Component::BlueprintCodec,
        Component::Prior,
        Component::Acquisition,
        Component::Sampler,
        Component::CostModel,
    ];

    /// Stable kebab-case name used in reports and run headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Component::BlueprintCodec => "blueprint-codec",
            Component::Prior => "prior",
            Component::Acquisition => "acquisition",
            Component::Sampler => "sampler",
            Component::CostModel => "cost-model",
        }
    }

    /// Human labels for each ladder rung, rung 0 first (the learned mode).
    #[must_use]
    pub fn rungs(self) -> &'static [&'static str] {
        match self {
            Component::BlueprintCodec => &["blueprint-pca", "raw-normalized-features"],
            Component::Prior => &["prior-net-h", "uniform-initial-sampling"],
            Component::Acquisition => &["meta-acquisition", "sa-energy"],
            Component::Sampler => &["threshold-ensemble", "validity-check-only"],
            Component::CostModel => &["gbt-surrogate", "measured-history-rank"],
        }
    }

    /// Label of rung `rung`, saturating at the ladder bottom.
    #[must_use]
    pub fn rung_label(self, rung: u8) -> &'static str {
        let rungs = self.rungs();
        rungs[(rung as usize).min(rungs.len() - 1)]
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a component left rung 0. Artifact-shaped causes mirror the
/// `glimpse-durable` envelope verdicts; the rest are semantic failures
/// found after the bytes verified.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthCause {
    /// The artifact file backing the component does not exist.
    ArtifactMissing,
    /// Envelope CRC32 did not match the payload.
    ChecksumMismatch,
    /// Envelope kind or schema version differs from this build's.
    SchemaDrift {
        /// `kind v<schema>` found on disk.
        found: String,
        /// `kind v<schema>` this build expects.
        expected: String,
    },
    /// The bytes do not parse as an envelope, or the payload ends early.
    Truncated,
    /// Envelope verified but the payload did not decode.
    Undecodable,
    /// Payload decoded but failed semantic validation (e.g. a prior whose
    /// head layout does not match the search space).
    ValidationFailed {
        /// What the validator rejected.
        detail: String,
    },
    /// A component this one depends on is itself off rung 0 (e.g. the
    /// prior cannot run without a blueprint from the codec).
    DependencyDegraded {
        /// Name of the degraded dependency.
        dependency: String,
    },
    /// Degradation forced by a fault-injection plan (chaos testing).
    Injected,
}

impl fmt::Display for HealthCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthCause::ArtifactMissing => write!(f, "artifact missing"),
            HealthCause::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            HealthCause::SchemaDrift { found, expected } => write!(f, "artifact schema drift (found {found}, expected {expected})"),
            HealthCause::Truncated => write!(f, "artifact truncated"),
            HealthCause::Undecodable => write!(f, "artifact payload undecodable"),
            HealthCause::ValidationFailed { detail } => write!(f, "validation failed: {detail}"),
            HealthCause::DependencyDegraded { dependency } => write!(f, "dependency degraded: {dependency}"),
            HealthCause::Injected => write!(f, "degradation injected by fault plan"),
        }
    }
}

/// Health of one component after ladder resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentHealth {
    /// Running its learned mode (rung 0).
    Healthy,
    /// Running a weaker-but-valid fallback rung.
    Degraded {
        /// Why the component left rung 0.
        cause: HealthCause,
    },
    /// No usable mode above the ladder bottom; contributes nothing.
    Disabled {
        /// Why the component is out entirely.
        cause: HealthCause,
    },
}

impl ComponentHealth {
    /// Whether the component is on rung 0.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        matches!(self, ComponentHealth::Healthy)
    }

    /// The cause, when not healthy.
    #[must_use]
    pub fn cause(&self) -> Option<&HealthCause> {
        match self {
            ComponentHealth::Healthy => None,
            ComponentHealth::Degraded { cause } | ComponentHealth::Disabled { cause } => Some(cause),
        }
    }
}

/// One resolved row: component, health, and the ladder rung it runs at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentReport {
    /// Which component.
    pub component: Component,
    /// Its resolved health.
    pub health: ComponentHealth,
    /// Ladder rung in use (0 = learned mode).
    pub rung: u8,
}

impl ComponentReport {
    /// Human label of the rung in use.
    #[must_use]
    pub fn rung_label(&self) -> &'static str {
        self.component.rung_label(self.rung)
    }
}

/// The resolved health of every learned component for one run — the
/// payload behind `CellStatus::Degraded` component-fallback rows and the
/// per-component table `glimpse doctor` prints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// One row per component, in [`Component::ALL`] order.
    pub components: Vec<ComponentReport>,
}

impl HealthReport {
    /// All components healthy on rung 0.
    #[must_use]
    pub fn healthy() -> Self {
        Self {
            components: Component::ALL
                .iter()
                .map(|&component| ComponentReport {
                    component,
                    health: ComponentHealth::Healthy,
                    rung: 0,
                })
                .collect(),
        }
    }

    /// A report demoting every component for the same `cause` — what a
    /// wholly missing or corrupt artifact bundle resolves to.
    #[must_use]
    pub fn all_degraded(cause: &HealthCause) -> Self {
        Self {
            components: Component::ALL
                .iter()
                .map(|&component| ComponentReport {
                    component,
                    health: ComponentHealth::Degraded { cause: cause.clone() },
                    rung: 1,
                })
                .collect(),
        }
    }

    /// Demotes `component` to `rung` for `cause` (upgrades never happen
    /// mid-resolution: an already-lower rung wins).
    pub fn demote(&mut self, component: Component, rung: u8, cause: HealthCause) {
        for row in &mut self.components {
            if row.component == component && rung > row.rung {
                row.rung = rung;
                row.health = ComponentHealth::Degraded { cause: cause.clone() };
            }
        }
    }

    /// The row for `component`, if present.
    #[must_use]
    pub fn get(&self, component: Component) -> Option<&ComponentReport> {
        self.components.iter().find(|row| row.component == component)
    }

    /// Rung in use for `component` (0 when the row is absent, matching a
    /// header written before health tracking existed).
    #[must_use]
    pub fn rung(&self, component: Component) -> u8 {
        self.get(component).map_or(0, |row| row.rung)
    }

    /// Whether any component is off rung 0.
    #[must_use]
    pub fn any_degraded(&self) -> bool {
        self.components.iter().any(|row| !row.health.is_healthy())
    }

    /// Names of the components off rung 0, for log lines and reports.
    #[must_use]
    pub fn degraded_names(&self) -> Vec<&'static str> {
        self.components
            .iter()
            .filter(|row| !row.health.is_healthy())
            .map(|row| row.component.name())
            .collect()
    }

    /// The compact `component=rung` ladder fingerprint recorded in run
    /// headers and enforced on resume.
    #[must_use]
    pub fn rung_fingerprint(&self) -> Vec<(String, u8)> {
        self.components
            .iter()
            .map(|row| (row.component.name().to_string(), row.rung))
            .collect()
    }
}

impl Default for HealthReport {
    fn default() -> Self {
        Self::healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_report_has_all_components_on_rung_zero() {
        let report = HealthReport::healthy();
        assert_eq!(report.components.len(), Component::ALL.len());
        assert!(!report.any_degraded());
        assert!(report.rung_fingerprint().iter().all(|(_, rung)| *rung == 0));
    }

    #[test]
    fn demote_is_monotone() {
        let mut report = HealthReport::healthy();
        report.demote(Component::Prior, 1, HealthCause::ChecksumMismatch);
        assert_eq!(report.rung(Component::Prior), 1);
        // A later, shallower demotion must not promote the component back.
        report.demote(Component::Prior, 0, HealthCause::Injected);
        assert_eq!(report.rung(Component::Prior), 1);
        assert_eq!(report.degraded_names(), vec!["prior"]);
        assert_eq!(report.get(Component::Prior).unwrap().rung_label(), "uniform-initial-sampling");
    }

    #[test]
    fn all_degraded_names_every_component() {
        let report = HealthReport::all_degraded(&HealthCause::ArtifactMissing);
        assert!(report.any_degraded());
        assert_eq!(report.degraded_names().len(), Component::ALL.len());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = HealthReport::healthy();
        report.demote(
            Component::CostModel,
            1,
            HealthCause::SchemaDrift {
                found: "artifacts v9".into(),
                expected: "artifacts v1".into(),
            },
        );
        report.demote(
            Component::Sampler,
            1,
            HealthCause::DependencyDegraded {
                dependency: "blueprint-codec".into(),
            },
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn rung_labels_saturate_at_ladder_bottom() {
        assert_eq!(Component::Prior.rung_label(0), "prior-net-h");
        assert_eq!(Component::Prior.rung_label(1), "uniform-initial-sampling");
        assert_eq!(Component::Prior.rung_label(7), "uniform-initial-sampling");
    }

    #[test]
    fn causes_render_for_operators() {
        let cause = HealthCause::SchemaDrift {
            found: "artifacts v2".into(),
            expected: "artifacts v1".into(),
        };
        assert!(cause.to_string().contains("found artifacts v2"));
        assert!(HealthCause::Injected.to_string().contains("fault plan"));
    }
}
