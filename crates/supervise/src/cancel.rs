//! Cooperative cancellation: a shared flag checked at deterministic points.
//!
//! A [`CancelToken`] is a clonable handle to one atomic cell. Anything may
//! trip it — a signal handler, a deadline check, the watchdog — but nothing
//! is interrupted: workers *poll* the token at trial and SA-round
//! boundaries and drain cleanly. Because the checks sit at points that are
//! identical across thread counts, a cancelled run's journal is a
//! byte-identical prefix of the uninterrupted run's.
//!
//! The first cancel wins: once a reason is recorded it is never
//! overwritten, so a run that hits its deadline and *then* receives SIGINT
//! still reports `DeadlineExceeded`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a run was asked to stop. Ordered by how the supervisor reports it;
/// the first reason recorded on a token sticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CancelReason {
    /// Operator signal (SIGINT/SIGTERM) or an explicit cancel request.
    Interrupted,
    /// The per-cell `--deadline-s` budget on the simulated clock ran out.
    DeadlineExceeded,
    /// The whole-campaign `--max-wall-s` budget on the simulated clock ran out.
    WallClockExceeded,
    /// The real-wall-clock watchdog saw no heartbeat for too long.
    Stalled,
}

const LIVE: u8 = 0;

impl CancelReason {
    fn code(self) -> u8 {
        match self {
            CancelReason::Interrupted => 1,
            CancelReason::DeadlineExceeded => 2,
            CancelReason::WallClockExceeded => 3,
            CancelReason::Stalled => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(CancelReason::Interrupted),
            2 => Some(CancelReason::DeadlineExceeded),
            3 => Some(CancelReason::WallClockExceeded),
            4 => Some(CancelReason::Stalled),
            _ => None,
        }
    }
}

/// A clonable, lock-free cancellation flag. All clones observe the same
/// state; cancellation is monotonic (never un-cancelled) and first-wins.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token with `reason`. Returns `true` if this call was the
    /// first to cancel; a later reason never overwrites an earlier one.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.state
            .compare_exchange(LIVE, reason.code(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether any clone has tripped the token.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != LIVE
    }

    /// The reason the token was tripped, if it was.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.state.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert!(t.cancel(CancelReason::DeadlineExceeded));
        assert!(!t.cancel(CancelReason::Interrupted));
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(c.cancel(CancelReason::Stalled));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Stalled));
    }

    #[test]
    fn concurrent_cancels_record_exactly_one_reason() {
        let t = CancelToken::new();
        let winners: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let t = t.clone();
                    scope.spawn(move || {
                        let reason = if i % 2 == 0 {
                            CancelReason::Interrupted
                        } else {
                            CancelReason::Stalled
                        };
                        usize::from(t.cancel(reason))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1, "exactly one cancel call may win");
        assert!(t.reason().is_some());
    }
}
