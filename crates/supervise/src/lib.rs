//! Fleet supervision primitives: cooperative cancellation, deadlines,
//! watchdogs, signal-driven graceful shutdown, and the typed degradation
//! report every campaign emits.
//!
//! Long tuning campaigns fail partially: a device dies mid-cell, a worker
//! hangs, an operator hits Ctrl-C, a per-cell deadline expires. This crate
//! holds the *mechanisms* that let the rest of the workspace absorb those
//! events without giving up determinism:
//!
//! * [`cancel::CancelToken`] — a shared, lock-free flag checked at
//!   deterministic points only (trial and SA-round boundaries), so a
//!   cancelled run's journal is a byte-identical prefix of the
//!   uninterrupted run's.
//! * [`watchdog`] — the one sanctioned real-wall-clock consumer (lint rule
//!   D1 exemption): a [`watchdog::Heartbeat`] beaten at trial boundaries
//!   plus a background [`watchdog::Watchdog`] that trips the token with
//!   [`cancel::CancelReason::Stalled`] when the beat stops.
//! * [`signal`] — SIGINT/SIGTERM installation (the one sanctioned `unsafe`
//!   besides `mlkit::parallel`, lint rule U1): the first signal trips the
//!   process-wide token for a graceful drain, the second hard-exits.
//! * [`report`] — the degradation taxonomy ([`report::CellStatus`]) and the
//!   `degradation.json` schema ([`report::DegradationReport`]).
//! * [`health`] — per-component health ([`health::ComponentHealth`]) and
//!   the fallback-ladder vocabulary ([`health::HealthReport`]) that lets a
//!   run with damaged learned artifacts complete degraded instead of
//!   aborting.
//!
//! The crate is a DAG leaf (it imports no `glimpse_*` crate), so every
//! layer — `mlkit`'s fan-outs included — may depend on it.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cancel;
pub mod health;
pub mod report;
pub mod signal;
pub mod watchdog;

pub use cancel::{CancelReason, CancelToken};
pub use health::{Component, ComponentHealth, ComponentReport, HealthCause, HealthReport};
pub use report::{Abandonment, CellReport, CellStatus, Degradation, DegradationReport};
pub use watchdog::{Heartbeat, Watchdog};
