//! Real-wall-clock stall detection — the sanctioned D1 exemption.
//!
//! Everything else in the workspace runs on the simulated clock; a hung
//! worker by definition stops advancing it, so stall detection is the one
//! job that *must* consult real time. The contract that keeps determinism
//! intact: the watchdog never touches run state directly — it only trips a
//! [`CancelToken`] with [`CancelReason::Stalled`], and the run drains at
//! the next trial boundary like any other cancellation.
//!
//! Workers call [`Heartbeat::beat`] at every trial boundary. The
//! [`Watchdog`] polls from a background thread and trips the token when
//! the beat count has not moved for the configured stall window.

use crate::cancel::{CancelReason, CancelToken};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A clonable liveness counter beaten at trial boundaries.
#[derive(Debug, Clone, Default)]
pub struct Heartbeat {
    beats: Arc<AtomicU64>,
}

impl Heartbeat {
    /// A fresh heartbeat with zero beats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one unit of forward progress.
    pub fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Total beats so far.
    pub fn count(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }
}

/// Background stall detector. Trips the token with
/// [`CancelReason::Stalled`] when the heartbeat stops for `stall`; joins
/// its thread on drop.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the detector. `stall` is how long the beat count may stay
    /// flat before the token is tripped; polling runs at roughly a quarter
    /// of that (capped at one second) so a stall is caught within ~1.25×
    /// the window.
    #[allow(clippy::disallowed_methods)] // D1 exemption: stall detection is the sanctioned real-clock consumer.
    pub fn spawn(heartbeat: Heartbeat, token: CancelToken, stall: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let poll = (stall / 4).min(Duration::from_secs(1)).max(Duration::from_millis(1));
            let mut last_count = heartbeat.count();
            let mut last_progress = Instant::now();
            while !stop_flag.load(Ordering::Acquire) {
                std::thread::sleep(poll);
                let count = heartbeat.count();
                if count != last_count {
                    last_count = count;
                    last_progress = Instant::now();
                } else if last_progress.elapsed() >= stall {
                    token.cancel(CancelReason::Stalled);
                    return;
                }
            }
        });
        Self {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::disallowed_methods)] // D1 exemption: bounding a real-clock wait in the real-clock crate's own test.
    fn silent_heartbeat_trips_stalled() {
        let hb = Heartbeat::new();
        let token = CancelToken::new();
        let dog = Watchdog::spawn(hb, token.clone(), Duration::from_millis(20));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(token.reason(), Some(CancelReason::Stalled));
        drop(dog);
    }

    #[test]
    fn steady_heartbeat_keeps_the_run_alive() {
        let hb = Heartbeat::new();
        let token = CancelToken::new();
        let dog = Watchdog::spawn(hb.clone(), token.clone(), Duration::from_millis(80));
        for _ in 0..10 {
            hb.beat();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!token.is_cancelled(), "beating heartbeat must not trip the watchdog");
        drop(dog);
    }

    #[test]
    fn drop_joins_the_thread() {
        let hb = Heartbeat::new();
        let token = CancelToken::new();
        let dog = Watchdog::spawn(hb, token.clone(), Duration::from_secs(60));
        drop(dog); // must not hang
        assert!(!token.is_cancelled());
    }
}
