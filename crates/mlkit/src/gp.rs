//! Gaussian-process regression with an RBF kernel.
//!
//! Substrate for the DGP baseline (Sun et al., ICCV '21), which places a
//! Gaussian process over a learned feature embedding and transfers its
//! prior mean across tasks.

use crate::linalg::{LinalgError, Matrix};
use crate::parallel::{parallel_map_range, Threads};
use serde::{Deserialize, Serialize};

/// Radial-basis-function (squared-exponential) kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    /// Signal variance σ_f².
    pub variance: f64,
    /// Isotropic length scale ℓ.
    pub length_scale: f64,
}

impl RbfKernel {
    /// Kernel value `k(a, b) = σ_f² exp(-‖a−b‖² / 2ℓ²)`.
    #[must_use]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
        self.variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

impl Default for RbfKernel {
    fn default() -> Self {
        Self {
            variance: 1.0,
            length_scale: 1.0,
        }
    }
}

/// A fitted GP regressor (exact inference, Cholesky).
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: RbfKernel,
    noise: f64,
    x: Vec<Vec<f64>>,
    l: Matrix,
    alpha: Vec<f64>,
    mean_offset: f64,
}

impl GaussianProcess {
    /// Fits the GP to `(x, y)` with observation noise `noise` (σ_n²).
    /// The empirical mean of `y` is subtracted and restored at prediction
    /// (a constant mean function).
    ///
    /// # Examples
    ///
    /// ```
    /// use glimpse_mlkit::gp::{GaussianProcess, RbfKernel};
    ///
    /// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
    /// let ys = [0.0, 1.0, 4.0];
    /// let gp = GaussianProcess::fit(RbfKernel::default(), 1e-6, xs, &ys).unwrap();
    /// let (mean, var) = gp.predict(&[1.5]);
    /// assert!(mean > 1.0 && mean < 4.0);
    /// assert!(var >= 0.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] if the kernel matrix is numerically singular
    /// even after jitter.
    pub fn fit(kernel: RbfKernel, noise: f64, x: Vec<Vec<f64>>, y: &[f64]) -> Result<Self, LinalgError> {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "GP needs at least one observation");
        let n = x.len();
        let mean_offset = y.iter().sum::<f64>() / n as f64;
        // Kernel rows (upper triangle) build in parallel — each row is a
        // pure function of `x`, so assembly order cannot change the matrix.
        let threads = if n >= 64 { Threads::AUTO } else { Threads::fixed(1) };
        let rows: Vec<Vec<f64>> = parallel_map_range(threads, n, |i| (i..n).map(|j| kernel.eval(&x[i], &x[j])).collect());
        let mut k = Matrix::zeros(n, n);
        for (i, row) in rows.iter().enumerate() {
            for (offset, &v) in row.iter().enumerate() {
                let j = i + offset;
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += noise;
        }
        // Jittered Cholesky.
        let mut jitter = 1e-10;
        let l = loop {
            match k.cholesky() {
                Ok(l) => break l,
                Err(e) => {
                    if jitter > 1e-2 {
                        return Err(e);
                    }
                    for i in 0..n {
                        k[(i, i)] += jitter;
                    }
                    jitter *= 10.0;
                }
            }
        };
        let centered: Vec<f64> = y.iter().map(|v| v - mean_offset).collect();
        let alpha = l.cholesky_solve(&centered);
        Ok(Self {
            kernel,
            noise,
            x,
            l,
            alpha,
            mean_offset,
        })
    }

    /// Number of observations the GP conditions on.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the GP has no observations (never true for a fitted GP).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Predictive mean and variance at `q`.
    #[must_use]
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let ks: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, q)).collect();
        let mean = self.mean_offset + ks.iter().zip(&self.alpha).map(|(k, a)| k * a).sum::<f64>();
        // v = L⁻¹ k_s via forward substitution.
        let n = self.x.len();
        let mut v = vec![0.0; n];
        for i in 0..n {
            let mut sum = ks[i];
            #[allow(clippy::needless_range_loop)] // triangular solve: `j` indexes both `l` and `v`
            for j in 0..i {
                sum -= self.l[(i, j)] * v[j];
            }
            v[i] = sum / self.l[(i, i)];
        }
        let var = (self.kernel.variance + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var)
    }

    /// Expected improvement of `q` over the incumbent best `best_y`
    /// (maximization form) — a classic Bayesian-optimization acquisition.
    #[must_use]
    pub fn expected_improvement(&self, q: &[f64], best_y: f64) -> f64 {
        let (mu, var) = self.predict(q);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return (mu - best_y).max(0.0);
        }
        let z = (mu - best_y) / sigma;
        sigma * (z * standard_normal_cdf(z) + standard_normal_pdf(z))
    }

    /// Upper confidence bound `μ + κσ` — the other classic acquisition the
    /// paper's footnote 3 references.
    #[must_use]
    pub fn upper_confidence_bound(&self, q: &[f64], kappa: f64) -> f64 {
        let (mu, var) = self.predict(q);
        mu + kappa * var.sqrt()
    }
}

fn standard_normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|ε| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t * (0.254_829_592 + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 6.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = sine_data(20);
        let gp = GaussianProcess::fit(
            RbfKernel {
                variance: 1.0,
                length_scale: 0.8,
            },
            1e-6,
            xs.clone(),
            &ys,
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (mu, _) = gp.predict(x);
            assert!((mu - y).abs() < 1e-2, "at {x:?}: {mu} vs {y}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = sine_data(10);
        let gp = GaussianProcess::fit(RbfKernel::default(), 1e-6, xs, &ys).unwrap();
        let (_, var_near) = gp.predict(&[3.0]);
        let (_, var_far) = gp.predict(&[30.0]);
        assert!(var_far > var_near * 10.0);
    }

    #[test]
    fn predicts_smooth_interpolation() {
        let (xs, ys) = sine_data(30);
        let gp = GaussianProcess::fit(
            RbfKernel {
                variance: 1.0,
                length_scale: 0.8,
            },
            1e-6,
            xs,
            &ys,
        )
        .unwrap();
        let (mu, _) = gp.predict(&[1.55]);
        assert!((mu - 1.55f64.sin()).abs() < 0.05);
    }

    #[test]
    fn expected_improvement_positive_in_unexplored_regions() {
        let (xs, ys) = sine_data(10);
        let best = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let gp = GaussianProcess::fit(RbfKernel::default(), 1e-6, xs, &ys).unwrap();
        assert!(gp.expected_improvement(&[100.0], best) > 0.0);
    }

    #[test]
    fn ucb_exceeds_mean() {
        let (xs, ys) = sine_data(10);
        let gp = GaussianProcess::fit(RbfKernel::default(), 1e-6, xs, &ys).unwrap();
        let q = vec![2.0];
        let (mu, _) = gp.predict(&q);
        assert!(gp.upper_confidence_bound(&q, 2.0) > mu);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
    }

    #[test]
    fn fit_identical_across_thread_counts() {
        // 80 observations crosses the parallel-assembly threshold.
        let (xs, ys) = sine_data(80);
        let predict_at = |threads: usize| {
            crate::parallel::set_default_threads(threads);
            let gp = GaussianProcess::fit(RbfKernel::default(), 1e-6, xs.clone(), &ys).unwrap();
            crate::parallel::set_default_threads(0);
            let (mu, var) = gp.predict(&[1.23]);
            (mu.to_bits(), var.to_bits())
        };
        let one = predict_at(1);
        assert_eq!(one, predict_at(4));
        assert_eq!(one, predict_at(9));
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let xs = vec![vec![1.0], vec![1.0], vec![2.0]];
        let ys = vec![0.5, 0.5, 1.0];
        let gp = GaussianProcess::fit(RbfKernel::default(), 0.0, xs, &ys).unwrap();
        assert_eq!(gp.len(), 3);
    }
}
