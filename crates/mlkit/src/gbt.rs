//! Gradient-boosted regression trees.
//!
//! AutoTVM's surrogate cost model is an XGBoost ranker; this module is the
//! reproduction's equivalent: depth-limited regression trees fitted to
//! residuals with shrinkage and optional feature subsampling.
//!
//! Since PR 2 the split search runs as a single sorted prefix-sum sweep
//! (sum / sum-of-squares sufficient statistics) instead of re-scanning the
//! node for every candidate threshold — an O(n·thresholds) → O(n log n)
//! algorithmic win — and the per-feature searches fan out across worker
//! threads via [`crate::parallel`]. Feature-subsampling coin flips are drawn
//! *before* the fan-out, so the fitted ensemble is bit-identical at every
//! thread count.
//!
//! [`Gbt::fit_incremental`] warm-starts boosting from an existing forest:
//! new trees are fitted to the residuals of the current predictions, so a
//! tuner can append a handful of trees per round instead of refitting the
//! whole ensemble over the entire history. Training rows are accepted as any
//! `AsRef<[f64]>` (plain `Vec<f64>` or shared `Arc<[f64]>` rows from a
//! feature cache) so callers never have to clone feature matrices to fit.

use crate::parallel::{parallel_map, parallel_map_range, Threads};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`Gbt`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Fraction of features considered per split (0 < f ≤ 1).
    pub feature_fraction: f64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            trees: 50,
            max_depth: 4,
            learning_rate: 0.15,
            min_samples_split: 4,
            feature_fraction: 0.9,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// A fitted gradient-boosted tree ensemble (squared loss).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbt {
    base: f64,
    trees: Vec<Node>,
    params: GbtParams,
}

/// Below this many (sample × feature) cells a node's split search runs
/// inline: thread fan-out costs more than it saves on small nodes.
const PARALLEL_SPLIT_CELLS: usize = 8 * 1024;
/// Minimum batch size before predictions fan out across workers.
const PARALLEL_PREDICT_ROWS: usize = 256;

impl Gbt {
    /// Fits the ensemble on `(xs, ys)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use glimpse_mlkit::gbt::{Gbt, GbtParams};
    /// use rand::SeedableRng;
    ///
    /// let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
    /// let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let model = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
    /// assert!((model.predict(&[25.0]) - 50.0).abs() < 8.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or ragged.
    #[must_use]
    pub fn fit<X: AsRef<[f64]> + Sync, R: Rng + ?Sized>(xs: &[X], ys: &[f64], params: GbtParams, rng: &mut R) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len());
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut forest = Self {
            base,
            trees: Vec::with_capacity(params.trees),
            params,
        };
        forest.boost(xs, &mut residuals, params.trees, rng);
        forest
    }

    /// Warm-starts boosting from this forest: fits `extra_trees` new trees
    /// on the residuals of the current predictions over `(xs, ys)` and
    /// returns the extended ensemble. `self` is unchanged.
    ///
    /// The base prediction and hyperparameters are inherited from the
    /// original fit, so with `extra_trees == 0` the returned forest predicts
    /// bit-identically to `self`. Continuing on the same `(xs, ys)` is the
    /// cheap per-round path for a tuner's cost model; a periodic seeded
    /// full [`Gbt::fit`] bounds any drift from the recomputed residuals
    /// (the warm start recomputes `y − predict(x)` in one pass, which can
    /// differ from the scratch fit's iteratively-updated residuals by
    /// float-rounding ulps).
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty, ragged, or narrower than the
    /// rows the forest was fitted on.
    #[must_use]
    pub fn fit_incremental<X: AsRef<[f64]> + Sync, R: Rng + ?Sized>(&self, xs: &[X], ys: &[f64], extra_trees: usize, rng: &mut R) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len());
        let preds = self.predict_batch(xs);
        let mut residuals: Vec<f64> = ys.iter().zip(&preds).map(|(y, p)| y - p).collect();
        let mut forest = self.clone();
        forest.trees.reserve(extra_trees);
        forest.boost(xs, &mut residuals, extra_trees, rng);
        forest
    }

    /// Shared boosting loop: appends `rounds` trees fitted on `residuals`,
    /// updating the residuals in place with shrinkage after each round.
    fn boost<X: AsRef<[f64]> + Sync, R: Rng + ?Sized>(&mut self, xs: &[X], residuals: &mut [f64], rounds: usize, rng: &mut R) {
        let width = xs[0].as_ref().len();
        assert!(xs.iter().all(|x| x.as_ref().len() == width), "ragged features");
        let indices: Vec<usize> = (0..xs.len()).collect();
        let predict_threads = if xs.len() >= PARALLEL_PREDICT_ROWS {
            Threads::AUTO
        } else {
            Threads::fixed(1)
        };
        for _ in 0..rounds {
            let tree = build_tree(xs, residuals, &indices, self.params.max_depth, &self.params, rng);
            let preds = parallel_map(predict_threads, xs, |_, x| tree.predict(x.as_ref()));
            for (r, p) in residuals.iter_mut().zip(&preds) {
                *r -= self.params.learning_rate * p;
            }
            self.trees.push(tree);
        }
    }

    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.params.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Predicted values for a batch of rows, fanned out across worker
    /// threads (same order and same values as mapping [`Gbt::predict`]).
    #[must_use]
    pub fn predict_batch<X: AsRef<[f64]> + Sync>(&self, xs: &[X]) -> Vec<f64> {
        let threads = if xs.len() >= PARALLEL_PREDICT_ROWS {
            Threads::AUTO
        } else {
            Threads::fixed(1)
        };
        parallel_map(threads, xs, |_, x| self.predict(x.as_ref()))
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble has no trees.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The root split of tree `t` as `(feature, threshold)`, if it split.
    /// Diagnostic hook used by the split-search equivalence tests and the
    /// throughput harness; not part of the modeling API.
    #[doc(hidden)]
    #[must_use]
    pub fn root_split(&self, t: usize) -> Option<(usize, f64)> {
        match self.trees.get(t)? {
            Node::Leaf(_) => None,
            Node::Split { feature, threshold, .. } => Some((*feature, *threshold)),
        }
    }
}

fn build_tree<X: AsRef<[f64]> + Sync, R: Rng + ?Sized>(
    xs: &[X],
    targets: &[f64],
    indices: &[usize],
    depth: usize,
    params: &GbtParams,
    rng: &mut R,
) -> Node {
    let n = indices.len();
    let mean: f64 = indices.iter().map(|&i| targets[i]).sum::<f64>() / n.max(1) as f64;
    if depth == 0 || n < params.min_samples_split {
        return Node::Leaf(mean);
    }
    let width = xs[0].as_ref().len();
    // Feature-subsampling coin flips happen before the parallel fan-out so
    // the RNG stream (and thus the fitted model) is thread-count invariant.
    let included: Vec<bool> = (0..width)
        .map(|_| !(params.feature_fraction < 1.0 && rng.gen::<f64>() > params.feature_fraction))
        .collect();
    let threads = if n * width >= PARALLEL_SPLIT_CELLS {
        Threads::AUTO
    } else {
        Threads::fixed(1)
    };
    let per_feature = parallel_map_range(threads, width, |feature| {
        if included[feature] {
            best_split_for_feature(xs, targets, indices, feature)
        } else {
            None
        }
    });
    // Reduce with the legacy tie-break: earliest feature wins on equal gain.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for (feature, candidate) in per_feature.into_iter().enumerate() {
        if let Some((threshold, gain)) = candidate {
            if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                best = Some((feature, threshold, gain));
            }
        }
    }
    match best {
        None => Node::Leaf(mean),
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices.iter().partition(|&&i| xs[i].as_ref()[feature] <= threshold);
            let left = build_tree(xs, targets, &left_idx, depth - 1, params, rng);
            let right = build_tree(xs, targets, &right_idx, depth - 1, params, rng);
            Node::Split {
                feature,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

/// Best `(threshold, gain)` for one feature via a single sorted prefix-sum
/// sweep over (sum, sum-of-squares) sufficient statistics.
///
/// Candidate thresholds are the same quantile-ish midpoints the original
/// two-pass search visited (consecutive distinct sorted values, strided so
/// at most ~16 candidates are scored), but each candidate now costs O(1)
/// instead of two O(n) scans.
fn best_split_for_feature<X: AsRef<[f64]>>(xs: &[X], targets: &[f64], indices: &[usize], feature: usize) -> Option<(f64, f64)> {
    let n = indices.len();
    let mut pairs: Vec<(f64, f64)> = indices.iter().map(|&i| (xs[i].as_ref()[feature], targets[i])).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Prefix sums of t and t² over the sorted order, plus the boundary
    // position (count of samples ≤ value) of each distinct-value run.
    let mut prefix_sum = vec![0.0f64; n + 1];
    let mut prefix_sq = vec![0.0f64; n + 1];
    let mut runs: Vec<(f64, usize)> = Vec::new(); // (distinct value, samples ≤ it)
    for (i, &(v, t)) in pairs.iter().enumerate() {
        prefix_sum[i + 1] = prefix_sum[i] + t;
        prefix_sq[i + 1] = prefix_sq[i] + t * t;
        match runs.last_mut() {
            Some(run) if run.0 == v => run.1 = i + 1,
            _ => runs.push((v, i + 1)),
        }
    }
    if runs.len() < 2 {
        return None;
    }
    let total_sum = prefix_sum[n];
    let total_sq = prefix_sq[n];
    let parent_sse = total_sq - total_sum * total_sum / n as f64;
    let step = (runs.len() / 16).max(1);
    let mut best: Option<(f64, f64)> = None;
    for j in (0..runs.len() - 1).step_by(step) {
        let threshold = (runs[j].0 + runs[j + 1].0) / 2.0;
        let p = runs[j].1; // left count: every sample with value ≤ runs[j].0
        let left_sum = prefix_sum[p];
        let left_sse = prefix_sq[p] - left_sum * left_sum / p as f64;
        let right_sum = total_sum - left_sum;
        let right_sse = (total_sq - prefix_sq[p]) - right_sum * right_sum / (n - p) as f64;
        let gain = parent_sse - (left_sse + right_sse);
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((threshold, gain));
        }
    }
    best
}

/// The prefix-sum split search for one feature, exposed so the
/// `search_throughput` harness can time it against the two-pass reference.
/// Not part of the modeling API.
#[doc(hidden)]
#[must_use]
pub fn prefix_sum_best_split(xs: &[Vec<f64>], targets: &[f64], indices: &[usize], feature: usize) -> Option<(f64, f64)> {
    best_split_for_feature(xs, targets, indices, feature)
}

/// The original O(n·thresholds) two-pass split search, kept verbatim as the
/// reference implementation for the equivalence tests and the
/// `search_throughput` harness's algorithmic-speedup record. Not part of
/// the modeling API.
#[doc(hidden)]
#[must_use]
pub fn two_pass_best_split(xs: &[Vec<f64>], targets: &[f64], indices: &[usize], feature: usize) -> Option<(f64, f64)> {
    let mut values: Vec<f64> = indices.iter().map(|&i| xs[i][feature]).collect();
    values.sort_by(|a, b| a.total_cmp(b));
    values.dedup();
    if values.len() < 2 {
        return None;
    }
    let n = indices.len();
    let mean: f64 = indices.iter().map(|&i| targets[i]).sum::<f64>() / n.max(1) as f64;
    let parent_sse: f64 = indices.iter().map(|&i| (targets[i] - mean).powi(2)).sum();
    let step = (values.len() / 16).max(1);
    let mut best: Option<(f64, f64)> = None;
    for w in values.windows(2).step_by(step) {
        let threshold = (w[0] + w[1]) / 2.0;
        let (mut ln, mut ls, mut rn, mut rs) = (0usize, 0.0f64, 0usize, 0.0f64);
        for &i in indices {
            if xs[i][feature] <= threshold {
                ln += 1;
                ls += targets[i];
            } else {
                rn += 1;
                rs += targets[i];
            }
        }
        if ln == 0 || rn == 0 {
            continue;
        }
        let (lm, rm) = (ls / ln as f64, rs / rn as f64);
        let mut sse = 0.0;
        for &i in indices {
            let m = if xs[i][feature] <= threshold { lm } else { rm };
            sse += (targets[i] - m).powi(2);
        }
        let gain = parent_sse - sse;
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((threshold, gain));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + x[1] * x[2] - 2.0 * (x[3] - 0.5).powi(2)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (xs, ys) = friedman_like(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let gbt = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let mse: f64 = xs.iter().zip(&ys).map(|(x, y)| (gbt.predict(x) - y).powi(2)).sum::<f64>() / xs.len() as f64;
        let var = crate::stats::std_dev(&ys).powi(2);
        assert!(mse < 0.05 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn ranks_better_than_random() {
        // The cost-model role only needs ranking quality: check Spearman-ish
        // agreement on held-out data.
        let (xs, ys) = friedman_like(600, 3);
        let (train_x, test_x) = xs.split_at(400);
        let (train_y, test_y) = ys.split_at(400);
        let mut rng = StdRng::seed_from_u64(4);
        let gbt = Gbt::fit(train_x, train_y, GbtParams::default(), &mut rng);
        let preds: Vec<f64> = test_x.iter().map(|x| gbt.predict(x)).collect();
        // Count concordant pairs.
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..test_y.len() {
            for j in i + 1..test_y.len() {
                total += 1;
                if (test_y[i] - test_y[j]) * (preds[i] - preds[j]) > 0.0 {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total as f64;
        assert!(tau > 0.85, "concordance {tau}");
    }

    #[test]
    fn constant_targets_yield_constant_model() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 20];
        let mut rng = StdRng::seed_from_u64(5);
        let gbt = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        assert!((gbt.predict(&[100.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn more_trees_do_not_hurt_training_fit() {
        let (xs, ys) = friedman_like(200, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let small = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 5,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let large = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 80,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let mse = |g: &Gbt| xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mse(&large) <= mse(&small));
    }

    #[test]
    fn len_reports_tree_count() {
        let (xs, ys) = friedman_like(50, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let gbt = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 7,
                ..GbtParams::default()
            },
            &mut rng,
        );
        assert_eq!(gbt.len(), 7);
        assert!(!gbt.is_empty());
    }

    #[test]
    fn prefix_sum_split_matches_two_pass_reference() {
        // The PR-2 rewrite must pick the same (feature, threshold) as the
        // original re-scanning search on a fixed fixture.
        let (xs, ys) = friedman_like(500, 42);
        let indices: Vec<usize> = (0..xs.len()).collect();
        let width = xs[0].len();
        for feature in 0..width {
            let fast = best_split_for_feature(&xs, &ys, &indices, feature);
            let slow = two_pass_best_split(&xs, &ys, &indices, feature);
            match (fast, slow) {
                (Some((ft, fg)), Some((st, sg))) => {
                    assert_eq!(ft, st, "feature {feature}: thresholds diverged");
                    assert!((fg - sg).abs() < 1e-6 * sg.abs().max(1.0), "feature {feature}: gains {fg} vs {sg}");
                }
                (None, None) => {}
                other => panic!("feature {feature}: disagreement {other:?}"),
            }
        }
        // And the full-tree argmax across features must agree too: fit one
        // depth-1 tree and check its root against the reference argmax.
        let mut rng = StdRng::seed_from_u64(0);
        let gbt = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 1,
                max_depth: 1,
                feature_fraction: 1.0,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let mut reference: Option<(usize, f64, f64)> = None;
        for feature in 0..width {
            if let Some((threshold, gain)) = two_pass_best_split(&xs, &ys, &indices, feature) {
                if reference.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                    reference = Some((feature, threshold, gain));
                }
            }
        }
        let (rf, rt, _) = reference.expect("fixture has signal");
        assert_eq!(gbt.root_split(0), Some((rf, rt)));
    }

    #[test]
    fn splits_ties_and_duplicate_values() {
        // Columns with a single distinct value must be unsplittable.
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![1.0, (i % 3) as f64]).collect();
        let ys: Vec<f64> = (0..30).map(|i| (i % 3) as f64 * 10.0).collect();
        let indices: Vec<usize> = (0..30).collect();
        assert_eq!(best_split_for_feature(&xs, &ys, &indices, 0), None);
        let (_, gain) = best_split_for_feature(&xs, &ys, &indices, 1).expect("feature 1 separates");
        assert!(gain > 0.0);
    }

    #[test]
    fn fit_is_identical_at_any_thread_count() {
        let (xs, ys) = friedman_like(600, 10);
        let fit_at = |threads: usize| {
            crate::parallel::set_default_threads(threads);
            let mut rng = StdRng::seed_from_u64(3);
            let gbt = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
            crate::parallel::set_default_threads(0);
            xs.iter().map(|x| gbt.predict(x).to_bits()).collect::<Vec<u64>>()
        };
        let one = fit_at(1);
        assert_eq!(one, fit_at(4));
        assert_eq!(one, fit_at(13));
    }

    #[test]
    fn incremental_with_zero_trees_is_bit_identical() {
        let (xs, ys) = friedman_like(300, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let base = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let mut rng = StdRng::seed_from_u64(22);
        let same = base.fit_incremental(&xs, &ys, 0, &mut rng);
        assert_eq!(same.len(), base.len());
        for x in &xs {
            assert_eq!(base.predict(x).to_bits(), same.predict(x).to_bits());
        }
    }

    #[test]
    fn incremental_trees_improve_training_fit() {
        let (xs, ys) = friedman_like(400, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let short = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 8,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let extended = short.fit_incremental(&xs, &ys, 40, &mut rng);
        assert_eq!(extended.len(), 48);
        assert_eq!(short.len(), 8, "warm start must not mutate the original");
        let mse = |g: &Gbt| xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mse(&extended) < mse(&short), "extra residual trees must tighten the fit");
    }

    #[test]
    fn incremental_tracks_scratch_fit_quality() {
        // Warm-start (8 scratch + 42 incremental) must land within a small
        // factor of a 50-tree scratch fit: the residual recurrence is the
        // same, only the RNG stream for the feature-subsampling differs.
        let (xs, ys) = friedman_like(400, 25);
        let mut rng = StdRng::seed_from_u64(26);
        let scratch = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let mut rng = StdRng::seed_from_u64(26);
        let short = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 8,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let warm = short.fit_incremental(&xs, &ys, 42, &mut rng);
        let mse = |g: &Gbt| xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mse(&warm) < 2.0 * mse(&scratch), "warm {} vs scratch {}", mse(&warm), mse(&scratch));
    }

    #[test]
    fn incremental_is_deterministic_and_thread_invariant() {
        let (xs, ys) = friedman_like(600, 27);
        let mut rng = StdRng::seed_from_u64(28);
        let base = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let grow_at = |threads: usize| {
            crate::parallel::set_default_threads(threads);
            let mut rng = StdRng::seed_from_u64(29);
            let grown = base.fit_incremental(&xs, &ys, 8, &mut rng);
            crate::parallel::set_default_threads(0);
            xs.iter().map(|x| grown.predict(x).to_bits()).collect::<Vec<u64>>()
        };
        let one = grow_at(1);
        assert_eq!(one, grow_at(4));
        assert_eq!(one, grow_at(13));
    }

    #[test]
    fn fit_accepts_shared_rows() {
        // The row type is generic over AsRef<[f64]> so cached Arc rows feed
        // training without a clone; values must match the Vec path exactly.
        use std::sync::Arc;
        let (xs, ys) = friedman_like(200, 30);
        let shared: Vec<Arc<[f64]>> = xs.iter().map(|x| Arc::from(x.as_slice())).collect();
        let mut rng = StdRng::seed_from_u64(31);
        let from_vecs = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let mut rng = StdRng::seed_from_u64(31);
        let from_arcs = Gbt::fit(&shared, &ys, GbtParams::default(), &mut rng);
        for x in &xs {
            assert_eq!(from_vecs.predict(x).to_bits(), from_arcs.predict(x).to_bits());
        }
        let batch = from_arcs.predict_batch(&shared);
        assert_eq!(batch.len(), xs.len());
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (xs, ys) = friedman_like(300, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let gbt = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let batch = gbt.predict_batch(&xs);
        assert_eq!(batch.len(), xs.len());
        for (x, b) in xs.iter().zip(&batch) {
            assert_eq!(gbt.predict(x).to_bits(), b.to_bits());
        }
    }
}
