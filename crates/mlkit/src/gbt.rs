//! Gradient-boosted regression trees.
//!
//! AutoTVM's surrogate cost model is an XGBoost ranker; this module is the
//! reproduction's equivalent: depth-limited regression trees fitted to
//! residuals with shrinkage and optional feature subsampling.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`Gbt`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Fraction of features considered per split (0 < f ≤ 1).
    pub feature_fraction: f64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            trees: 50,
            max_depth: 4,
            learning_rate: 0.15,
            min_samples_split: 4,
            feature_fraction: 0.9,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// A fitted gradient-boosted tree ensemble (squared loss).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbt {
    base: f64,
    trees: Vec<Node>,
    params: GbtParams,
}

impl Gbt {
    /// Fits the ensemble on `(xs, ys)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use glimpse_mlkit::gbt::{Gbt, GbtParams};
    /// use rand::SeedableRng;
    ///
    /// let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
    /// let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let model = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
    /// assert!((model.predict(&[25.0]) - 50.0).abs() < 8.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or ragged.
    #[must_use]
    pub fn fit<R: Rng + ?Sized>(xs: &[Vec<f64>], ys: &[f64], params: GbtParams, rng: &mut R) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len());
        let width = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == width), "ragged features");
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut trees = Vec::with_capacity(params.trees);
        let indices: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..params.trees {
            let tree = build_tree(xs, &residuals, &indices, params.max_depth, &params, rng);
            for (r, x) in residuals.iter_mut().zip(xs) {
                *r -= params.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        Self { base, trees, params }
    }

    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.params.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble has no trees.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

fn build_tree<R: Rng + ?Sized>(xs: &[Vec<f64>], targets: &[f64], indices: &[usize], depth: usize, params: &GbtParams, rng: &mut R) -> Node {
    let mean: f64 = indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len().max(1) as f64;
    if depth == 0 || indices.len() < params.min_samples_split {
        return Node::Leaf(mean);
    }
    let width = xs[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let parent_sse: f64 = indices.iter().map(|&i| (targets[i] - mean).powi(2)).sum();
    #[allow(clippy::needless_range_loop)] // `feature` also indexes inner rows of `xs`
    for feature in 0..width {
        if params.feature_fraction < 1.0 && rng.gen::<f64>() > params.feature_fraction {
            continue;
        }
        // Candidate thresholds: quantile-ish midpoints of sorted unique values.
        let mut values: Vec<f64> = indices.iter().map(|&i| xs[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let step = (values.len() / 16).max(1);
        for w in values.windows(2).step_by(step) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut ln, mut ls, mut rn, mut rs) = (0usize, 0.0f64, 0usize, 0.0f64);
            for &i in indices {
                if xs[i][feature] <= threshold {
                    ln += 1;
                    ls += targets[i];
                } else {
                    rn += 1;
                    rs += targets[i];
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let (lm, rm) = (ls / ln as f64, rs / rn as f64);
            let mut sse = 0.0;
            for &i in indices {
                let m = if xs[i][feature] <= threshold { lm } else { rm };
                sse += (targets[i] - m).powi(2);
            }
            let gain = parent_sse - sse;
            if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                best = Some((feature, threshold, gain));
            }
        }
    }
    match best {
        None => Node::Leaf(mean),
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices.iter().partition(|&&i| xs[i][feature] <= threshold);
            let left = build_tree(xs, targets, &left_idx, depth - 1, params, rng);
            let right = build_tree(xs, targets, &right_idx, depth - 1, params, rng);
            Node::Split {
                feature,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + x[1] * x[2] - 2.0 * (x[3] - 0.5).powi(2)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (xs, ys) = friedman_like(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let gbt = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        let mse: f64 = xs.iter().zip(&ys).map(|(x, y)| (gbt.predict(x) - y).powi(2)).sum::<f64>() / xs.len() as f64;
        let var = crate::stats::std_dev(&ys).powi(2);
        assert!(mse < 0.05 * var, "mse {mse} vs var {var}");
    }

    #[test]
    fn ranks_better_than_random() {
        // The cost-model role only needs ranking quality: check Spearman-ish
        // agreement on held-out data.
        let (xs, ys) = friedman_like(600, 3);
        let (train_x, test_x) = xs.split_at(400);
        let (train_y, test_y) = ys.split_at(400);
        let mut rng = StdRng::seed_from_u64(4);
        let gbt = Gbt::fit(train_x, train_y, GbtParams::default(), &mut rng);
        let preds: Vec<f64> = test_x.iter().map(|x| gbt.predict(x)).collect();
        // Count concordant pairs.
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..test_y.len() {
            for j in i + 1..test_y.len() {
                total += 1;
                if (test_y[i] - test_y[j]) * (preds[i] - preds[j]) > 0.0 {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total as f64;
        assert!(tau > 0.85, "concordance {tau}");
    }

    #[test]
    fn constant_targets_yield_constant_model() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 20];
        let mut rng = StdRng::seed_from_u64(5);
        let gbt = Gbt::fit(&xs, &ys, GbtParams::default(), &mut rng);
        assert!((gbt.predict(&[100.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn more_trees_do_not_hurt_training_fit() {
        let (xs, ys) = friedman_like(200, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let small = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 5,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let large = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 80,
                ..GbtParams::default()
            },
            &mut rng,
        );
        let mse = |g: &Gbt| xs.iter().zip(&ys).map(|(x, y)| (g.predict(x) - y).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mse(&large) <= mse(&small));
    }

    #[test]
    fn len_reports_tree_count() {
        let (xs, ys) = friedman_like(50, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let gbt = Gbt::fit(
            &xs,
            &ys,
            GbtParams {
                trees: 7,
                ..GbtParams::default()
            },
            &mut rng,
        );
        assert_eq!(gbt.len(), 7);
        assert!(!gbt.is_empty());
    }
}
