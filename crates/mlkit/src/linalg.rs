//! Dense row-major matrices with the factorizations the rest of the kit needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let data = rows.iter().flatten().copied().collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    #[must_use]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix, returning lower-triangular `L`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is
    /// non-positive (callers typically add jitter and retry).
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` via this matrix's Cholesky factor (call on `L`).
    /// Forward-substitutes `L y = b` then back-substitutes `Lᵀ x = y`.
    #[must_use]
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotation.
    /// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
    /// eigenvectors are the **rows** of the returned matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(self.rows, self.cols, "eigen decomposition needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _sweep in 0..100 {
            let mut off: f64 = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    if a[(p, q)].abs() < 1e-15 {
                        continue;
                    }
                    let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * a[(p, q)]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| a[(j, j)].total_cmp(&a[(i, i)]));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (row, &i) in order.iter().enumerate() {
            for k in 0..n {
                vectors[(row, k)] = v[(k, i)];
            }
        }
        (eigenvalues, vectors)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}x{} matrix", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Errors from matrix factorizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Cholesky hit a non-positive pivot.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0, 0.6], vec![2.0, 5.0, 1.0], vec![0.6, 1.0, 3.0]]);
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(a.cholesky(), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn cholesky_solve_inverts() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 5.0]]);
        let l = a.cholesky().unwrap();
        let x = l.cholesky_solve(&[8.0, 9.0]);
        let b = a.matvec(&x);
        assert!((b[0] - 8.0).abs() < 1e-10 && (b[1] - 9.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, _) = a.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrix() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0, 0.0], vec![1.0, 3.0, 0.5], vec![0.0, 0.5, 1.5]]);
        let (vals, vecs) = a.symmetric_eigen();
        // A = Vᵀ diag(vals) V with eigenvectors as rows of V.
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let back = vecs.transpose().matmul(&d).matmul(&vecs);
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_rows(&[vec![1.0, 0.2, 0.1], vec![0.2, 5.0, 0.0], vec![0.1, 0.0, 2.0]]);
        let (vals, _) = a.symmetric_eigen();
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    proptest! {
        #[test]
        fn matvec_is_linear(scale in -3.0f64..3.0) {
            let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0]]);
            let v = vec![2.0, 3.0];
            let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
            let lhs = a.matvec(&scaled);
            let rhs: Vec<f64> = a.matvec(&v).iter().map(|x| x * scale).collect();
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn gram_matrices_are_psd(rows in 2usize..5, cols in 2usize..5, seed in 0u64..100) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rows_v: Vec<Vec<f64>> = (0..rows).map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
            let x = Matrix::from_rows(&rows_v);
            let gram = x.matmul(&x.transpose());
            let (vals, _) = gram.symmetric_eigen();
            for v in vals {
                prop_assert!(v > -1e-8);
            }
        }
    }
}
