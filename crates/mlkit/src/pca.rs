//! Principal component analysis.
//!
//! §3.1: "We perform a dimensionality reduction of the original feature
//! vectors using Principal Component Analysis (PCA) to get the minimal
//! mathematical embedding vector that summarizes the hardware. We use PCA
//! over neural autoencoders as PCA provides an intuitive knob that allows us
//! to balance the size with the information loss." Fig. 8 sweeps that knob;
//! [`Pca::reconstruction_rmse`] is its y-axis.

use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fitted PCA model: mean vector plus the top-k principal axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal axes as rows, sorted by descending eigenvalue.
    components: Matrix,
    eigenvalues: Vec<f64>,
}

/// Error fitting a PCA model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcaError {
    reason: String,
}

impl fmt::Display for PcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCA fit failed: {}", self.reason)
    }
}

impl std::error::Error for PcaError {}

impl Pca {
    /// Fits a PCA with `k` components on `rows` (one sample per row).
    ///
    /// # Errors
    ///
    /// Returns [`PcaError`] if fewer than two samples are given, rows are
    /// ragged, or `k` is zero or exceeds the feature width.
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Result<Self, PcaError> {
        if rows.len() < 2 {
            return Err(PcaError {
                reason: "need at least two samples".into(),
            });
        }
        let d = rows[0].len();
        if rows.iter().any(|r| r.len() != d) {
            return Err(PcaError {
                reason: "ragged sample rows".into(),
            });
        }
        if k == 0 || k > d {
            return Err(PcaError {
                reason: format!("k = {k} out of range 1..={d}"),
            });
        }
        let n = rows.len() as f64;
        let mut mean = vec![0.0; d];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        // Covariance matrix (population).
        let mut cov = Matrix::zeros(d, d);
        for r in rows {
            let centered: Vec<f64> = r.iter().zip(&mean).map(|(v, m)| v - m).collect();
            for i in 0..d {
                for j in i..d {
                    let add = centered[i] * centered[j] / n;
                    cov[(i, j)] += add;
                    if i != j {
                        cov[(j, i)] += add;
                    }
                }
            }
        }
        let (eigenvalues, vectors) = cov.symmetric_eigen();
        let mut components = Matrix::zeros(k, d);
        for i in 0..k {
            components.row_mut(i).copy_from_slice(vectors.row(i));
        }
        Ok(Self {
            mean,
            components,
            eigenvalues: eigenvalues.into_iter().take(k).collect(),
        })
    }

    /// Number of components `k`.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components.rows()
    }

    /// Input feature width `d`.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.mean.len()
    }

    /// Eigenvalues of the kept components, descending.
    #[must_use]
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Projects a sample onto the principal axes (length = `components()`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_width()`.
    #[must_use]
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_width(), "sample width mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        self.components.matvec(&centered)
    }

    /// Reconstructs a sample from its projection.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != components()`.
    #[must_use]
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.components(), "projection width mismatch");
        let mut out = self.mean.clone();
        for (i, zi) in z.iter().enumerate() {
            for (o, c) in out.iter_mut().zip(self.components.row(i)) {
                *o += zi * c;
            }
        }
        out
    }

    /// Root-mean-squared reconstruction error over a sample set — the
    /// *information loss* axis of Fig. 8.
    #[must_use]
    pub fn reconstruction_rmse(&self, rows: &[Vec<f64>]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for r in rows {
            let back = self.inverse_transform(&self.transform(r));
            for (a, b) in r.iter().zip(&back) {
                sum += (a - b).powi(2);
                count += 1;
            }
        }
        (sum / count.max(1) as f64).sqrt()
    }

    /// Fraction of total variance captured by the kept components, assuming
    /// the model was fitted with all eigenvalues available up to `k`.
    #[must_use]
    pub fn explained_variance_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 1.0;
        }
        self.eigenvalues.iter().sum::<f64>() / total_variance
    }
}

/// Total variance (trace of the covariance) of a sample set; pairs with
/// [`Pca::explained_variance_ratio`].
#[must_use]
pub fn total_variance(rows: &[Vec<f64>]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let d = rows[0].len();
    let n = rows.len() as f64;
    let mut mean = vec![0.0; d];
    for r in rows {
        for (m, v) in mean.iter_mut().zip(r) {
            *m += v / n;
        }
    }
    rows.iter()
        .map(|r| r.iter().zip(&mean).map(|(v, m)| (v - m).powi(2)).sum::<f64>())
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_plane(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // Data living near a 2-D plane inside 5-D space.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a = rng.gen_range(-3.0..3.0);
                let b = rng.gen_range(-1.0..1.0);
                let mut eps = || rng.gen_range(-0.01..0.01);
                vec![a + eps(), b + eps(), a - b + eps(), 2.0 * a + eps(), 0.5 * b + eps()]
            })
            .collect()
    }

    #[test]
    fn two_components_capture_planar_data() {
        let data = noisy_plane(200, 1);
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.reconstruction_rmse(&data) < 0.05);
    }

    #[test]
    fn rmse_decreases_with_more_components() {
        let data = noisy_plane(100, 2);
        let mut last = f64::INFINITY;
        for k in 1..=5 {
            let pca = Pca::fit(&data, k).unwrap();
            let rmse = pca.reconstruction_rmse(&data);
            assert!(rmse <= last + 1e-9, "k={k}: {rmse} > {last}");
            last = rmse;
        }
    }

    #[test]
    fn full_rank_pca_is_lossless() {
        let data = noisy_plane(50, 3);
        let pca = Pca::fit(&data, 5).unwrap();
        assert!(pca.reconstruction_rmse(&data) < 1e-8);
    }

    #[test]
    fn transform_width_is_k() {
        let data = noisy_plane(50, 4);
        let pca = Pca::fit(&data, 3).unwrap();
        assert_eq!(pca.transform(&data[0]).len(), 3);
        assert_eq!(pca.inverse_transform(&pca.transform(&data[0])).len(), 5);
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        assert!(Pca::fit(&[vec![1.0, 2.0]], 1).is_err());
        assert!(Pca::fit(&[vec![1.0], vec![2.0, 3.0]], 1).is_err());
        assert!(Pca::fit(&noisy_plane(10, 5), 0).is_err());
        assert!(Pca::fit(&noisy_plane(10, 5), 6).is_err());
    }

    #[test]
    fn explained_variance_ratio_increases_with_k() {
        let data = noisy_plane(100, 6);
        let tv = total_variance(&data);
        let mut last = 0.0;
        for k in 1..=5 {
            let pca = Pca::fit(&data, k).unwrap();
            let r = pca.explained_variance_ratio(tv);
            assert!(r >= last - 1e-12);
            assert!(r <= 1.0 + 1e-9);
            last = r;
        }
        assert!(last > 0.999);
    }
}
