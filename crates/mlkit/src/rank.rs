//! Rank-correlation metrics for surrogate-model diagnostics.
//!
//! Cost models in neural compilers are trained as *rankers* (AutoTVM uses a
//! rank objective): what matters is ordering candidate configurations, not
//! absolute latency. These metrics quantify that ordering quality and are
//! used by the test suite and the diagnostics in `glimpse-tuners`.

/// Kendall's τ-a rank correlation between two equally long slices.
///
/// Returns a value in `[-1, 1]`; 1 means identical ordering. Ties count as
/// discordant-neutral (numerator contribution 0).
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two elements.
#[must_use]
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must align");
    assert!(a.len() >= 2, "need at least two observations");
    let n = a.len();
    let mut numerator = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let x = (a[i] - a[j]).signum();
            let y = (b[i] - b[j]).signum();
            numerator += (x * y) as i64;
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    numerator as f64 / pairs
}

/// Spearman's ρ: Pearson correlation of the rank transforms.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two elements.
#[must_use]
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must align");
    assert!(a.len() >= 2, "need at least two observations");
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Fraction of the true top-`k` set recovered by the predicted top-`k`
/// (recall@k) — the metric that matters for batch selection: the tuner only
/// ever measures its top-k predictions.
///
/// # Panics
///
/// Panics if `k == 0` or `k > len`.
#[must_use]
pub fn top_k_recall(truth: &[f64], predicted: &[f64], k: usize) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "slices must align");
    assert!(k > 0 && k <= truth.len(), "k out of range");
    let top = |v: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[j].total_cmp(&v[i]));
        idx.truncate(k);
        idx
    };
    let true_top = top(truth);
    let pred_top = top(predicted);
    let hits = pred_top.iter().filter(|i| true_top.contains(i)).count();
    hits as f64 / k as f64
}

/// Average ranks with ties sharing their mean rank.
fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let shared = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = shared;
        }
        i = j + 1;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_orderings_score_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orderings_score_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &b) + 1.0).abs() < 1e-12);
        assert!((spearman_rho(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_mean_rank() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn top_k_recall_counts_overlap() {
        let truth = [9.0, 8.0, 1.0, 2.0];
        let predicted = [8.5, 1.5, 9.5, 0.5]; // predicted top-2 = {2, 0}, true = {0, 1}
        assert!((top_k_recall(&truth, &predicted, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_predictions_have_zero_spearman() {
        let truth = [1.0, 2.0, 3.0];
        let predicted = [5.0, 5.0, 5.0];
        assert_eq!(spearman_rho(&truth, &predicted), 0.0);
    }

    proptest! {
        #[test]
        fn tau_is_symmetric(v in proptest::collection::vec(-10.0f64..10.0, 3..20)) {
            let shifted: Vec<f64> = v.iter().map(|x| x * 2.0 + 1.0).collect();
            let t1 = kendall_tau(&v, &shifted);
            let t2 = kendall_tau(&shifted, &v);
            prop_assert!((t1 - t2).abs() < 1e-12);
            prop_assert!((t1 - 1.0).abs() < 1e-12); // monotone transform preserves order
        }

        #[test]
        fn metrics_are_bounded(a in proptest::collection::vec(-5.0f64..5.0, 4..16), seed in 0u64..50) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let b: Vec<f64> = (0..a.len()).map(|_| rng.gen_range(-5.0..5.0)).collect();
            prop_assert!(kendall_tau(&a, &b).abs() <= 1.0 + 1e-12);
            prop_assert!(spearman_rho(&a, &b).abs() <= 1.0 + 1e-12);
        }
    }
}
