//! K-means clustering (k-means++ seeding, Lloyd iterations).
//!
//! Chameleon's *adaptive sampling* clusters the explorer's proposed
//! configurations and measures only the cluster centroids (§3.3 discusses
//! why that remains hardware-agnostic). The paper quotes its complexity as
//! `O(n·k·I)` — this implementation is exactly that loop.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KmeansResult {
    /// Cluster centroids (k rows).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

/// Runs k-means with k-means++ initialization.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let result = glimpse_mlkit::kmeans::kmeans(&points, 2, 20, &mut rng);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
///
/// `k` is clamped to the number of points. Converges when assignments stop
/// changing or after `max_iters`.
///
/// Rows may be anything dereferencing to `[f64]` (`Vec<f64>`, `Arc<[f64]>`,
/// …), so cached feature rows cluster without copying the matrix.
///
/// # Panics
///
/// Panics if `points` is empty, `k == 0`, or rows are ragged.
#[must_use]
pub fn kmeans<X: AsRef<[f64]>, R: Rng + ?Sized>(points: &[X], k: usize, max_iters: usize, rng: &mut R) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "k must be positive");
    let d = points[0].as_ref().len();
    assert!(points.iter().all(|p| p.as_ref().len() == d), "ragged points");
    let k = k.min(points.len());

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].as_ref().to_vec());
    while centroids.len() < k {
        let d2: Vec<f64> = points.iter().map(|p| nearest_distance_sq(p.as_ref(), &centroids)).collect();
        let idx = crate::stats::sample_weighted(&d2, rng);
        centroids.push(points[idx].as_ref().to_vec());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for (a, p) in assignments.iter_mut().zip(points) {
            let best = nearest_index(p.as_ref(), &centroids);
            if best != *a {
                *a = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (a, p) in assignments.iter().zip(points) {
            counts[*a] += 1;
            for (s, v) in sums[*a].iter_mut().zip(p.as_ref()) {
                *s += v;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| distance_sq(p.as_ref(), &centroids[a]))
        .sum();
    KmeansResult {
        centroids,
        assignments,
        iterations,
        inertia,
    }
}

/// Index of the input point nearest to each centroid — Chameleon snaps
/// centroids back to real configurations before measuring.
#[must_use]
pub fn snap_to_points<X: AsRef<[f64]>>(centroids: &[Vec<f64>], points: &[X]) -> Vec<usize> {
    centroids.iter().map(|c| nearest_index(c, points)).collect()
}

fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest_index<X: AsRef<[f64]>>(p: &[f64], set: &[X]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in set.iter().enumerate() {
        let d = distance_sq(p, c.as_ref());
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn nearest_distance_sq(p: &[f64], set: &[Vec<f64>]) -> f64 {
    set.iter().map(|c| distance_sq(p, c)).fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs(seed: u64) -> Vec<Vec<f64>> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        for center in [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]] {
            for _ in 0..30 {
                points.push(vec![center[0] + rng.gen_range(-0.5..0.5), center[1] + rng.gen_range(-0.5..0.5)]);
            }
        }
        points
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let points = three_blobs(1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = kmeans(&points, 3, 50, &mut rng);
        // Each blob of 30 should map to a single cluster.
        for blob in 0..3 {
            let firsts = &result.assignments[blob * 30..(blob + 1) * 30];
            assert!(firsts.iter().all(|a| a == &firsts[0]), "blob {blob} split");
        }
        assert!(result.inertia < 100.0);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let points = vec![vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let result = kmeans(&points, 10, 10, &mut rng);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn snap_returns_real_point_indices() {
        let points = three_blobs(4);
        let mut rng = StdRng::seed_from_u64(5);
        let result = kmeans(&points, 3, 50, &mut rng);
        let snapped = snap_to_points(&result.centroids, &points);
        for idx in snapped {
            assert!(idx < points.len());
        }
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![vec![0.0], vec![2.0], vec![4.0]];
        let mut rng = StdRng::seed_from_u64(6);
        let result = kmeans(&points, 1, 20, &mut rng);
        assert!((result.centroids[0][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_rows_match_owned_rows_bitwise() {
        use std::sync::Arc;
        let points = three_blobs(8);
        let shared: Vec<Arc<[f64]>> = points.iter().map(|p| Arc::from(p.as_slice())).collect();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = rng_a.clone();
        let owned = kmeans(&points, 3, 50, &mut rng_a);
        let borrowed = kmeans(&shared, 3, 50, &mut rng_b);
        assert_eq!(owned, borrowed);
        assert_eq!(
            snap_to_points(&owned.centroids, &points),
            snap_to_points(&borrowed.centroids, &shared)
        );
    }

    #[test]
    fn inertia_nonincreasing_in_k() {
        let points = three_blobs(7);
        let mut inertias = Vec::new();
        for k in 1..=4 {
            let mut rng = StdRng::seed_from_u64(100);
            inertias.push(kmeans(&points, k, 100, &mut rng).inertia);
        }
        for w in inertias.windows(2) {
            // Allow small tolerance: k-means++ is randomized.
            assert!(w[1] <= w[0] * 1.05, "{inertias:?}");
        }
    }
}
