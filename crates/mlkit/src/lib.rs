//! From-scratch ML primitives for the Glimpse reproduction.
//!
//! The paper's stack needs a small but complete machine-learning toolbox:
//!
//! * [`pca`] — principal component analysis for the *Blueprint* embedding
//!   (§3.1 uses PCA over neural autoencoders for its intuitive
//!   size/information-loss knob, Fig. 8).
//! * [`mlp`] — light-weight multi-layer perceptrons with Adam, used for the
//!   prior-distribution generator `H` and the neural acquisition function.
//! * [`gp`] — Gaussian-process regression for the DGP baseline (Sun et al.).
//! * [`gbt`] — gradient-boosted regression trees, the AutoTVM-style
//!   surrogate cost model.
//! * [`kmeans`] — clustering for Chameleon's adaptive sampling.
//! * [`sa`] — batched parallel simulated-annealing chains, the Markov-chain
//!   search engine of AutoTVM/Chameleon (§4.2).
//! * [`parallel`] — deterministic chunked fan-out over scoped worker
//!   threads; the work-distribution layer under [`sa`], [`gbt`], and
//!   [`gp`]'s hot paths (`--threads` / `GLIMPSE_THREADS` control it).
//! * [`linalg`], [`stats`] — dense matrices, eigen decomposition, and the
//!   summary statistics (geomean, quantiles, softmax) the harness reports.
//!
//! Everything is implemented on `f64` slices with seeded [`rand`] RNGs so
//! that every experiment in the reproduction is deterministic.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod gbt;
pub mod gp;
pub mod kmeans;
pub mod linalg;
pub mod mlp;
pub mod parallel;
pub mod pca;
pub mod rank;
pub mod sa;
pub mod stats;

pub use linalg::Matrix;
pub use mlp::Mlp;
pub use pca::Pca;
