//! Deterministic work distribution for the search hot paths.
//!
//! Every compile-time loop the paper counts (SA chain updates, surrogate
//! fits, kernel-matrix assembly, candidate scoring) is embarrassingly
//! parallel *per item*, so this module provides exactly one abstraction:
//! chunked fan-out of an indexed map over scoped worker threads, with
//! results always returned in input order.
//!
//! **Determinism contract:** callers must make each item's computation a
//! pure function of `(index, item)` — per-item randomness is derived by
//! seed-splitting (see [`crate::stats::child_rng`]), never by sharing an
//! RNG across items. Under that discipline the output is bit-identical for
//! every worker count, so `GLIMPSE_THREADS=1` and `GLIMPSE_THREADS=64`
//! replay the same tuning trajectory.
//!
//! Worker-count resolution order (first set wins):
//!
//! 1. an explicit [`Threads::fixed`] at the call site,
//! 2. the process-wide override installed by [`set_default_threads`]
//!    (plumbed from the CLI `--threads` flag),
//! 3. the `GLIMPSE_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! Requests from layers 2 and 3 are clamped to the machine's available
//! parallelism: asking for 8 workers on a 1-core box would only add
//! scheduling overhead to a compute-bound fan-out (the throughput harness
//! recorded multi-thread *slower* than single under exactly that
//! oversubscription). Only [`Threads::fixed`] bypasses the clamp — it is
//! the call site saying it knows better (tests pinning determinism at
//! thread counts above the core count rely on this).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override (0 = unset).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted when no explicit count is set.
pub const THREADS_ENV: &str = "GLIMPSE_THREADS";

/// Installs a process-wide worker-count override (0 restores auto).
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::SeqCst);
}

/// The current process-wide override (0 = unset).
#[must_use]
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::SeqCst)
}

/// Parses a `GLIMPSE_THREADS`-style value; `None` for unset/invalid/zero.
#[must_use]
pub fn parse_threads(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

/// A worker-count request: either auto-resolved or pinned at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Resolve from override, environment, then available parallelism.
    pub const AUTO: Threads = Threads(0);

    /// Exactly `n` workers (`0` behaves like [`Threads::AUTO`]).
    #[must_use]
    pub const fn fixed(n: usize) -> Self {
        Self(n)
    }

    /// The concrete worker count (always ≥ 1).
    ///
    /// The process-wide override and `GLIMPSE_THREADS` are clamped to
    /// [`available_workers`]; an explicit [`Threads::fixed`] is not.
    #[must_use]
    pub fn resolve(self) -> usize {
        if self.0 > 0 {
            return self.0;
        }
        let cap = available_workers();
        let global = default_threads();
        if global > 0 {
            return global.min(cap);
        }
        if let Ok(value) = std::env::var(THREADS_ENV) {
            if let Some(n) = parse_threads(&value) {
                return n.min(cap);
            }
        }
        cap
    }
}

/// The machine's available parallelism (≥ 1): the cap applied to every
/// auto-resolved worker-count request, and what the bench harness records
/// as the *effective* count next to the *requested* one.
#[must_use]
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl Default for Threads {
    fn default() -> Self {
        Self::AUTO
    }
}

/// Maps `f(index, &item)` over `items` on up to `threads` scoped workers,
/// returning results in input order.
///
/// Items are dealt out as contiguous chunks, one per worker; with one
/// worker (or ≤ 1 item) the map runs inline with zero thread overhead.
/// A panic in any worker is resumed on the caller thread.
///
/// # Examples
///
/// ```
/// use glimpse_mlkit::parallel::{parallel_map, Threads};
///
/// let squares = parallel_map(Threads::fixed(4), &[1i64, 2, 3, 4, 5], |_, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
// lint:boundary(PANICS) the scope join proves every worker wrote its slots; an empty slot after join is unreachable
pub fn parallel_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    let f = &f;
    let result = crossbeam::thread::scope(|s| {
        for (w, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            s.spawn(move |_| {
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    let i = start + offset;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
    out.into_iter().map(|r| r.expect("worker filled its slot")).collect()
}

/// Cancellable variant of [`parallel_map`]: `None` if `cancel` trips
/// before the map completes, `Some(results)` otherwise — never a partial
/// result set.
///
/// Workers poll the token between items and stop early once it trips; the
/// whole batch is then discarded. All-or-nothing is what keeps the
/// determinism contract intact under cancellation: a consumer either sees
/// the exact `Vec` the uninterrupted run would produce, or nothing — so a
/// cancelled search replays as a clean prefix of the uninterrupted one.
/// (Cancellation is monotonic, so the final check subsumes any empty slot
/// a worker left behind.)
///
/// # Examples
///
/// ```
/// use glimpse_mlkit::parallel::{parallel_map_cancellable, Threads};
/// use glimpse_supervise::{CancelReason, CancelToken};
///
/// let token = CancelToken::new();
/// let done = parallel_map_cancellable(Threads::fixed(2), &token, &[1i64, 2, 3], |_, x| x * x);
/// assert_eq!(done, Some(vec![1, 4, 9]));
///
/// token.cancel(CancelReason::Interrupted);
/// let cut = parallel_map_cancellable(Threads::fixed(2), &token, &[1i64, 2, 3], |_, x| x * x);
/// assert_eq!(cut, None);
/// ```
// lint:boundary(PANICS) the scope join proves every surviving slot was written; cancellation discards the batch before the unwrap
pub fn parallel_map_cancellable<T, R, F>(threads: Threads, cancel: &glimpse_supervise::CancelToken, items: &[T], f: F) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, t) in items.iter().enumerate() {
            if cancel.is_cancelled() {
                return None;
            }
            out.push(f(i, t));
        }
        return (!cancel.is_cancelled()).then_some(out);
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    let f = &f;
    let result = crossbeam::thread::scope(|s| {
        for (w, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            s.spawn(move |_| {
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let i = start + offset;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
    if cancel.is_cancelled() {
        return None;
    }
    Some(out.into_iter().map(|r| r.expect("worker filled its slot")).collect())
}

/// Index-only variant of [`parallel_map`]: maps `f(i)` over `0..n`.
pub fn parallel_map_range<R, F>(threads: Threads, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    parallel_map(threads, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(Threads::fixed(8), &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_worker_counts() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| {
            use rand::Rng;
            let mut rng = crate::stats::child_rng(*x, i as u64);
            rng.gen::<u64>()
        };
        let one = parallel_map(Threads::fixed(1), &items, f);
        for workers in [2, 3, 8, 16] {
            assert_eq!(parallel_map(Threads::fixed(workers), &items, f), one, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(Threads::fixed(4), &empty, |_, x| *x).is_empty());
        assert_eq!(parallel_map(Threads::fixed(4), &[7], |_, x| *x), vec![7]);
    }

    #[test]
    fn range_variant_matches_slice_variant() {
        let out = parallel_map_range(Threads::fixed(3), 10, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = parallel_map(Threads::fixed(64), &[1, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(Threads::fixed(2), &[0, 1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn cancellable_map_matches_plain_map_when_untripped() {
        use glimpse_supervise::CancelToken;
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| {
            use rand::Rng;
            let mut rng = crate::stats::child_rng(*x, i as u64);
            rng.gen::<u64>()
        };
        let plain = parallel_map(Threads::fixed(4), &items, f);
        let token = CancelToken::new();
        for workers in [1usize, 8] {
            assert_eq!(
                parallel_map_cancellable(Threads::fixed(workers), &token, &items, f),
                Some(plain.clone()),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn tripped_token_yields_none_not_partial_results() {
        use glimpse_supervise::{CancelReason, CancelToken};
        let pre = CancelToken::new();
        pre.cancel(CancelReason::DeadlineExceeded);
        let items: Vec<usize> = (0..64).collect();
        assert_eq!(parallel_map_cancellable(Threads::fixed(4), &pre, &items, |_, &x| x), None);
        // Trip mid-flight from inside the map: still all-or-nothing.
        for workers in [1usize, 8] {
            let mid = CancelToken::new();
            let out = parallel_map_cancellable(Threads::fixed(workers), &mid, &items, |i, &x| {
                if i == 9 {
                    mid.cancel(CancelReason::Interrupted);
                }
                x
            });
            assert_eq!(out, None, "workers={workers}");
        }
    }

    #[test]
    fn parse_threads_rejects_junk() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn fixed_wins_over_global_override() {
        assert_eq!(Threads::fixed(5).resolve(), 5);
        assert!(Threads::AUTO.resolve() >= 1);
    }

    #[test]
    fn auto_resolution_never_oversubscribes() {
        // Whatever the global override says (other tests mutate it
        // concurrently), an AUTO resolution must never exceed the machine's
        // available parallelism — only Threads::fixed may oversubscribe.
        let cap = available_workers();
        assert!(cap >= 1);
        assert!(Threads::AUTO.resolve() <= cap);
        assert_eq!(Threads::fixed(cap + 7).resolve(), cap + 7, "fixed bypasses the clamp");
    }

    #[test]
    fn global_override_is_clamped_to_available_parallelism() {
        // Serialize against other tests that flip the global override by
        // checking the invariant rather than an exact count: a huge request
        // resolves to at most the cap.
        let before = default_threads();
        set_default_threads(1_000_000);
        let resolved = Threads::AUTO.resolve();
        set_default_threads(before);
        assert!(resolved <= 1_000_000);
        assert!(
            resolved <= available_workers() || resolved != 1_000_000,
            "a requested 1,000,000 workers must be clamped (resolved {resolved})"
        );
    }
}
