//! Light-weight multi-layer perceptrons with Adam.
//!
//! §3.1 implements the prior generator `H` and the neural acquisition
//! function as "light-weight" networks (small MLPs). This module provides
//! exactly that: dense layers, ReLU/tanh activations, manual backprop, and
//! an Adam optimizer. Callers can train against mean-squared error directly
//! ([`Mlp::train_mse`]) or supply custom output gradients
//! ([`Mlp::train_with_output_grads`]) for softmax/cross-entropy heads and
//! policy-gradient objectives.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    fn derivative(self, activated: f64) -> f64 {
        match self {
            Activation::Relu => {
                if activated > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - activated * activated,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    rows: usize, // outputs
    cols: usize, // inputs
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam state.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        // He-style initialization.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs).map(|_| rng.gen_range(-scale..scale)).collect();
        Self {
            rows: outputs,
            cols: inputs,
            w,
            b: vec![0.0; outputs],
            mw: vec![0.0; inputs * outputs],
            vw: vec![0.0; inputs * outputs],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.rows)
            .map(|o| {
                let row = &self.w[o * self.cols..(o + 1) * self.cols];
                self.b[o] + row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>()
            })
            .collect()
    }
}

/// A multi-layer perceptron with identity output head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
    step: u64,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[16, 32, 32, 4]`.
    /// Hidden layers use `activation`; the output layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(widths: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "an MLP needs input and output widths");
        assert!(widths.iter().all(|w| *w > 0), "layer widths must be positive");
        let layers = widths.windows(2).map(|w| Dense::new(w[0], w[1], rng)).collect();
        Self {
            layers,
            activation,
            step: 0,
        }
    }

    /// Input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.layers[0].cols
    }

    /// Output width.
    // lint:boundary(PANICS) every constructor installs at least one layer, so `last()` cannot be empty
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("at least one layer").rows
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_width()`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_width(), "input width mismatch");
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                for v in &mut h {
                    *v = self.activation.apply(*v);
                }
            }
        }
        h
    }

    /// One Adam step on mean-squared error over a batch. Returns the batch
    /// MSE before the update.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches or an empty batch.
    pub fn train_mse(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], lr: f64) -> f64 {
        assert_eq!(xs.len(), ys.len(), "batch inputs/targets must align");
        let mut loss = 0.0;
        let outputs: Vec<Vec<f64>> = xs.iter().map(|x| self.predict(x)).collect();
        let grads: Vec<Vec<f64>> = outputs
            .iter()
            .zip(ys)
            .map(|(o, y)| {
                assert_eq!(o.len(), y.len(), "target width mismatch");
                o.iter()
                    .zip(y)
                    .map(|(oi, yi)| {
                        let d = oi - yi;
                        loss += d * d;
                        2.0 * d / (xs.len() * o.len()) as f64
                    })
                    .collect()
            })
            .collect();
        self.train_with_output_grads(xs, &grads, lr);
        loss / (xs.len().max(1) * self.output_width()) as f64
    }

    /// One Adam step given per-sample gradients of the loss w.r.t. the
    /// network **output** (linear head). This is the hook for softmax
    /// cross-entropy heads (`∂L/∂logits = p − onehot`) and policy-gradient
    /// objectives.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches or an empty batch.
    pub fn train_with_output_grads(&mut self, xs: &[Vec<f64>], output_grads: &[Vec<f64>], lr: f64) {
        assert!(!xs.is_empty(), "empty training batch");
        assert_eq!(xs.len(), output_grads.len());
        let n_layers = self.layers.len();
        // Accumulated gradients.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        for (x, out_grad) in xs.iter().zip(output_grads) {
            assert_eq!(out_grad.len(), self.output_width(), "output grad width mismatch");
            // Forward, caching activations per layer: layer `i` consumes
            // activation `i` and pushes activation `i + 1`.
            let mut acts: Vec<Vec<f64>> = vec![x.clone()];
            for (i, layer) in self.layers.iter().enumerate() {
                let mut h = layer.forward(&acts[i]);
                if i != n_layers - 1 {
                    for v in &mut h {
                        *v = self.activation.apply(*v);
                    }
                }
                acts.push(h);
            }
            // Backward.
            let mut delta = out_grad.clone();
            for i in (0..n_layers).rev() {
                let input = &acts[i];
                for (o, d) in delta.iter().enumerate() {
                    gb[i][o] += d;
                    let row = &mut gw[i][o * self.layers[i].cols..(o + 1) * self.layers[i].cols];
                    for (g, xi) in row.iter_mut().zip(input) {
                        *g += d * xi;
                    }
                }
                if i > 0 {
                    let layer = &self.layers[i];
                    let mut prev = vec![0.0; layer.cols];
                    for (o, d) in delta.iter().enumerate() {
                        let row = &layer.w[o * layer.cols..(o + 1) * layer.cols];
                        for (p, w) in prev.iter_mut().zip(row) {
                            *p += d * w;
                        }
                    }
                    // Activation derivative uses the *activated* value.
                    for (p, a) in prev.iter_mut().zip(&acts[i]) {
                        *p *= self.activation.derivative(*a);
                    }
                    delta = prev;
                }
            }
        }

        // Adam update.
        self.step += 1;
        let t = self.step as f64;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for (j, g) in gw[i].iter().enumerate() {
                layer.mw[j] = b1 * layer.mw[j] + (1.0 - b1) * g;
                layer.vw[j] = b2 * layer.vw[j] + (1.0 - b2) * g * g;
                layer.w[j] -= lr * (layer.mw[j] / bias1) / ((layer.vw[j] / bias2).sqrt() + eps);
            }
            for (j, g) in gb[i].iter().enumerate() {
                layer.mb[j] = b1 * layer.mb[j] + (1.0 - b1) * g;
                layer.vb[j] = b2 * layer.vb[j] + (1.0 - b2) * g * g;
                layer.b[j] -= lr * (layer.mb[j] / bias1) / ((layer.vb[j] / bias2).sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.input_width(), 4);
        assert_eq!(mlp.output_width(), 3);
        assert_eq!(mlp.parameter_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(mlp.predict(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng);
        use rand::Rng;
        let xs: Vec<Vec<f64>> = (0..64).map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![0.7 * x[0] - 0.3 * x[1] + 0.1]).collect();
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            last = mlp.train_mse(&xs, &ys, 0.01);
        }
        assert!(last < 1e-3, "final MSE {last}");
    }

    #[test]
    fn learns_xor_with_relu() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[2, 16, 16, 1], Activation::Relu, &mut rng);
        let xs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]];
        for _ in 0..2000 {
            mlp.train_mse(&xs, &ys, 0.01);
        }
        for (x, y) in xs.iter().zip(&ys) {
            let p = mlp.predict(x)[0];
            assert!((p - y[0]).abs() < 0.2, "xor({x:?}) = {p}");
        }
    }

    #[test]
    fn softmax_head_gradient_decreases_cross_entropy() {
        use crate::stats::softmax;
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[3, 16, 4], Activation::Relu, &mut rng);
        let xs = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let targets = [0usize, 1, 2];
        let ce = |mlp: &Mlp| -> f64 { xs.iter().zip(targets).map(|(x, t)| -softmax(&mlp.predict(x))[t].ln()).sum::<f64>() };
        let before = ce(&mlp);
        for _ in 0..200 {
            let grads: Vec<Vec<f64>> = xs
                .iter()
                .zip(targets)
                .map(|(x, t)| {
                    let mut p = softmax(&mlp.predict(x));
                    p[t] -= 1.0;
                    p
                })
                .collect();
            mlp.train_with_output_grads(&xs, &grads, 0.01);
        }
        let after = ce(&mlp);
        assert!(after < before * 0.2, "CE {before} -> {after}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(9);
            Mlp::new(&[2, 4, 1], Activation::Relu, &mut rng).predict(&[0.5, -0.5])
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn predict_checks_width() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&[3, 4, 1], Activation::Relu, &mut rng);
        let _ = mlp.predict(&[1.0]);
    }
}
