//! Batched parallel simulated annealing.
//!
//! AutoTVM and Chameleon "formulate a cost minimization with a batch of
//! Markov chains" (§4.2) driven by a surrogate cost model; the number of
//! chain update steps is the key compile-time factor Fig. 6 counts. This
//! module runs that batch generically: callers provide the energy (higher =
//! better here, matching GFLOPS) and the neighbor move.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Annealing schedule and batch parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaParams {
    /// Number of parallel Markov chains.
    pub chains: usize,
    /// Maximum steps per chain.
    pub max_steps: usize,
    /// Starting temperature.
    pub t_start: f64,
    /// Final temperature (geometric schedule).
    pub t_end: f64,
    /// Stop a chain after this many consecutive non-improving steps
    /// (0 disables early stopping).
    pub patience: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        Self {
            chains: 128,
            max_steps: 500,
            t_start: 1.0,
            t_end: 0.02,
            patience: 0,
        }
    }
}

/// Outcome of one batched annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome<S> {
    /// Best state found by each chain, with its score.
    pub chain_bests: Vec<(S, f64)>,
    /// Total chain-update steps executed across the batch (Fig. 6's metric).
    pub steps_executed: usize,
}

impl<S: Clone> SaOutcome<S> {
    /// The `k` best distinct-scoring states across all chains, best first.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(S, f64)> {
        let mut sorted = self.chain_bests.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        sorted.truncate(k);
        sorted
    }
}

/// Runs `params.chains` annealing chains maximizing `score`.
///
/// # Examples
///
/// ```
/// use glimpse_mlkit::sa::{anneal, SaParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let out = anneal(
///     &[0i64],
///     |x| -((*x - 5) as f64).abs(),
///     |x, r| x + if rand::Rng::gen::<bool>(r) { 1 } else { -1 },
///     SaParams { chains: 4, max_steps: 200, ..SaParams::default() },
///     &mut rng,
/// );
/// let (best, _) = &out.top_k(1)[0];
/// assert!((best - 5).abs() <= 1);
/// ```
///
/// Each chain starts from the corresponding entry of `initial` (recycled if
/// fewer starts than chains are given). Acceptance follows Metropolis on the
/// score difference with a geometric temperature schedule.
///
/// # Panics
///
/// Panics if `initial` is empty or temperatures are non-positive.
pub fn anneal<S, R, F, N>(initial: &[S], mut score: F, mut neighbor: N, params: SaParams, rng: &mut R) -> SaOutcome<S>
where
    S: Clone,
    R: Rng + ?Sized,
    F: FnMut(&S) -> f64,
    N: FnMut(&S, &mut R) -> S,
{
    assert!(!initial.is_empty(), "need at least one starting state");
    assert!(params.t_start > 0.0 && params.t_end > 0.0, "temperatures must be positive");
    let chains = params.chains.max(1);
    let cooling = if params.max_steps > 1 {
        (params.t_end / params.t_start).powf(1.0 / (params.max_steps - 1) as f64)
    } else {
        1.0
    };

    let mut steps_executed = 0usize;
    let mut chain_bests: Vec<(S, f64)> = Vec::with_capacity(chains);
    for c in 0..chains {
        let mut current = initial[c % initial.len()].clone();
        let mut current_score = score(&current);
        let mut best = current.clone();
        let mut best_score = current_score;
        let mut t = params.t_start;
        let mut stale = 0usize;
        for _ in 0..params.max_steps {
            steps_executed += 1;
            let candidate = neighbor(&current, rng);
            let candidate_score = score(&candidate);
            let accept = candidate_score >= current_score || {
                let p = ((candidate_score - current_score) / t).exp();
                rng.gen::<f64>() < p
            };
            if accept {
                current = candidate;
                current_score = candidate_score;
            }
            if current_score > best_score {
                best = current.clone();
                best_score = current_score;
                stale = 0;
            } else {
                stale += 1;
                if params.patience > 0 && stale >= params.patience {
                    break;
                }
            }
            t *= cooling;
        }
        chain_bests.push((best, best_score));
    }
    SaOutcome {
        chain_bests,
        steps_executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 1-D multi-modal score with global max at x = 37 on 0..=100.
    fn score(x: &i64) -> f64 {
        let xf = *x as f64;
        -((xf - 37.0) / 10.0).powi(2) + 0.5 * (xf / 7.0).sin()
    }

    fn neighbor(x: &i64, rng: &mut StdRng) -> i64 {
        use rand::Rng;
        (x + rng.gen_range(-5i64..=5)).clamp(0, 100)
    }

    #[test]
    fn finds_global_optimum_region() {
        let mut rng = StdRng::seed_from_u64(1);
        let starts: Vec<i64> = (0..8).map(|i| i * 12).collect();
        let out = anneal(
            &starts,
            score,
            neighbor,
            SaParams {
                chains: 8,
                max_steps: 300,
                ..SaParams::default()
            },
            &mut rng,
        );
        let (best, _) = &out.top_k(1)[0];
        assert!((best - 37).abs() <= 3, "best {best}");
    }

    #[test]
    fn step_count_is_bounded_by_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = anneal(
            &[50i64],
            score,
            neighbor,
            SaParams {
                chains: 4,
                max_steps: 100,
                patience: 0,
                ..SaParams::default()
            },
            &mut rng,
        );
        assert_eq!(out.steps_executed, 400);
    }

    #[test]
    fn patience_reduces_steps() {
        let mut rng = StdRng::seed_from_u64(3);
        let full = anneal(
            &[37i64],
            score,
            neighbor,
            SaParams {
                chains: 4,
                max_steps: 500,
                patience: 0,
                ..SaParams::default()
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let early = anneal(
            &[37i64],
            score,
            neighbor,
            SaParams {
                chains: 4,
                max_steps: 500,
                patience: 25,
                ..SaParams::default()
            },
            &mut rng,
        );
        assert!(early.steps_executed < full.steps_executed);
    }

    #[test]
    fn top_k_is_sorted_descending() {
        let mut rng = StdRng::seed_from_u64(4);
        let starts: Vec<i64> = (0..16).map(|i| i * 6).collect();
        let out = anneal(
            &starts,
            score,
            neighbor,
            SaParams {
                chains: 16,
                max_steps: 50,
                ..SaParams::default()
            },
            &mut rng,
        );
        let top = out.top_k(5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            anneal(
                &[0i64],
                score,
                neighbor,
                SaParams {
                    chains: 2,
                    max_steps: 100,
                    ..SaParams::default()
                },
                &mut rng,
            )
            .top_k(1)[0]
                .1
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chain_bests_never_worse_than_start() {
        let mut rng = StdRng::seed_from_u64(5);
        let starts = vec![0i64, 100];
        let out = anneal(
            &starts,
            score,
            neighbor,
            SaParams {
                chains: 2,
                max_steps: 100,
                ..SaParams::default()
            },
            &mut rng,
        );
        for (i, (_, s)) in out.chain_bests.iter().enumerate() {
            assert!(*s >= score(&starts[i]) - 1e-12);
        }
    }
}
