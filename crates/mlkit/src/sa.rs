//! Batched parallel simulated annealing.
//!
//! AutoTVM and Chameleon "formulate a cost minimization with a batch of
//! Markov chains" (§4.2) driven by a surrogate cost model; the number of
//! chain update steps is the key compile-time factor Fig. 6 counts. This
//! module runs that batch generically — callers provide the energy (higher =
//! better here, matching GFLOPS) and the neighbor move — and actually in
//! parallel: chains fan out across worker threads through
//! [`crate::parallel`].
//!
//! **Determinism:** chain `c` draws from its own RNG, seed-split from the
//! master seed as `child_rng(seed, c)`. A chain's trajectory is therefore a
//! pure function of `(seed, c, start state)` — independent of how many
//! chains ran before it, of the worker count, and of chain execution order.
//! The same seed replays bit-identically at any `--threads` setting.
//!
//! **Allocation:** the chain loop proposes into a persistent scratch state
//! and swaps it in on acceptance, so the `*_in_place` entry points run the
//! whole trajectory with a constant number of state allocations (start,
//! best, scratch) instead of one fresh state per step. The classic
//! `Fn(&S, &mut StdRng) -> S` entry points are kept as thin wrappers whose
//! results are bit-identical — the in-place move must fully overwrite the
//! scratch state from the current one, which `*out = neighbor(current, rng)`
//! trivially does.

use crate::parallel::{parallel_map, parallel_map_cancellable, Threads};
use crate::stats::child_rng;
use glimpse_supervise::CancelToken;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Annealing schedule and batch parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaParams {
    /// Number of parallel Markov chains.
    pub chains: usize,
    /// Maximum steps per chain.
    pub max_steps: usize,
    /// Starting temperature.
    pub t_start: f64,
    /// Final temperature (geometric schedule).
    pub t_end: f64,
    /// Stop a chain after this many consecutive non-improving steps
    /// (0 disables early stopping).
    pub patience: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        Self {
            chains: 128,
            max_steps: 500,
            t_start: 1.0,
            t_end: 0.02,
            patience: 0,
        }
    }
}

/// Outcome of one batched annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome<S> {
    /// Best state found by each chain, with its score.
    pub chain_bests: Vec<(S, f64)>,
    /// Total chain-update steps executed across the batch (Fig. 6's metric).
    pub steps_executed: usize,
}

impl<S: Clone> SaOutcome<S> {
    /// The `k` best states across all chains, best first. Only the `k`
    /// returned states are cloned; the full batch is never copied.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(S, f64)> {
        let mut order: Vec<usize> = (0..self.chain_bests.len()).collect();
        order.sort_by(|&a, &b| self.chain_bests[b].1.total_cmp(&self.chain_bests[a].1));
        order.truncate(k);
        order.into_iter().map(|i| self.chain_bests[i].clone()).collect()
    }
}

/// Runs `params.chains` annealing chains maximizing `score`, fanned out
/// across the worker threads of [`crate::parallel`].
///
/// # Examples
///
/// ```
/// use glimpse_mlkit::sa::{anneal, SaParams};
///
/// let out = anneal(
///     &[0i64],
///     |x| -((*x - 5) as f64).abs(),
///     |x, r| x + if rand::Rng::gen::<bool>(r) { 1 } else { -1 },
///     SaParams { chains: 4, max_steps: 200, ..SaParams::default() },
///     7,
/// );
/// let (best, _) = &out.top_k(1)[0];
/// assert!((best - 5).abs() <= 1);
/// ```
///
/// Each chain starts from the corresponding entry of `initial` (recycled if
/// fewer starts than chains are given) and owns an RNG seed-split from
/// `seed` by chain index, so the outcome is identical at every thread
/// count. Acceptance follows Metropolis on the score difference with a
/// geometric temperature schedule.
///
/// # Panics
///
/// Panics if `initial` is empty or temperatures are non-positive.
pub fn anneal<S, F, N>(initial: &[S], score: F, neighbor: N, params: SaParams, seed: u64) -> SaOutcome<S>
where
    S: Clone + Send + Sync,
    F: Fn(&S) -> f64 + Sync,
    N: Fn(&S, &mut StdRng) -> S + Sync,
{
    anneal_threaded(initial, score, neighbor, params, seed, Threads::AUTO)
}

/// [`anneal`] with an explicit worker-count request (the public entry point
/// resolves `--threads` / `GLIMPSE_THREADS` automatically).
pub fn anneal_threaded<S, F, N>(initial: &[S], score: F, neighbor: N, params: SaParams, seed: u64, threads: Threads) -> SaOutcome<S>
where
    S: Clone + Send + Sync,
    F: Fn(&S) -> f64 + Sync,
    N: Fn(&S, &mut StdRng) -> S + Sync,
{
    anneal_threaded_in_place(initial, score, wrap_allocating(neighbor), params, seed, threads)
}

/// [`anneal`] with an in-place neighbor move: `neighbor_into(current, out,
/// rng)` must fully overwrite `out` with the proposed state (any bytes left
/// over from a previous proposal are stale). Runs each chain with a
/// constant number of state allocations; results are bit-identical to the
/// allocating entry points for the equivalent move.
pub fn anneal_in_place<S, F, N>(initial: &[S], score: F, neighbor_into: N, params: SaParams, seed: u64) -> SaOutcome<S>
where
    S: Clone + Send + Sync,
    F: Fn(&S) -> f64 + Sync,
    N: Fn(&S, &mut S, &mut StdRng) + Sync,
{
    anneal_threaded_in_place(initial, score, neighbor_into, params, seed, Threads::AUTO)
}

/// [`anneal_in_place`] with an explicit worker-count request.
pub fn anneal_threaded_in_place<S, F, N>(
    initial: &[S],
    score: F,
    neighbor_into: N,
    params: SaParams,
    seed: u64,
    threads: Threads,
) -> SaOutcome<S>
where
    S: Clone + Send + Sync,
    F: Fn(&S) -> f64 + Sync,
    N: Fn(&S, &mut S, &mut StdRng) + Sync,
{
    assert!(!initial.is_empty(), "need at least one starting state");
    assert!(params.t_start > 0.0 && params.t_end > 0.0, "temperatures must be positive");
    let chains = params.chains.max(1);
    let results = parallel_map(threads, &chain_indices(chains), |_, &c| {
        run_chain(&initial[c % initial.len()], c, &score, &neighbor_into, &params, seed, None)
    });
    collect_outcome(results, chains)
}

/// Adapts a classic allocating move to the in-place interface.
fn wrap_allocating<S, N>(neighbor: N) -> impl Fn(&S, &mut S, &mut StdRng)
where
    N: Fn(&S, &mut StdRng) -> S,
{
    move |current: &S, out: &mut S, rng: &mut StdRng| *out = neighbor(current, rng)
}

/// Cancellable [`anneal`]: `None` if `cancel` trips before the batch
/// completes, `Some(outcome)` otherwise — the outcome is then bit-identical
/// to the uninterrupted [`anneal`] call.
///
/// The SA round is the cancellation unit: chains poll the token between
/// update steps and bail early once it trips, but a cut-short batch is
/// discarded whole, never partially consumed. Callers treat `None` as "stop
/// searching now" — the enclosing tuning loop drains at its own trial
/// boundary, so a cancelled run's journal stays a byte-identical prefix of
/// the uninterrupted run's.
pub fn anneal_cancellable<S, F, N>(
    initial: &[S],
    score: F,
    neighbor: N,
    params: SaParams,
    seed: u64,
    cancel: &CancelToken,
) -> Option<SaOutcome<S>>
where
    S: Clone + Send + Sync,
    F: Fn(&S) -> f64 + Sync,
    N: Fn(&S, &mut StdRng) -> S + Sync,
{
    anneal_cancellable_in_place(initial, score, wrap_allocating(neighbor), params, seed, cancel)
}

/// Cancellable [`anneal_in_place`]: the hot-loop entry point for the tuners
/// — in-place moves and per-round cancellation in one call.
pub fn anneal_cancellable_in_place<S, F, N>(
    initial: &[S],
    score: F,
    neighbor_into: N,
    params: SaParams,
    seed: u64,
    cancel: &CancelToken,
) -> Option<SaOutcome<S>>
where
    S: Clone + Send + Sync,
    F: Fn(&S) -> f64 + Sync,
    N: Fn(&S, &mut S, &mut StdRng) + Sync,
{
    assert!(!initial.is_empty(), "need at least one starting state");
    assert!(params.t_start > 0.0 && params.t_end > 0.0, "temperatures must be positive");
    let chains = params.chains.max(1);
    let results = parallel_map_cancellable(Threads::AUTO, cancel, &chain_indices(chains), |_, &c| {
        run_chain(&initial[c % initial.len()], c, &score, &neighbor_into, &params, seed, Some(cancel))
    })?;
    Some(collect_outcome(results, chains))
}

fn collect_outcome<S>(results: Vec<((S, f64), usize)>, chains: usize) -> SaOutcome<S> {
    let mut chain_bests = Vec::with_capacity(chains);
    let mut steps_executed = 0usize;
    for (best, steps) in results {
        chain_bests.push(best);
        steps_executed += steps;
    }
    SaOutcome {
        chain_bests,
        steps_executed,
    }
}

fn chain_indices(chains: usize) -> Vec<usize> {
    (0..chains).collect()
}

/// How many chain-update steps run between cancellation polls: cheap
/// enough to bound post-cancel latency, coarse enough to stay invisible in
/// the step profile.
const CANCEL_POLL_STEPS: usize = 16;

/// One chain's trajectory: a pure function of `(start, chain index, seed)`.
/// A tripped `cancel` only cuts the chain short — the caller discards the
/// whole batch in that case, so the bail never leaks into results.
///
/// Proposals are generated into a persistent `candidate` scratch state and
/// swapped into `current` on acceptance, so the loop allocates no fresh
/// state per step (the in-place move must fully overwrite the scratch).
fn run_chain<S, F, N>(
    start: &S,
    chain: usize,
    score: &F,
    neighbor_into: &N,
    params: &SaParams,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> ((S, f64), usize)
where
    S: Clone,
    F: Fn(&S) -> f64,
    N: Fn(&S, &mut S, &mut StdRng),
{
    use rand::Rng;
    let cooling = if params.max_steps > 1 {
        (params.t_end / params.t_start).powf(1.0 / (params.max_steps - 1) as f64)
    } else {
        1.0
    };
    let mut rng = child_rng(seed, chain as u64);
    let mut current = start.clone();
    let mut current_score = score(&current);
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut candidate = current.clone();
    let mut t = params.t_start;
    let mut stale = 0usize;
    let mut steps = 0usize;
    for step in 0..params.max_steps {
        if step % CANCEL_POLL_STEPS == 0 && cancel.is_some_and(CancelToken::is_cancelled) {
            break;
        }
        steps += 1;
        neighbor_into(&current, &mut candidate, &mut rng);
        let candidate_score = score(&candidate);
        let accept = candidate_score >= current_score || {
            let p = ((candidate_score - current_score) / t).exp();
            rng.gen::<f64>() < p
        };
        if accept {
            std::mem::swap(&mut current, &mut candidate);
            current_score = candidate_score;
        }
        if current_score > best_score {
            best.clone_from(&current);
            best_score = current_score;
            stale = 0;
        } else {
            stale += 1;
            if params.patience > 0 && stale >= params.patience {
                break;
            }
        }
        t *= cooling;
    }
    ((best, best_score), steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 1-D multi-modal score with global max at x = 37 on 0..=100.
    fn score(x: &i64) -> f64 {
        let xf = *x as f64;
        -((xf - 37.0) / 10.0).powi(2) + 0.5 * (xf / 7.0).sin()
    }

    fn neighbor(x: &i64, rng: &mut StdRng) -> i64 {
        use rand::Rng;
        (x + rng.gen_range(-5i64..=5)).clamp(0, 100)
    }

    #[test]
    fn finds_global_optimum_region() {
        let starts: Vec<i64> = (0..8).map(|i| i * 12).collect();
        let out = anneal(
            &starts,
            score,
            neighbor,
            SaParams {
                chains: 8,
                max_steps: 300,
                ..SaParams::default()
            },
            1,
        );
        let (best, _) = &out.top_k(1)[0];
        assert!((best - 37).abs() <= 3, "best {best}");
    }

    #[test]
    fn step_count_is_bounded_by_budget() {
        let out = anneal(
            &[50i64],
            score,
            neighbor,
            SaParams {
                chains: 4,
                max_steps: 100,
                patience: 0,
                ..SaParams::default()
            },
            2,
        );
        assert_eq!(out.steps_executed, 400);
    }

    #[test]
    fn patience_reduces_steps() {
        let params = SaParams {
            chains: 4,
            max_steps: 500,
            patience: 0,
            ..SaParams::default()
        };
        let full = anneal(&[37i64], score, neighbor, params, 3);
        let early = anneal(&[37i64], score, neighbor, SaParams { patience: 25, ..params }, 3);
        assert!(early.steps_executed < full.steps_executed);
    }

    #[test]
    fn top_k_is_sorted_descending() {
        let starts: Vec<i64> = (0..16).map(|i| i * 6).collect();
        let out = anneal(
            &starts,
            score,
            neighbor,
            SaParams {
                chains: 16,
                max_steps: 50,
                ..SaParams::default()
            },
            4,
        );
        let top = out.top_k(5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            anneal(
                &[0i64],
                score,
                neighbor,
                SaParams {
                    chains: 2,
                    max_steps: 100,
                    ..SaParams::default()
                },
                11,
            )
            .top_k(1)[0]
                .1
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chain_bests_never_worse_than_start() {
        let starts = vec![0i64, 100];
        let out = anneal(
            &starts,
            score,
            neighbor,
            SaParams {
                chains: 2,
                max_steps: 100,
                ..SaParams::default()
            },
            5,
        );
        for (i, (_, s)) in out.chain_bests.iter().enumerate() {
            assert!(*s >= score(&starts[i]) - 1e-12);
        }
    }

    #[test]
    fn chain_trajectory_is_independent_of_batch_position() {
        // The PR-2 determinism contract: chain c's result no longer depends
        // on how many chains ran before it through a shared RNG.
        let starts: Vec<i64> = (0..6).map(|i| i * 20).collect();
        let params = SaParams {
            chains: 6,
            max_steps: 120,
            ..SaParams::default()
        };
        let batch = anneal(&starts, score, neighbor, params, 9);
        let neighbor_into = wrap_allocating(neighbor);
        for (c, expected) in batch.chain_bests.iter().enumerate() {
            let (solo, _) = run_chain(&starts[c], c, &score, &neighbor_into, &params, 9, None);
            assert_eq!(&solo, expected, "chain {c} diverged from its solo replay");
        }
    }

    #[test]
    fn in_place_moves_match_allocating_moves_bitwise() {
        // The scratch-buffer hot loop and the classic allocating interface
        // must produce identical batches: same RNG draws, same swaps.
        let starts: Vec<i64> = (0..5).map(|i| i * 17).collect();
        let params = SaParams {
            chains: 7,
            max_steps: 150,
            patience: 20,
            ..SaParams::default()
        };
        let allocating = anneal(&starts, score, neighbor, params, 21);
        let in_place = anneal_in_place(
            &starts,
            score,
            |x: &i64, out: &mut i64, rng: &mut StdRng| *out = neighbor(x, rng),
            params,
            21,
        );
        assert!(bests_equal(&allocating, &in_place));
        let cancellable = anneal_cancellable_in_place(
            &starts,
            score,
            |x: &i64, out: &mut i64, rng: &mut StdRng| *out = neighbor(x, rng),
            params,
            21,
            &CancelToken::new(),
        )
        .expect("untripped token must not cancel");
        assert!(bests_equal(&allocating, &cancellable));
    }

    fn bests_equal(a: &SaOutcome<i64>, b: &SaOutcome<i64>) -> bool {
        a.steps_executed == b.steps_executed
            && a.chain_bests.len() == b.chain_bests.len()
            && a.chain_bests
                .iter()
                .zip(&b.chain_bests)
                .all(|((sa, fa), (sb, fb))| sa == sb && fa.to_bits() == fb.to_bits())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Bit-identical `chain_bests` for threads ∈ {1, 2, 8} and for a
        /// permuted chain execution order.
        #[test]
        fn identical_at_any_thread_count_and_order(seed in 0u64..1_000_000, chains in 1usize..12, max_steps in 1usize..60) {
            let starts: Vec<i64> = (0..4).map(|i| i * 25).collect();
            let params = SaParams { chains, max_steps, ..SaParams::default() };
            let reference = anneal_threaded(&starts, score, neighbor, params, seed, Threads::fixed(1));
            for threads in [2usize, 8] {
                let out = anneal_threaded(&starts, score, neighbor, params, seed, Threads::fixed(threads));
                prop_assert!(bests_equal(&reference, &out), "threads={threads}");
            }
            // Execute chains in reverse order, sequentially, and scatter
            // the results back: must reproduce the batch exactly.
            let mut permuted: Vec<Option<(i64, f64)>> = vec![None; chains];
            let mut steps = 0usize;
            let neighbor_into = wrap_allocating(neighbor);
            for c in (0..chains).rev() {
                let (best, s) = run_chain(&starts[c % starts.len()], c, &score, &neighbor_into, &params, seed, None);
                permuted[c] = Some(best);
                steps += s;
            }
            let permuted = SaOutcome {
                chain_bests: permuted.into_iter().map(|b| b.expect("all chains ran")).collect(),
                steps_executed: steps,
            };
            prop_assert!(bests_equal(&reference, &permuted), "permuted execution order diverged");
        }
    }

    #[test]
    fn cancellable_anneal_matches_plain_anneal_when_untripped() {
        use glimpse_supervise::CancelToken;
        let starts: Vec<i64> = (0..4).map(|i| i * 25).collect();
        let params = SaParams {
            chains: 6,
            max_steps: 80,
            ..SaParams::default()
        };
        let plain = anneal(&starts, score, neighbor, params, 13);
        let cancellable = anneal_cancellable(&starts, score, neighbor, params, 13, &CancelToken::new())
            .expect("untripped token must not cancel the batch");
        assert!(bests_equal(&plain, &cancellable));
    }

    #[test]
    fn tripped_token_discards_the_whole_batch() {
        use glimpse_supervise::{CancelReason, CancelToken};
        let pre = CancelToken::new();
        pre.cancel(CancelReason::Interrupted);
        assert!(anneal_cancellable(&[0i64], score, neighbor, SaParams::default(), 1, &pre).is_none());
        // Trip from inside the score function: chains bail early and the
        // cut-short batch is never returned.
        let mid = CancelToken::new();
        let evals = std::sync::atomic::AtomicUsize::new(0);
        let tripping_score = |x: &i64| {
            if evals.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 40 {
                mid.cancel(CancelReason::DeadlineExceeded);
            }
            score(x)
        };
        let params = SaParams {
            chains: 8,
            max_steps: 400,
            ..SaParams::default()
        };
        assert!(anneal_cancellable(&[0i64], tripping_score, neighbor, params, 2, &mid).is_none());
    }

    #[test]
    fn top_k_clones_only_k_states() {
        let out = SaOutcome {
            chain_bests: vec![(1i64, 1.0), (3, 3.0), (2, 2.0), (4, 4.0)],
            steps_executed: 0,
        };
        assert_eq!(out.top_k(2), vec![(4, 4.0), (3, 3.0)]);
        assert_eq!(out.top_k(0), Vec::<(i64, f64)>::new());
        assert_eq!(out.top_k(10).len(), 4);
    }
}
