//! Summary statistics and sampling helpers used across the reproduction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Numerically stable softmax.
///
/// # Examples
///
/// ```
/// let p = glimpse_mlkit::stats::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `logits` is empty.
#[must_use]
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax of empty slice");
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
#[must_use]
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        assert!(!v.is_nan(), "no NaN in argmax");
        if *v > values[best] {
            best = i;
        }
    }
    best
}

/// Arithmetic mean (0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len().max(1) as f64).sqrt()
}

/// Geometric mean of positive values — the aggregation the paper's Figures
/// 5, 6, and 9 report.
///
/// # Examples
///
/// ```
/// assert!((glimpse_mlkit::stats::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any value is non-positive or the slice is empty.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(values.iter().all(|v| *v > 0.0), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Linear-interpolation quantile of an unsorted slice, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Samples an index from an (unnormalized, non-negative) weight vector.
/// Falls back to uniform if all weights are zero.
///
/// # Panics
///
/// Panics if `weights` is empty or contains a negative weight.
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    assert!(weights.iter().all(|w| *w >= 0.0), "weights must be non-negative");
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut draw = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

/// Deterministic RNG fan-out: derives a child RNG from a parent seed and a
/// stream label, so parallel components stay reproducible and decorrelated.
#[must_use]
pub fn child_rng(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 mixing of (seed, stream) into a fresh 64-bit state.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        let v = vec![3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&weights, &mut rng), 2);
        }
    }

    #[test]
    fn weighted_sampling_zero_weights_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [0.0, 0.0];
        let mut seen = [0usize; 2];
        for _ in 0..200 {
            seen[sample_weighted(&weights, &mut rng)] += 1;
        }
        assert!(seen[0] > 50 && seen[1] > 50);
    }

    #[test]
    fn child_rngs_differ_by_stream() {
        use rand::Rng;
        let a: u64 = child_rng(7, 0).gen();
        let b: u64 = child_rng(7, 1).gen();
        let a2: u64 = child_rng(7, 0).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    proptest! {
        #[test]
        fn quantile_monotone(q1 in 0.0f64..1.0, q2 in 0.0f64..1.0, mut vals in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            vals.sort_by(|a, b| a.total_cmp(b));
            prop_assert!(quantile(&vals, lo) <= quantile(&vals, hi) + 1e-12);
        }

        #[test]
        fn softmax_probabilities_valid(logits in proptest::collection::vec(-20.0f64..20.0, 1..10)) {
            let p = softmax(&logits);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|x| *x >= 0.0));
        }
    }
}
