//! Parsing textual data sheets into [`GpuSpec`] records.
//!
//! Glimpse's premise is that hardware knowledge arrives as *public data
//! sheets* (§3.1). This module accepts a simple `key: value` sheet format —
//! the kind of text a vendor page or the Wikipedia GPU list reduces to — so
//! downstream users can add GPUs without recompiling the built-in database.
//!
//! ```text
//! name: RTX 4070
//! generation: Ampere        # closest supported generation
//! sm_count: 46
//! cores_per_sm: 128
//! base_clock_mhz: 1920
//! boost_clock_mhz: 2475
//! mem_bandwidth_gb_s: 504
//! mem_bus_bits: 192
//! mem_size_gib: 12
//! l2_cache_kib: 36864
//! tdp_w: 200
//! ```
//!
//! Per-SM limits (shared memory, resident threads/blocks) are filled from
//! the generation's occupancy table, exactly like the built-in database;
//! peak GFLOPS is derived as `2 × cores × boost` when not given.

use crate::generation::Generation;
use crate::spec::GpuSpec;
// String-keyed scratch map inside a parser; never iterated for output, so
// hash-order randomization cannot leak into results (D2 does not apply).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::fmt;

/// Error parsing a textual data sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSheetError {
    line: Option<usize>,
    reason: String,
}

impl ParseSheetError {
    fn at(line: usize, reason: impl Into<String>) -> Self {
        Self {
            line: Some(line),
            reason: reason.into(),
        }
    }

    fn general(reason: impl Into<String>) -> Self {
        Self {
            line: None,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseSheetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "data sheet line {line}: {}", self.reason),
            None => write!(f, "data sheet: {}", self.reason),
        }
    }
}

impl std::error::Error for ParseSheetError {}

/// Parses one `key: value` sheet into a validated [`GpuSpec`].
///
/// Comments start with `#`; blank lines are ignored. Required keys:
/// `name`, `generation`, `sm_count`, `cores_per_sm`, `base_clock_mhz`,
/// `boost_clock_mhz`, `mem_bandwidth_gb_s`, `mem_bus_bits`, `mem_size_gib`,
/// `l2_cache_kib`, `tdp_w`. Optional: `fp32_gflops` (derived otherwise).
///
/// # Errors
///
/// Returns [`ParseSheetError`] for malformed lines, missing/duplicate keys,
/// unknown generations, or a sheet that fails [`GpuSpec::validate`].
pub fn parse_sheet(text: &str) -> Result<GpuSpec, ParseSheetError> {
    #[allow(clippy::disallowed_types)]
    let mut fields: HashMap<String, String> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Err(ParseSheetError::at(i + 1, format!("expected `key: value`, got {line:?}")));
        };
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if value.is_empty() {
            return Err(ParseSheetError::at(i + 1, format!("empty value for {key:?}")));
        }
        if fields.insert(key.clone(), value).is_some() {
            return Err(ParseSheetError::at(i + 1, format!("duplicate key {key:?}")));
        }
    }

    let take = |key: &str| -> Result<String, ParseSheetError> {
        fields
            .get(key)
            .cloned()
            .ok_or_else(|| ParseSheetError::general(format!("missing required key {key:?}")))
    };
    let num = |key: &str| -> Result<f64, ParseSheetError> {
        let value = take(key)?
            .parse::<f64>()
            .map_err(|_| ParseSheetError::general(format!("{key:?} is not a number")))?;
        // `f64::parse` happily accepts "NaN" and "inf"; one such field
        // poisons every derived quantity and blueprint PCA downstream.
        if !value.is_finite() {
            return Err(ParseSheetError::general(format!("{key:?} must be finite, got {value}")));
        }
        Ok(value)
    };
    let int = |key: &str| -> Result<u32, ParseSheetError> {
        take(key)?
            .parse::<u32>()
            .map_err(|_| ParseSheetError::general(format!("{key:?} is not an integer")))
    };

    let generation: Generation = take("generation")?.parse().map_err(|e| ParseSheetError::general(format!("{e}")))?;
    let (shared_per_sm, shared_per_block, threads_per_sm, blocks_per_sm) = match generation {
        Generation::Pascal => (96, 48, 2048, 32),
        Generation::Turing => (64, 64, 1024, 16),
        Generation::Ampere => (128, 100, 1536, 16),
    };
    let sm_count = int("sm_count")?;
    let cores_per_sm = int("cores_per_sm")?;
    let boost = num("boost_clock_mhz")?;
    let derived_gflops = 2.0 * f64::from(sm_count * cores_per_sm) * boost / 1000.0;
    let fp32_gflops = match fields.get("fp32_gflops") {
        Some(_) => num("fp32_gflops")?,
        None => derived_gflops,
    };

    let spec = GpuSpec {
        name: take("name")?,
        generation,
        sm_arch: generation.default_sm_arch(),
        sm_count,
        cores_per_sm,
        base_clock_mhz: num("base_clock_mhz")?,
        boost_clock_mhz: boost,
        mem_bandwidth_gb_s: num("mem_bandwidth_gb_s")?,
        mem_bus_bits: int("mem_bus_bits")?,
        mem_size_gib: num("mem_size_gib")?,
        l2_cache_kib: int("l2_cache_kib")?,
        shared_mem_per_sm_kib: shared_per_sm,
        max_shared_mem_per_block_kib: shared_per_block,
        registers_per_sm: 65_536,
        max_threads_per_sm: threads_per_sm,
        max_threads_per_block: 1024,
        max_blocks_per_sm: blocks_per_sm,
        warp_size: 32,
        fp32_gflops,
        tdp_w: num("tdp_w")?,
    };
    spec.validate().map_err(|e| ParseSheetError::general(e.to_string()))?;
    Ok(spec)
}

/// Renders a spec back into the sheet format accepted by [`parse_sheet`].
#[must_use]
pub fn to_sheet(spec: &GpuSpec) -> String {
    format!(
        "name: {}\ngeneration: {}\nsm_count: {}\ncores_per_sm: {}\nbase_clock_mhz: {}\nboost_clock_mhz: {}\nmem_bandwidth_gb_s: {}\nmem_bus_bits: {}\nmem_size_gib: {}\nl2_cache_kib: {}\nfp32_gflops: {}\ntdp_w: {}\n",
        spec.name,
        spec.generation,
        spec.sm_count,
        spec.cores_per_sm,
        spec.base_clock_mhz,
        spec.boost_clock_mhz,
        spec.mem_bandwidth_gb_s,
        spec.mem_bus_bits,
        spec.mem_size_gib,
        spec.l2_cache_kib,
        spec.fp32_gflops,
        spec.tdp_w,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database;

    const SHEET: &str = "\
# a hypothetical part
name: RTX 4070
generation: Ampere
sm_count: 46
cores_per_sm: 128
base_clock_mhz: 1920
boost_clock_mhz: 2475
mem_bandwidth_gb_s: 504
mem_bus_bits: 192
mem_size_gib: 12
l2_cache_kib: 36864
tdp_w: 200
";

    #[test]
    fn parses_a_complete_sheet() {
        let spec = parse_sheet(SHEET).unwrap();
        assert_eq!(spec.name, "RTX 4070");
        assert_eq!(spec.total_cores(), 5888);
        // GFLOPS derived from cores x boost.
        assert!((spec.fp32_gflops - 2.0 * 5888.0 * 2475.0 / 1000.0).abs() < 1.0);
        assert_eq!(spec.shared_mem_per_sm_kib, 128); // Ampere occupancy table
        spec.validate().unwrap();
    }

    #[test]
    fn roundtrips_every_database_entry() {
        for gpu in database::all() {
            let sheet = to_sheet(gpu);
            let parsed = parse_sheet(&sheet).unwrap();
            assert_eq!(&parsed, gpu, "{}", gpu.name);
        }
    }

    #[test]
    fn reports_missing_keys() {
        let err = parse_sheet("name: X\ngeneration: Turing\n").unwrap_err();
        assert!(err.to_string().contains("missing required key"));
    }

    #[test]
    fn reports_malformed_lines_with_line_numbers() {
        let err = parse_sheet("name: X\nnot a kv pair\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let text = format!("{SHEET}sm_count: 50\n");
        let err = parse_sheet(&text).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_unknown_generation() {
        let text = SHEET.replace("Ampere", "Hopper");
        let err = parse_sheet(&text).unwrap_err();
        assert!(err.to_string().contains("Hopper"));
    }

    #[test]
    fn rejects_nan_and_infinite_numeric_fields() {
        // "NaN" and "inf" parse as f64 values; the loader must refuse them
        // with a typed error instead of poisoning PCA downstream.
        for (key, bad) in [
            ("base_clock_mhz: 1920", "base_clock_mhz: NaN"),
            ("mem_bandwidth_gb_s: 504", "mem_bandwidth_gb_s: inf"),
            ("mem_size_gib: 12", "mem_size_gib: -NaN"),
            ("tdp_w: 200", "tdp_w: -inf"),
        ] {
            let text = SHEET.replace(key, bad);
            let err = parse_sheet(&text).unwrap_err();
            assert!(err.to_string().contains("finite"), "{bad}: {err}");
        }
        let text = format!("{SHEET}fp32_gflops: NaN\n");
        assert!(parse_sheet(&text).unwrap_err().to_string().contains("finite"));
    }

    #[test]
    fn rejects_negative_fields() {
        let text = SHEET.replace("mem_size_gib: 12", "mem_size_gib: -12");
        assert!(parse_sheet(&text).is_err());
        let text = SHEET.replace("tdp_w: 200", "tdp_w: 0");
        assert!(parse_sheet(&text).is_err());
    }

    #[test]
    fn rejects_inconsistent_sheets() {
        // Claimed GFLOPS wildly off from cores x clock fails validation.
        let text = format!("{SHEET}fp32_gflops: 1.0\n");
        assert!(parse_sheet(&text).is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = format!("\n# leading comment\n\n{SHEET}\n# trailing\n");
        assert!(parse_sheet(&text).is_ok());
    }
}
