//! GPU micro-architecture generations and compute capabilities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// NVIDIA micro-architecture generation, as listed in public data sheets.
///
/// The paper's Table 1 evaluates Pascal (`sm_61`), Turing (`sm_75`), and
/// Ampere (`sm_86`) parts; the training database additionally covers the full
/// consumer line-up of those generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// Pascal (GTX 10 series, Titan Xp), 2016.
    Pascal,
    /// Turing (RTX 20 / GTX 16 series), 2018.
    Turing,
    /// Ampere (RTX 30 series), 2020.
    Ampere,
}

impl Generation {
    /// All generations in chronological order.
    pub const ALL: [Generation; 3] = [Generation::Pascal, Generation::Turing, Generation::Ampere];

    /// The default compute capability (`gencode`) of consumer parts of this
    /// generation, matching the paper's Table 1.
    #[must_use]
    pub fn default_sm_arch(self) -> SmArch {
        match self {
            Generation::Pascal => SmArch::Sm61,
            Generation::Turing => SmArch::Sm75,
            Generation::Ampere => SmArch::Sm86,
        }
    }

    /// Release-order index (Pascal = 0), used as an ordinal data-sheet feature.
    #[must_use]
    pub fn ordinal(self) -> usize {
        match self {
            Generation::Pascal => 0,
            Generation::Turing => 1,
            Generation::Ampere => 2,
        }
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Generation::Pascal => "Pascal",
            Generation::Turing => "Turing",
            Generation::Ampere => "Ampere",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a [`Generation`] or [`SmArch`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArchError {
    input: String,
}

impl fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown GPU architecture: {:?}", self.input)
    }
}

impl std::error::Error for ParseArchError {}

impl FromStr for Generation {
    type Err = ParseArchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pascal" => Ok(Generation::Pascal),
            "turing" => Ok(Generation::Turing),
            "ampere" => Ok(Generation::Ampere),
            _ => Err(ParseArchError { input: s.to_owned() }),
        }
    }
}

/// CUDA compute capability (the `gencode` column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SmArch {
    /// Pascal consumer parts.
    Sm61,
    /// Turing.
    Sm75,
    /// Ampere consumer parts.
    Sm86,
}

impl SmArch {
    /// Numeric compute capability, e.g. `61` for `sm_61`.
    #[must_use]
    pub fn version(self) -> u32 {
        match self {
            SmArch::Sm61 => 61,
            SmArch::Sm75 => 75,
            SmArch::Sm86 => 86,
        }
    }

    /// The generation this compute capability belongs to.
    #[must_use]
    pub fn generation(self) -> Generation {
        match self {
            SmArch::Sm61 => Generation::Pascal,
            SmArch::Sm75 => Generation::Turing,
            SmArch::Sm86 => Generation::Ampere,
        }
    }
}

impl fmt::Display for SmArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sm_{}", self.version())
    }
}

impl FromStr for SmArch {
    type Err = ParseArchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sm_61" | "61" => Ok(SmArch::Sm61),
            "sm_75" | "75" => Ok(SmArch::Sm75),
            "sm_86" | "86" => Ok(SmArch::Sm86),
            _ => Err(ParseArchError { input: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_roundtrips_through_display_and_fromstr() {
        for generation in Generation::ALL {
            let text = generation.to_string();
            assert_eq!(text.parse::<Generation>().unwrap(), generation);
        }
    }

    #[test]
    fn generation_ordinals_are_chronological() {
        let ordinals: Vec<usize> = Generation::ALL.iter().map(|g| g.ordinal()).collect();
        assert_eq!(ordinals, vec![0, 1, 2]);
    }

    #[test]
    fn sm_arch_matches_table1_gencodes() {
        assert_eq!(Generation::Pascal.default_sm_arch().to_string(), "sm_61");
        assert_eq!(Generation::Turing.default_sm_arch().to_string(), "sm_75");
        assert_eq!(Generation::Ampere.default_sm_arch().to_string(), "sm_86");
    }

    #[test]
    fn sm_arch_parses_both_forms() {
        assert_eq!("sm_75".parse::<SmArch>().unwrap(), SmArch::Sm75);
        assert_eq!("86".parse::<SmArch>().unwrap(), SmArch::Sm86);
    }

    #[test]
    fn parse_errors_describe_the_input() {
        let err = "volta".parse::<Generation>().unwrap_err();
        assert!(err.to_string().contains("volta"));
    }

    #[test]
    fn sm_arch_generation_is_consistent() {
        for generation in Generation::ALL {
            assert_eq!(generation.default_sm_arch().generation(), generation);
        }
    }
}
