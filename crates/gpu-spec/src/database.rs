//! The built-in data-sheet database.
//!
//! Twenty-four consumer GPUs spanning Pascal, Turing, and Ampere. The four
//! evaluation parts of the paper's Table 1 (Titan Xp, RTX 2070 Super,
//! RTX 2080 Ti, RTX 3090) are included verbatim; the remaining twenty serve
//! as the meta-training population for the Blueprint PCA, the prior
//! generator `H`, and the hardware-aware explorer (§3.1–3.2 train across
//! "various hardware and networks").
//!
//! Numbers are transcribed from the public data sheets / the "List of Nvidia
//! graphics processing units" the paper cites as [12].

use crate::generation::Generation;
use crate::spec::GpuSpec;
use std::sync::OnceLock;

/// The four target GPUs of the paper's evaluation (Table 1).
pub const EVALUATION_GPUS: [&str; 4] = ["Titan Xp", "RTX 2070 Super", "RTX 2080 Ti", "RTX 3090"];

struct Row {
    name: &'static str,
    generation: Generation,
    sm_count: u32,
    cores_per_sm: u32,
    base_mhz: f64,
    boost_mhz: f64,
    bandwidth_gb_s: f64,
    bus_bits: u32,
    mem_gib: f64,
    l2_kib: u32,
    tdp_w: f64,
}

const ROWS: &[Row] = &[
    // Pascal (sm_61)
    Row {
        name: "GTX 1050 Ti",
        generation: Generation::Pascal,
        sm_count: 6,
        cores_per_sm: 128,
        base_mhz: 1290.0,
        boost_mhz: 1392.0,
        bandwidth_gb_s: 112.1,
        bus_bits: 128,
        mem_gib: 4.0,
        l2_kib: 1024,
        tdp_w: 75.0,
    },
    Row {
        name: "GTX 1060 6GB",
        generation: Generation::Pascal,
        sm_count: 10,
        cores_per_sm: 128,
        base_mhz: 1506.0,
        boost_mhz: 1708.0,
        bandwidth_gb_s: 192.2,
        bus_bits: 192,
        mem_gib: 6.0,
        l2_kib: 1536,
        tdp_w: 120.0,
    },
    Row {
        name: "GTX 1070",
        generation: Generation::Pascal,
        sm_count: 15,
        cores_per_sm: 128,
        base_mhz: 1506.0,
        boost_mhz: 1683.0,
        bandwidth_gb_s: 256.3,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 2048,
        tdp_w: 150.0,
    },
    Row {
        name: "GTX 1070 Ti",
        generation: Generation::Pascal,
        sm_count: 19,
        cores_per_sm: 128,
        base_mhz: 1607.0,
        boost_mhz: 1683.0,
        bandwidth_gb_s: 256.3,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 2048,
        tdp_w: 180.0,
    },
    Row {
        name: "GTX 1080",
        generation: Generation::Pascal,
        sm_count: 20,
        cores_per_sm: 128,
        base_mhz: 1607.0,
        boost_mhz: 1733.0,
        bandwidth_gb_s: 320.3,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 2048,
        tdp_w: 180.0,
    },
    Row {
        name: "GTX 1080 Ti",
        generation: Generation::Pascal,
        sm_count: 28,
        cores_per_sm: 128,
        base_mhz: 1480.0,
        boost_mhz: 1582.0,
        bandwidth_gb_s: 484.4,
        bus_bits: 352,
        mem_gib: 11.0,
        l2_kib: 2816,
        tdp_w: 250.0,
    },
    Row {
        name: "Titan X (Pascal)",
        generation: Generation::Pascal,
        sm_count: 28,
        cores_per_sm: 128,
        base_mhz: 1417.0,
        boost_mhz: 1531.0,
        bandwidth_gb_s: 480.4,
        bus_bits: 384,
        mem_gib: 12.0,
        l2_kib: 3072,
        tdp_w: 250.0,
    },
    Row {
        name: "Titan Xp",
        generation: Generation::Pascal,
        sm_count: 30,
        cores_per_sm: 128,
        base_mhz: 1405.0,
        boost_mhz: 1582.0,
        bandwidth_gb_s: 547.6,
        bus_bits: 384,
        mem_gib: 12.0,
        l2_kib: 3072,
        tdp_w: 250.0,
    },
    // Turing (sm_75)
    Row {
        name: "GTX 1650",
        generation: Generation::Turing,
        sm_count: 14,
        cores_per_sm: 64,
        base_mhz: 1485.0,
        boost_mhz: 1665.0,
        bandwidth_gb_s: 128.1,
        bus_bits: 128,
        mem_gib: 4.0,
        l2_kib: 1024,
        tdp_w: 75.0,
    },
    Row {
        name: "GTX 1660",
        generation: Generation::Turing,
        sm_count: 22,
        cores_per_sm: 64,
        base_mhz: 1530.0,
        boost_mhz: 1785.0,
        bandwidth_gb_s: 192.1,
        bus_bits: 192,
        mem_gib: 6.0,
        l2_kib: 1536,
        tdp_w: 120.0,
    },
    Row {
        name: "GTX 1660 Ti",
        generation: Generation::Turing,
        sm_count: 24,
        cores_per_sm: 64,
        base_mhz: 1500.0,
        boost_mhz: 1770.0,
        bandwidth_gb_s: 288.0,
        bus_bits: 192,
        mem_gib: 6.0,
        l2_kib: 1536,
        tdp_w: 120.0,
    },
    Row {
        name: "RTX 2060",
        generation: Generation::Turing,
        sm_count: 30,
        cores_per_sm: 64,
        base_mhz: 1365.0,
        boost_mhz: 1680.0,
        bandwidth_gb_s: 336.0,
        bus_bits: 192,
        mem_gib: 6.0,
        l2_kib: 3072,
        tdp_w: 160.0,
    },
    Row {
        name: "RTX 2060 Super",
        generation: Generation::Turing,
        sm_count: 34,
        cores_per_sm: 64,
        base_mhz: 1470.0,
        boost_mhz: 1650.0,
        bandwidth_gb_s: 448.0,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 175.0,
    },
    Row {
        name: "RTX 2070",
        generation: Generation::Turing,
        sm_count: 36,
        cores_per_sm: 64,
        base_mhz: 1410.0,
        boost_mhz: 1620.0,
        bandwidth_gb_s: 448.0,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 175.0,
    },
    Row {
        name: "RTX 2070 Super",
        generation: Generation::Turing,
        sm_count: 40,
        cores_per_sm: 64,
        base_mhz: 1605.0,
        boost_mhz: 1770.0,
        bandwidth_gb_s: 448.0,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 215.0,
    },
    Row {
        name: "RTX 2080",
        generation: Generation::Turing,
        sm_count: 46,
        cores_per_sm: 64,
        base_mhz: 1515.0,
        boost_mhz: 1710.0,
        bandwidth_gb_s: 448.0,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 215.0,
    },
    Row {
        name: "RTX 2080 Super",
        generation: Generation::Turing,
        sm_count: 48,
        cores_per_sm: 64,
        base_mhz: 1650.0,
        boost_mhz: 1815.0,
        bandwidth_gb_s: 496.1,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 250.0,
    },
    Row {
        name: "RTX 2080 Ti",
        generation: Generation::Turing,
        sm_count: 68,
        cores_per_sm: 64,
        base_mhz: 1350.0,
        boost_mhz: 1545.0,
        bandwidth_gb_s: 616.0,
        bus_bits: 352,
        mem_gib: 11.0,
        l2_kib: 5632,
        tdp_w: 250.0,
    },
    Row {
        name: "Titan RTX",
        generation: Generation::Turing,
        sm_count: 72,
        cores_per_sm: 64,
        base_mhz: 1350.0,
        boost_mhz: 1770.0,
        bandwidth_gb_s: 672.0,
        bus_bits: 384,
        mem_gib: 24.0,
        l2_kib: 6144,
        tdp_w: 280.0,
    },
    // Ampere (sm_86)
    Row {
        name: "RTX 3060",
        generation: Generation::Ampere,
        sm_count: 28,
        cores_per_sm: 128,
        base_mhz: 1320.0,
        boost_mhz: 1777.0,
        bandwidth_gb_s: 360.0,
        bus_bits: 192,
        mem_gib: 12.0,
        l2_kib: 3072,
        tdp_w: 170.0,
    },
    Row {
        name: "RTX 3060 Ti",
        generation: Generation::Ampere,
        sm_count: 38,
        cores_per_sm: 128,
        base_mhz: 1410.0,
        boost_mhz: 1665.0,
        bandwidth_gb_s: 448.0,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 200.0,
    },
    Row {
        name: "RTX 3070",
        generation: Generation::Ampere,
        sm_count: 46,
        cores_per_sm: 128,
        base_mhz: 1500.0,
        boost_mhz: 1725.0,
        bandwidth_gb_s: 448.0,
        bus_bits: 256,
        mem_gib: 8.0,
        l2_kib: 4096,
        tdp_w: 220.0,
    },
    Row {
        name: "RTX 3080",
        generation: Generation::Ampere,
        sm_count: 68,
        cores_per_sm: 128,
        base_mhz: 1440.0,
        boost_mhz: 1710.0,
        bandwidth_gb_s: 760.3,
        bus_bits: 320,
        mem_gib: 10.0,
        l2_kib: 5120,
        tdp_w: 320.0,
    },
    Row {
        name: "RTX 3090",
        generation: Generation::Ampere,
        sm_count: 82,
        cores_per_sm: 128,
        base_mhz: 1395.0,
        boost_mhz: 1695.0,
        bandwidth_gb_s: 936.2,
        bus_bits: 384,
        mem_gib: 24.0,
        l2_kib: 6144,
        tdp_w: 350.0,
    },
];

fn expand(row: &Row) -> GpuSpec {
    // Per-generation SM limits come from the CUDA occupancy tables rather
    // than the marketing sheet, keyed on compute capability.
    let (shared_per_sm, shared_per_block, threads_per_sm, blocks_per_sm) = match row.generation {
        Generation::Pascal => (96, 48, 2048, 32),
        Generation::Turing => (64, 64, 1024, 16),
        Generation::Ampere => (128, 100, 1536, 16),
    };
    let total_cores = f64::from(row.sm_count * row.cores_per_sm);
    GpuSpec {
        name: row.name.to_owned(),
        generation: row.generation,
        sm_arch: row.generation.default_sm_arch(),
        sm_count: row.sm_count,
        cores_per_sm: row.cores_per_sm,
        base_clock_mhz: row.base_mhz,
        boost_clock_mhz: row.boost_mhz,
        mem_bandwidth_gb_s: row.bandwidth_gb_s,
        mem_bus_bits: row.bus_bits,
        mem_size_gib: row.mem_gib,
        l2_cache_kib: row.l2_kib,
        shared_mem_per_sm_kib: shared_per_sm,
        max_shared_mem_per_block_kib: shared_per_block,
        registers_per_sm: 65_536,
        max_threads_per_sm: threads_per_sm,
        max_threads_per_block: 1024,
        max_blocks_per_sm: blocks_per_sm,
        warp_size: 32,
        fp32_gflops: 2.0 * total_cores * row.boost_mhz / 1000.0,
        tdp_w: row.tdp_w,
    }
}

fn table() -> &'static [GpuSpec] {
    static TABLE: OnceLock<Vec<GpuSpec>> = OnceLock::new();
    TABLE.get_or_init(|| ROWS.iter().map(expand).collect())
}

/// All 24 GPUs in the database, Pascal first, in release order.
#[must_use]
pub fn all() -> &'static [GpuSpec] {
    table()
}

/// Looks up a GPU by exact marketing name.
#[must_use]
pub fn find(name: &str) -> Option<&'static GpuSpec> {
    table().iter().find(|g| g.name == name)
}

/// The four evaluation GPUs of Table 1, in the paper's order.
#[must_use]
pub fn evaluation_gpus() -> Vec<&'static GpuSpec> {
    EVALUATION_GPUS.iter().filter_map(|n| find(n)).collect()
}

/// Every database entry except `excluded`, used for leave-one-out
/// meta-training (§3.1: `H` is trained on other hardware).
#[must_use]
pub fn training_gpus(excluded: &str) -> Vec<&'static GpuSpec> {
    table().iter().filter(|g| g.name != excluded).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_has_24_entries() {
        assert_eq!(all().len(), 24);
    }

    #[test]
    fn evaluation_gpus_match_table1() {
        let gpus = evaluation_gpus();
        assert_eq!(gpus.len(), 4);
        assert_eq!(gpus[0].sm_arch.to_string(), "sm_61");
        assert_eq!(gpus[1].sm_arch.to_string(), "sm_75");
        assert_eq!(gpus[2].sm_arch.to_string(), "sm_75");
        assert_eq!(gpus[3].sm_arch.to_string(), "sm_86");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|g| g.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }

    #[test]
    fn find_is_exact() {
        assert!(find("RTX 2080 Ti").is_some());
        assert!(find("rtx 2080 ti").is_none());
        assert!(find("RTX 4090").is_none());
    }

    #[test]
    fn leave_one_out_excludes_exactly_one() {
        let rest = training_gpus("RTX 3090");
        assert_eq!(rest.len(), all().len() - 1);
        assert!(rest.iter().all(|g| g.name != "RTX 3090"));
    }

    #[test]
    fn known_headline_numbers() {
        let titan = find("Titan Xp").unwrap();
        assert_eq!(titan.total_cores(), 3840);
        let ti = find("RTX 2080 Ti").unwrap();
        assert_eq!(ti.total_cores(), 4352);
        let amp = find("RTX 3090").unwrap();
        assert_eq!(amp.total_cores(), 10496);
        assert!((amp.fp32_gflops - 35_581.0).abs() < 100.0);
    }

    #[test]
    fn generations_cover_all_three() {
        use crate::Generation;
        for generation in Generation::ALL {
            assert!(all().iter().any(|g| g.generation == generation));
        }
    }
}
