//! GPU data-sheet database and feature extraction.
//!
//! Glimpse (DAC 2022, §3.1) builds its *Blueprint* embedding from the
//! architectural specifications that GPU vendors publish in data sheets:
//! processor/core counts, bus interfaces, cache sizes, clocks, and compute
//! capacity in GFLOPS. This crate is the reproduction's stand-in for those
//! public data sheets: a typed [`GpuSpec`] record, a database of 24 GPUs
//! spanning the Pascal, Turing, and Ampere generations (including the four
//! evaluation GPUs of the paper's Table 1), and the numeric
//! [`FeatureVector`] extraction that the Blueprint PCA consumes.
//!
//! # Examples
//!
//! ```
//! use glimpse_gpu_spec::{database, FeatureVector};
//!
//! let gpu = database::find("RTX 2080 Ti").expect("in database");
//! assert_eq!(gpu.sm_count, 68);
//! let features = FeatureVector::from_spec(gpu);
//! assert_eq!(features.len(), glimpse_gpu_spec::features::FEATURE_COUNT);
//! ```

#![forbid(unsafe_code)]

pub mod database;
pub mod datasheet;
pub mod features;
pub mod generation;
pub mod snapshot;
pub mod spec;

pub use features::{FeatureVector, Normalizer};
pub use generation::{Generation, SmArch};
pub use snapshot::{load_snapshot, save_snapshot, SnapshotError};
pub use spec::GpuSpec;
