//! The typed data-sheet record for a single GPU.

use crate::generation::{Generation, SmArch};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Architectural specification of a GPU, mirroring the fields that public
/// data sheets list (§3.1 of the paper: "the number of different
/// processors/cores, bus interfaces, cache size, clock cycles, and the
/// compute capacity in GFLOPS").
///
/// All limits are per the vendor's published numbers; derived quantities
/// (total core count, bytes per clock, ridge point) are provided as methods
/// so the record itself stays a faithful transcription of the sheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"RTX 2080 Ti"`.
    pub name: String,
    /// Micro-architecture generation.
    pub generation: Generation,
    /// Compute capability (`gencode`).
    pub sm_arch: SmArch,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// FP32 CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Base core clock in MHz.
    pub base_clock_mhz: f64,
    /// Boost core clock in MHz.
    pub boost_clock_mhz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gb_s: f64,
    /// Memory bus width in bits.
    pub mem_bus_bits: u32,
    /// DRAM capacity in GiB.
    pub mem_size_gib: f64,
    /// L2 cache size in KiB.
    pub l2_cache_kib: u32,
    /// Shared memory per SM in KiB.
    pub shared_mem_per_sm_kib: u32,
    /// Maximum shared memory a single thread block may allocate, in KiB.
    pub max_shared_mem_per_block_kib: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Peak FP32 throughput in GFLOPS at boost clock.
    pub fp32_gflops: f64,
    /// Board power in watts.
    pub tdp_w: f64,
}

impl GpuSpec {
    /// Total FP32 CUDA cores on the device.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Peak FP32 GFLOPS recomputed from cores and boost clock
    /// (`2 × cores × clock`), for cross-checking the data-sheet figure.
    #[must_use]
    pub fn derived_fp32_gflops(&self) -> f64 {
        2.0 * f64::from(self.total_cores()) * self.boost_clock_mhz / 1000.0
    }

    /// Arithmetic intensity (FLOP/byte) at which the device transitions from
    /// memory- to compute-bound under a roofline model.
    #[must_use]
    pub fn ridge_point_flops_per_byte(&self) -> f64 {
        self.fp32_gflops / self.mem_bandwidth_gb_s
    }

    /// Maximum resident warps per SM.
    #[must_use]
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Shared memory per SM in bytes.
    #[must_use]
    pub fn shared_mem_per_sm_bytes(&self) -> u64 {
        u64::from(self.shared_mem_per_sm_kib) * 1024
    }

    /// Maximum shared memory per block in bytes.
    #[must_use]
    pub fn max_shared_mem_per_block_bytes(&self) -> u64 {
        u64::from(self.max_shared_mem_per_block_kib) * 1024
    }

    /// Verifies the record's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first violated invariant:
    /// a NaN/infinite/non-positive numeric field (every float here is a
    /// divisor or PCA input downstream, so one NaN poisons the whole
    /// blueprint), zero structural counts, clocks out of order, a
    /// data-sheet GFLOPS figure more than 25 % away from
    /// `2 × cores × boost clock`, or a block shared-memory limit exceeding
    /// the per-SM pool.
    pub fn validate(&self) -> Result<(), SpecError> {
        // Finite-and-positive sweep over every float field first: NaN
        // compares false against thresholds, so the ordering checks below
        // would silently pass a poisoned record.
        for (field, value) in [
            ("base_clock_mhz", self.base_clock_mhz),
            ("boost_clock_mhz", self.boost_clock_mhz),
            ("mem_bandwidth_gb_s", self.mem_bandwidth_gb_s),
            ("mem_size_gib", self.mem_size_gib),
            ("fp32_gflops", self.fp32_gflops),
            ("tdp_w", self.tdp_w),
        ] {
            if !value.is_finite() {
                return Err(SpecError::new(&self.name, &format!("{field} must be finite, got {value}")));
            }
            if value <= 0.0 {
                return Err(SpecError::new(&self.name, &format!("{field} must be positive, got {value}")));
            }
        }
        if self.sm_count == 0 || self.cores_per_sm == 0 {
            return Err(SpecError::new(&self.name, "core counts must be positive"));
        }
        if self.l2_cache_kib == 0 || self.shared_mem_per_sm_kib == 0 || self.registers_per_sm == 0 {
            return Err(SpecError::new(&self.name, "cache and register files must be positive"));
        }
        if self.max_threads_per_sm == 0 || self.max_threads_per_block == 0 || self.max_blocks_per_sm == 0 {
            return Err(SpecError::new(&self.name, "occupancy limits must be positive"));
        }
        if self.boost_clock_mhz < self.base_clock_mhz {
            return Err(SpecError::new(&self.name, "clocks must satisfy 0 < base <= boost"));
        }
        if self.mem_bus_bits == 0 {
            return Err(SpecError::new(&self.name, "memory system must be positive"));
        }
        if self.warp_size != 32 {
            return Err(SpecError::new(&self.name, "warp size must be 32"));
        }
        if self.max_threads_per_block > self.max_threads_per_sm {
            return Err(SpecError::new(&self.name, "block thread limit cannot exceed SM thread limit"));
        }
        if self.max_shared_mem_per_block_kib > self.shared_mem_per_sm_kib {
            return Err(SpecError::new(
                &self.name,
                "block shared-memory limit cannot exceed the per-SM pool",
            ));
        }
        let derived = self.derived_fp32_gflops();
        let relative_gap = (derived - self.fp32_gflops).abs() / self.fp32_gflops;
        if relative_gap > 0.25 {
            return Err(SpecError::new(
                &self.name,
                "data-sheet GFLOPS disagrees with 2 x cores x boost clock",
            ));
        }
        Ok(())
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} {}, {} SMs, {:.0} GFLOPS, {:.0} GB/s)",
            self.name, self.generation, self.sm_arch, self.sm_count, self.fp32_gflops, self.mem_bandwidth_gb_s
        )
    }
}

/// Error describing an internally inconsistent [`GpuSpec`] record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    gpu: String,
    problem: String,
}

impl SpecError {
    fn new(gpu: &str, problem: &str) -> Self {
        Self {
            gpu: gpu.to_owned(),
            problem: problem.to_owned(),
        }
    }

    /// Name of the GPU whose record failed validation.
    #[must_use]
    pub fn gpu(&self) -> &str {
        &self.gpu
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spec for {}: {}", self.gpu, self.problem)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use crate::database;

    #[test]
    fn every_database_entry_validates() {
        for gpu in database::all() {
            gpu.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn derived_gflops_tracks_datasheet() {
        for gpu in database::all() {
            let gap = (gpu.derived_fp32_gflops() - gpu.fp32_gflops).abs() / gpu.fp32_gflops;
            assert!(
                gap < 0.25,
                "{}: derived {:.0} vs sheet {:.0}",
                gpu.name,
                gpu.derived_fp32_gflops(),
                gpu.fp32_gflops
            );
        }
    }

    #[test]
    fn ridge_points_are_compute_heavier_for_newer_parts() {
        let titan = database::find("Titan Xp").unwrap();
        let ampere = database::find("RTX 3090").unwrap();
        assert!(ampere.ridge_point_flops_per_byte() > titan.ridge_point_flops_per_byte());
    }

    #[test]
    fn validation_rejects_inconsistent_records() {
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.warp_size = 64;
        assert!(gpu.validate().is_err());
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.fp32_gflops *= 3.0;
        assert!(gpu.validate().is_err());
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.max_shared_mem_per_block_kib = gpu.shared_mem_per_sm_kib + 1;
        assert!(gpu.validate().is_err());
    }

    #[test]
    fn validation_rejects_nan_and_non_finite_fields() {
        // NaN compares false against every threshold, so these records used
        // to validate silently and poison blueprint PCA downstream.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for field in 0..6 {
                let mut gpu = database::find("Titan Xp").unwrap().clone();
                match field {
                    0 => gpu.base_clock_mhz = bad,
                    1 => gpu.boost_clock_mhz = bad,
                    2 => gpu.mem_bandwidth_gb_s = bad,
                    3 => gpu.mem_size_gib = bad,
                    4 => gpu.fp32_gflops = bad,
                    _ => gpu.tdp_w = bad,
                }
                assert!(gpu.validate().is_err(), "{bad} in float field {field} accepted");
            }
        }
    }

    #[test]
    fn validation_rejects_negative_and_zero_division_prone_fields() {
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.mem_size_gib = -11.0;
        assert!(gpu.validate().is_err(), "negative memory size accepted");
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.tdp_w = 0.0;
        assert!(gpu.validate().is_err(), "zero TDP accepted (divides power features)");
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.mem_bandwidth_gb_s = 0.0;
        assert!(gpu.validate().is_err(), "zero bandwidth accepted (divides ridge point)");
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.fp32_gflops = 0.0;
        assert!(gpu.validate().is_err(), "zero GFLOPS accepted (divides relative gap)");
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.max_threads_per_sm = 0;
        assert!(gpu.validate().is_err(), "zero SM thread limit accepted (divides warp occupancy)");
        let mut gpu = database::find("Titan Xp").unwrap().clone();
        gpu.l2_cache_kib = 0;
        assert!(gpu.validate().is_err(), "zero L2 accepted");
    }

    #[test]
    fn display_mentions_name_and_arch() {
        let gpu = database::find("RTX 3090").unwrap();
        let text = gpu.to_string();
        assert!(text.contains("RTX 3090") && text.contains("sm_86"));
    }

    #[test]
    fn serde_roundtrip_preserves_spec() {
        let gpu = database::find("RTX 2070 Super").unwrap();
        let json = serde_json::to_string(gpu).unwrap();
        let back: super::GpuSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, gpu);
    }
}
