//! Numeric feature extraction from data-sheet records.
//!
//! The Blueprint PCA (§3.1) operates on a fixed-width vector of data-sheet
//! quantities. [`FeatureVector::from_spec`] extracts that vector; the
//! [`Normalizer`] z-scores feature columns over a GPU population so that PCA
//! is not dominated by large-magnitude fields (GFLOPS vs. warp size).

use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};

/// Names of the extracted features, in vector order.
pub const FEATURE_NAMES: [&str; 16] = [
    "sm_count",
    "cores_per_sm",
    "total_cores",
    "base_clock_mhz",
    "boost_clock_mhz",
    "mem_bandwidth_gb_s",
    "mem_bus_bits",
    "mem_size_gib",
    "l2_cache_kib",
    "shared_mem_per_sm_kib",
    "registers_per_sm",
    "max_threads_per_sm",
    "max_blocks_per_sm",
    "fp32_gflops",
    "ridge_flops_per_byte",
    "generation_ordinal",
];

/// Number of features extracted per GPU.
pub const FEATURE_COUNT: usize = FEATURE_NAMES.len();

/// A fixed-width numeric view of one GPU's data sheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Extracts the raw (unnormalized) feature vector from a spec.
    #[must_use]
    pub fn from_spec(spec: &GpuSpec) -> Self {
        let values = vec![
            f64::from(spec.sm_count),
            f64::from(spec.cores_per_sm),
            f64::from(spec.total_cores()),
            spec.base_clock_mhz,
            spec.boost_clock_mhz,
            spec.mem_bandwidth_gb_s,
            f64::from(spec.mem_bus_bits),
            spec.mem_size_gib,
            f64::from(spec.l2_cache_kib),
            f64::from(spec.shared_mem_per_sm_kib),
            f64::from(spec.registers_per_sm),
            f64::from(spec.max_threads_per_sm),
            f64::from(spec.max_blocks_per_sm),
            spec.fp32_gflops,
            spec.ridge_point_flops_per_byte(),
            spec.generation.ordinal() as f64,
        ];
        debug_assert_eq!(values.len(), FEATURE_COUNT);
        Self { values }
    }

    /// Builds a feature vector directly from values (e.g. a PCA
    /// reconstruction). Panics if `values.len() != FEATURE_COUNT` — the
    /// width is part of the type's contract.
    #[must_use]
    pub fn from_values(values: Vec<f64>) -> Self {
        assert_eq!(values.len(), FEATURE_COUNT, "feature vector must have {FEATURE_COUNT} entries");
        Self { values }
    }

    /// The feature values in [`FEATURE_NAMES`] order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of features (always [`FEATURE_COUNT`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false; present for API completeness (C-ITER style).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of the named feature.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES.iter().position(|n| *n == name).map(|i| self.values[i])
    }
}

impl AsRef<[f64]> for FeatureVector {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

/// Per-column z-score normalizer fitted over a GPU population.
///
/// Columns with zero variance (e.g. `registers_per_sm`, identical on every
/// part in the database) are passed through centered but unscaled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits column means and standard deviations over `population`.
    ///
    /// # Panics
    ///
    /// Panics if `population` is empty.
    #[must_use]
    pub fn fit(population: &[FeatureVector]) -> Self {
        assert!(!population.is_empty(), "cannot fit a normalizer on an empty population");
        let n = population.len() as f64;
        let width = population[0].len();
        let mut means = vec![0.0; width];
        for fv in population {
            for (m, v) in means.iter_mut().zip(fv.values()) {
                *m += v / n;
            }
        }
        let mut stds = vec![0.0; width];
        for fv in population {
            for ((s, v), m) in stds.iter_mut().zip(fv.values()).zip(&means) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt();
        }
        Self { means, stds }
    }

    /// Z-scores a feature vector (zero-variance columns are only centered).
    #[must_use]
    pub fn normalize(&self, fv: &FeatureVector) -> Vec<f64> {
        fv.values()
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| if *s > 1e-9 * (1.0 + m.abs()) { (v - m) / s } else { v - m })
            .collect()
    }

    /// Inverts [`Normalizer::normalize`].
    #[must_use]
    pub fn denormalize(&self, z: &[f64]) -> FeatureVector {
        let values = z
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| if *s > 1e-9 * (1.0 + m.abs()) { v * s + m } else { v + m })
            .collect();
        FeatureVector::from_values(values)
    }

    /// Fitted column means.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted column standard deviations.
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Extracts and z-scores the whole database in one call, returning the
/// normalized matrix (row per GPU) and the fitted normalizer.
#[must_use]
pub fn normalized_population(specs: &[&GpuSpec]) -> (Vec<Vec<f64>>, Normalizer) {
    let raw: Vec<FeatureVector> = specs.iter().map(|s| FeatureVector::from_spec(s)).collect();
    let normalizer = Normalizer::fit(&raw);
    let rows = raw.iter().map(|fv| normalizer.normalize(fv)).collect();
    (rows, normalizer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database;
    use proptest::prelude::*;

    fn population() -> Vec<FeatureVector> {
        database::all().iter().map(FeatureVector::from_spec).collect()
    }

    #[test]
    fn feature_vector_width_matches_names() {
        let gpu = database::find("Titan Xp").unwrap();
        assert_eq!(FeatureVector::from_spec(gpu).len(), FEATURE_COUNT);
    }

    #[test]
    fn named_lookup_matches_spec() {
        let gpu = database::find("RTX 3090").unwrap();
        let fv = FeatureVector::from_spec(gpu);
        assert_eq!(fv.get("sm_count"), Some(82.0));
        assert_eq!(fv.get("mem_bus_bits"), Some(384.0));
        assert_eq!(fv.get("nonexistent"), None);
    }

    #[test]
    fn normalizer_produces_zero_mean_unit_variance() {
        let pop = population();
        let norm = Normalizer::fit(&pop);
        let width = pop[0].len();
        let n = pop.len() as f64;
        for col in 0..width {
            let zs: Vec<f64> = pop.iter().map(|fv| norm.normalize(fv)[col]).collect();
            let mean: f64 = zs.iter().sum::<f64>() / n;
            assert!(mean.abs() < 1e-6, "column {col} mean {mean}");
            let var: f64 = zs.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / n;
            // Zero-variance columns stay zero-variance; others become unit.
            assert!(var.abs() < 1e-6 || (var - 1.0).abs() < 1e-6, "column {col} var {var}");
        }
    }

    #[test]
    fn denormalize_inverts_normalize() {
        let pop = population();
        let norm = Normalizer::fit(&pop);
        for fv in &pop {
            let z = norm.normalize(fv);
            let back = norm.denormalize(&z);
            for (a, b) in fv.values().iter().zip(back.values()) {
                assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn normalized_population_has_row_per_gpu() {
        let specs: Vec<&crate::GpuSpec> = database::all().iter().collect();
        let (rows, _) = normalized_population(&specs);
        assert_eq!(rows.len(), database::all().len());
    }

    #[test]
    #[should_panic(expected = "feature vector must have")]
    fn from_values_rejects_wrong_width() {
        let _ = FeatureVector::from_values(vec![1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn normalize_roundtrip_on_scaled_specs(scale in 0.5f64..2.0, idx in 0usize..24) {
            let pop = population();
            let norm = Normalizer::fit(&pop);
            let base = &pop[idx];
            let scaled = FeatureVector::from_values(base.values().iter().map(|v| v * scale).collect());
            let back = norm.denormalize(&norm.normalize(&scaled));
            for (a, b) in scaled.values().iter().zip(back.values()) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
            }
        }
    }
}
