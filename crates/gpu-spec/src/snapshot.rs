//! Spec-database snapshots: the on-disk form of a GPU spec set.
//!
//! A deployment can pin the exact spec database a campaign tuned against by
//! snapshotting it next to the checkpoint directory. Snapshots travel in
//! the `glimpse-durable` artifact envelope (kind `spec-db`), so a torn,
//! bit-rotted, or newer-schema file is a typed [`SnapshotError`] on load —
//! never a panic, and never a silently wrong spec. Every entry is
//! re-validated with [`GpuSpec::validate`] after decoding: an intact
//! envelope does not excuse a NaN bandwidth.

use crate::spec::{GpuSpec, SpecError};
use glimpse_durable::envelope::{self, EnvelopeSpec, Integrity};
use std::fmt;
use std::path::Path;

/// Envelope identity of a spec-DB snapshot.
pub const SPEC_DB_ENVELOPE: EnvelopeSpec = EnvelopeSpec {
    kind: "spec-db",
    schema: 1,
};

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The envelope did not verify (missing, truncated, checksum, drift).
    Damaged(Integrity),
    /// The envelope verified but the payload is not a spec list.
    Undecodable {
        /// Decoder message.
        detail: String,
    },
    /// An entry decoded but failed semantic validation.
    Invalid(SpecError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Damaged(verdict) => write!(f, "spec-db snapshot damaged: {verdict}"),
            SnapshotError::Undecodable { detail } => write!(f, "spec-db snapshot undecodable: {detail}"),
            SnapshotError::Invalid(e) => write!(f, "spec-db snapshot invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Writes `specs` as an enveloped snapshot at `path` (atomic replace).
///
/// # Errors
///
/// Propagates the underlying IO error; the destination is untouched on
/// failure.
pub fn save_snapshot(path: &Path, specs: &[GpuSpec]) -> std::io::Result<()> {
    let payload = serde_json::to_string_pretty(&specs).map_err(std::io::Error::other)?;
    envelope::write_envelope(path, SPEC_DB_ENVELOPE, payload.as_bytes())
}

/// Loads and fully validates the snapshot at `path`. Total over arbitrary
/// file contents: every failure is a typed [`SnapshotError`].
///
/// # Errors
///
/// [`SnapshotError::Damaged`] when the envelope does not verify,
/// [`SnapshotError::Undecodable`] when the payload is not a spec list, and
/// [`SnapshotError::Invalid`] when any entry fails [`GpuSpec::validate`].
pub fn load_snapshot(path: &Path) -> Result<Vec<GpuSpec>, SnapshotError> {
    let payload = envelope::read_envelope(path, SPEC_DB_ENVELOPE).map_err(SnapshotError::Damaged)?;
    let text = std::str::from_utf8(&payload).map_err(|e| SnapshotError::Undecodable { detail: e.to_string() })?;
    let specs: Vec<GpuSpec> = serde_json::from_str(text).map_err(|e| SnapshotError::Undecodable { detail: e.to_string() })?;
    for spec in &specs {
        spec.validate().map_err(SnapshotError::Invalid)?;
    }
    Ok(specs)
}

/// Classifies the snapshot at `path` for doctor output: the envelope
/// verdict, with decode/validation failures folded into `Unreadable`.
#[must_use]
pub fn verify_snapshot(path: &Path) -> Integrity {
    match load_snapshot(path) {
        Ok(_) => Integrity::Intact,
        Err(SnapshotError::Damaged(verdict)) => verdict,
        Err(e) => Integrity::Unreadable { detail: e.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database;

    fn temp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("glimpse_specdb_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("spec-db.snapshot")
    }

    #[test]
    fn snapshot_round_trips_the_database() {
        let path = temp("roundtrip");
        save_snapshot(&path, database::all()).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.as_slice(), database::all());
        assert_eq!(verify_snapshot(&path), Integrity::Intact);
    }

    #[test]
    fn missing_snapshot_is_typed() {
        let path = temp("missing").with_file_name("absent.snapshot");
        assert_eq!(load_snapshot(&path).unwrap_err(), SnapshotError::Damaged(Integrity::Missing));
    }

    #[test]
    fn corrupt_payload_is_checksum_mismatch() {
        let path = temp("corrupt");
        save_snapshot(&path, database::all()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        glimpse_durable::atomic_write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path).unwrap_err(),
            SnapshotError::Damaged(Integrity::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn intact_envelope_with_invalid_spec_is_rejected() {
        // A NaN smuggled into an otherwise intact snapshot must still fail.
        let path = temp("nan");
        let mut specs = database::all().to_vec();
        specs[0].mem_bandwidth_gb_s = f64::NAN;
        save_snapshot(&path, &specs).unwrap();
        match load_snapshot(&path).unwrap_err() {
            // NaN serializes as `null` in JSON, so depending on the decoder
            // this surfaces as undecodable or as a validation failure;
            // either way it is typed and non-panicking.
            SnapshotError::Invalid(_) | SnapshotError::Undecodable { .. } => {}
            other => panic!("expected typed rejection, got {other:?}"),
        }
        assert!(!verify_snapshot(&path).is_intact());
    }
}
