//! The shared end-to-end evaluation run behind Fig. 6, Fig. 7, Fig. 9 and
//! Table 2: every tuner × model × GPU of Table 1, run-to-quality, with
//! results cached under `results/`.

use crate::experiment::{cached_artifacts, evaluation_grid, run_model, run_task, BudgetMode, ModelGpuResult, TunerKind};
use crate::report;
use glimpse_tuners::LogStore;
use serde::{Deserialize, Serialize};

/// Seed for artifact training in all harnesses.
pub const ARTIFACT_SEED: u64 = 42;
/// Seed for the evaluation runs.
pub const RUN_SEED: u64 = 1234;
/// AutoTVM's fixed per-task trial count. AutoTVM has no convergence
/// detection — practitioners set `n_trial` and wait; the paper's AutoTVM
/// GPU-hour totals (18.65–49.08 h per model over four GPUs) correspond to
/// roughly this many ~3.5 s measurements per task.
pub const AUTOTVM_TRIALS: usize = 512;
/// Plateau window (measurements) for the *adaptive* tuners
/// (Chameleon / DGP / Glimpse): stop when converged.
pub const PLATEAU_WINDOW: usize = 64;
/// Relative improvement threshold below which an adaptive run has converged.
pub const PLATEAU_EPSILON: f64 = 0.002;
/// Hard per-task measurement cap for the adaptive tuners.
pub const MEASUREMENT_CAP: usize = 768;

/// The budget mode each tuner runs under in the end-to-end comparison.
#[must_use]
pub fn mode_for(kind: TunerKind) -> BudgetMode {
    match kind {
        TunerKind::AutoTvm | TunerKind::AutoTvmTransfer | TunerKind::Random => BudgetMode::Measurements(AUTOTVM_TRIALS),
        _ => BudgetMode::Converged {
            window: PLATEAU_WINDOW,
            epsilon: PLATEAU_EPSILON,
            cap: MEASUREMENT_CAP,
        },
    }
}

/// The full end-to-end result set plus the AutoTVM log store (transfer
/// donor for Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEnd {
    /// One entry per (tuner, GPU, model).
    pub results: Vec<ModelGpuResult>,
}

impl EndToEnd {
    /// Finds the result for a (tuner, gpu, model) triple.
    #[must_use]
    pub fn get(&self, tuner: TunerKind, gpu: &str, model: &str) -> Option<&ModelGpuResult> {
        self.results.iter().find(|r| r.tuner == tuner && r.gpu == gpu && r.model == model)
    }
}

/// Runs (or loads from cache) the end-to-end grid.
#[must_use]
pub fn end_to_end() -> EndToEnd {
    let dir = crate::experiment::results_dir();
    let path = dir.join(format!("e2e-{RUN_SEED}.json"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(parsed) = serde_json::from_str::<EndToEnd>(&text) {
            eprintln!("[glimpse-bench] loaded cached end-to-end results from {}", path.display());
            return parsed;
        }
    }
    let (gpus, models) = evaluation_grid();

    // One worker per GPU (the paper's RPC fleet); each worker runs AutoTVM
    // first so DGP can transfer from same-GPU logs.
    let mut per_gpu: Vec<Vec<ModelGpuResult>> = Vec::new();
    let mut all_logs = LogStore::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = gpus
            .iter()
            .map(|gpu| {
                let models = &models;
                scope.spawn(move || {
                    let artifacts = cached_artifacts(gpu, ARTIFACT_SEED);
                    let mut results = Vec::new();
                    let mut gpu_logs = LogStore::new();
                    // AutoTVM pass (also the donor corpus for DGP transfer).
                    for model in models {
                        let mut tasks = Vec::new();
                        let mut bests = Vec::new();
                        for (i, task) in model.tasks().iter().enumerate() {
                            let (run, outcome) = run_task(
                                TunerKind::AutoTvm,
                                gpu,
                                task,
                                None,
                                &LogStore::new(),
                                mode_for(TunerKind::AutoTvm),
                                RUN_SEED.wrapping_add(i as u64 * 101),
                            );
                            bests.push((task.clone(), run.replayed_gflops));
                            gpu_logs.push(outcome.history);
                            tasks.push(run);
                        }
                        let latency_ms = crate::experiment::end_to_end_latency_ms(&bests);
                        results.push(ModelGpuResult {
                            tuner: TunerKind::AutoTvm,
                            gpu: gpu.name.clone(),
                            model: model.name().to_owned(),
                            tasks,
                            latency_ms,
                        });
                    }
                    // Remaining tuners.
                    for kind in [TunerKind::Chameleon, TunerKind::Dgp, TunerKind::Glimpse] {
                        for model in models {
                            eprintln!("[glimpse-bench] {} / {} / {}", kind.label(), gpu.name, model.name());
                            results.push(run_model(kind, gpu, model, Some(&artifacts), &gpu_logs, mode_for(kind), RUN_SEED));
                        }
                    }
                    (results, gpu_logs)
                })
            })
            .collect();
        for handle in handles {
            let (results, logs) = handle.join().expect("gpu worker panicked");
            per_gpu.push(results);
            for log in logs.logs() {
                all_logs.push(log.clone());
            }
        }
    });
    let e2e = EndToEnd {
        results: per_gpu.into_iter().flatten().collect(),
    };
    report::save_json(&dir, &format!("e2e-{RUN_SEED}"), &e2e);
    // The AutoTVM histories double as the transfer-learning donor corpus
    // (Fig. 5); persist them so that pass is free.
    report::save_json(&dir, &format!("autotvm-logs-{RUN_SEED}"), &all_logs);
    e2e
}

/// Runs (or loads) an AutoTVM-only pass over the grid and returns its
/// tuning logs — the transfer donor set for Fig. 5's AutoTVM+TL.
#[must_use]
pub fn autotvm_log_store() -> LogStore {
    let dir = crate::experiment::results_dir();
    let path = dir.join(format!("autotvm-logs-{RUN_SEED}.json"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(store) = serde_json::from_str::<LogStore>(&text) {
            return store;
        }
    }
    let (gpus, models) = evaluation_grid();
    let mode = BudgetMode::Converged {
        window: PLATEAU_WINDOW,
        epsilon: PLATEAU_EPSILON,
        cap: MEASUREMENT_CAP,
    };
    let mut store = LogStore::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = gpus
            .iter()
            .map(|gpu| {
                let models = &models;
                scope.spawn(move || {
                    let mut logs = Vec::new();
                    for model in models {
                        for (i, task) in model.tasks().iter().enumerate() {
                            let (_, outcome) = run_task(
                                TunerKind::AutoTvm,
                                gpu,
                                task,
                                None,
                                &LogStore::new(),
                                mode,
                                RUN_SEED.wrapping_add(i as u64 * 101),
                            );
                            logs.push(outcome.history);
                        }
                    }
                    logs
                })
            })
            .collect();
        for handle in handles {
            for log in handle.join().expect("gpu worker panicked") {
                store.push(log);
            }
        }
    });
    report::save_json(&dir, &format!("autotvm-logs-{RUN_SEED}"), &store);
    store
}
