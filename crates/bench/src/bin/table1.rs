//! Table 1: the DNN model / task inventory and the GPU fleet.

use glimpse_bench::report;
use glimpse_gpu_spec::database;
use glimpse_tensor_prog::task::count_by_template;
use glimpse_tensor_prog::{models, TemplateKind};

fn main() {
    println!("Table 1 — DNN models and GPUs\n");
    let rows: Vec<Vec<String>> = models::evaluation_models()
        .iter()
        .map(|m| {
            let by = count_by_template(m.tasks());
            let get = |k: TemplateKind| by.iter().find(|(kind, _)| *kind == k).map_or(0, |(_, c)| *c);
            vec![
                m.name().to_owned(),
                "ImageNet".to_owned(),
                format!(
                    "{} ({} conv2d, {} winograd conv2d, {} dense)",
                    m.tasks().len(),
                    get(TemplateKind::Conv2dDirect),
                    get(TemplateKind::Conv2dWinograd),
                    get(TemplateKind::Dense)
                ),
                format!("{:.2} GFLOP/inference", m.total_flops() / 1e9),
            ]
        })
        .collect();
    println!("{}", report::table(&["DNN model", "dataset", "number of tasks", "work"], &rows));

    let gpu_rows: Vec<Vec<String>> = database::evaluation_gpus()
        .iter()
        .map(|g| {
            vec![
                g.name.clone(),
                format!("{} ({})", g.generation, g.sm_arch),
                format!("{} SMs / {} cores", g.sm_count, g.total_cores()),
                format!("{:.1} TFLOPS, {:.0} GB/s", g.fp32_gflops / 1000.0, g.mem_bandwidth_gb_s),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["hardware", "generation (gencode)", "compute", "peak"], &gpu_rows)
    );
    println!("training database: {} GPUs across {} generations", database::all().len(), 3);
}
