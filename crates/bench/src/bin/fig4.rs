//! Figure 4: quality of the first 100 sampled configurations.
//!
//! For four representative (GPU, model, layer) combinations, plots the
//! sorted throughput of the first 100 configurations each approach
//! measures: Random, AutoTVM, Chameleon, and Glimpse (whose initial batch
//! comes from the Blueprint-conditioned prior `H`). Paper: the Glimpse
//! curve dominates, some layers reaching near-optimal within the first few
//! steps.

use glimpse_bench::e2e::ARTIFACT_SEED;
use glimpse_bench::experiment::{cached_artifacts, run_task, BudgetMode, TunerKind};
use glimpse_bench::report;
use glimpse_gpu_spec::database;
use glimpse_tensor_prog::models;
use glimpse_tuners::LogStore;

const PROBES: usize = 100;

fn main() {
    // Representative combos mirroring the paper's panels (task indices are
    // this reproduction's extraction order; all four are direct conv2d
    // tasks so the GFLOPS scale matches the paper's 0-4000 axes).
    let combos: [(&str, &str, usize); 4] = [
        ("Titan Xp", "ResNet-18", 9),
        ("RTX 2070 Super", "ResNet-18", 5),
        ("RTX 2080 Ti", "VGG-16", 7),
        ("RTX 3090", "AlexNet", 3),
    ];
    let kinds = [TunerKind::Random, TunerKind::AutoTvm, TunerKind::Chameleon, TunerKind::Glimpse];
    let store = LogStore::new();
    let mut payload = Vec::new();

    for (gpu_name, model_name, layer) in combos {
        let gpu = database::find(gpu_name).unwrap();
        let model = models::find(model_name).unwrap();
        let task = &model.tasks()[layer];
        let artifacts = cached_artifacts(gpu, ARTIFACT_SEED);
        println!("\n=== {gpu_name} / {model_name} / L{layer} ({task}) ===");

        let mut curves = Vec::new();
        for kind in kinds {
            let (run, outcome) = run_task(kind, gpu, task, Some(&artifacts), &store, BudgetMode::Measurements(PROBES), 77);
            // Sorted-descending GFLOPS of the measured configs (invalid = 0).
            let mut values: Vec<f64> = outcome.history.trials.iter().map(|t| t.gflops.unwrap_or(0.0)).collect();
            values.sort_by(|a, b| b.total_cmp(a));
            curves.push((kind, values, run.oracle_gflops));
        }
        let max = curves.iter().flat_map(|(_, v, _)| v.iter().copied()).fold(0.0f64, f64::max);
        for (kind, values, _) in &curves {
            println!("{}", report::sparkline(kind.label(), values, max));
        }
        let rows: Vec<Vec<String>> = curves
            .iter()
            .map(|(kind, values, oracle)| {
                let best = values.first().copied().unwrap_or(0.0);
                let median = values.get(PROBES / 2).copied().unwrap_or(0.0);
                let valid = values.iter().filter(|v| **v > 0.0).count();
                vec![
                    kind.label().to_owned(),
                    format!("{best:.0}"),
                    format!("{median:.0}"),
                    format!("{valid}/{PROBES}"),
                    format!("{:.0}% of oracle", 100.0 * best / oracle),
                ]
            })
            .collect();
        println!(
            "{}",
            report::table(&["sampler", "best GFLOPS", "median GFLOPS", "valid", "best vs oracle"], &rows)
        );
        payload.push(serde_json::json!({
            "gpu": gpu_name,
            "model": model_name,
            "layer": layer,
            "curves": curves.iter().map(|(k, v, o)| serde_json::json!({
                "tuner": k.label(), "sorted_gflops": v, "oracle": o,
            })).collect::<Vec<_>>(),
        }));
    }
    report::save_json(&glimpse_bench::experiment::results_dir(), "fig4", &payload);
}
